"""Experiment ``scale`` — clone-free campaign engine throughput.

The seed implementation obtained each faulty model by deep-copying the whole
network (one ``model.clone()`` per fault group).  The campaign engine patches
the fault group's weight corruptions *in place* on the original model and
restores the exact original bit patterns afterwards, so the per-group cost is
a handful of scalar writes instead of a full model copy.  This benchmark
tracks that replacement the same way the other ``scale_*`` results do:

* faulty-model throughput of the clone-per-group path vs the patch-session
  path over identical fault groups (VGG-16, weight faults);
* end-to-end streaming campaign throughput (golden + faulty inference,
  monitoring, outcome classification, CSV streaming) via the Experiment API
  entry point (``repro.experiments.run`` on in-memory artifacts).

The bit-exact restore guarantee is asserted here as well: after the timed
session sweep every weight of the model must have the identical bit pattern
it started with.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_QUICK, record_benchmark, report, run_campaign
from repro.alficore import GoldenCache, default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5, vgg16
from repro.models.pretrained import fit_classifier_head
from repro.tensor.bitops import float_to_bits
from repro.visualization import comparison_table

GROUPS = 40


@pytest.fixture(scope="module")
def vgg_model():
    return vgg16(num_classes=10, seed=0).eval()


def test_patch_session_vs_clone_per_group(benchmark, vgg_model):
    """Patch sessions must be >=5x faster than clone-per-group on VGG-16."""
    scenario = default_scenario(
        dataset_size=GROUPS, injection_target="weights", random_seed=12, batch_size=1
    )
    wrapper = ptfiwrap(vgg_model, scenario=scenario)
    bits_before = {
        name: float_to_bits(param.data).copy() for name, param in vgg_model.named_parameters()
    }

    def session_sweep():
        wrapper.reset_iterator()
        count = 0
        for group in wrapper.get_fault_group_iter():
            with group:
                count += 1
        return count

    count = benchmark.pedantic(session_sweep, rounds=3, iterations=1)
    assert count == GROUPS
    session_seconds = benchmark.stats.stats.mean

    # Acceptance: the original model is restored bit-exactly after each group.
    for name, param in vgg_model.named_parameters():
        np.testing.assert_array_equal(bits_before[name], float_to_bits(param.data))

    wrapper.reset_iterator()
    start = time.perf_counter()
    clone_models = list(wrapper.get_fimodel_iter())
    clone_seconds = time.perf_counter() - start
    assert len(clone_models) == GROUPS

    speedup = clone_seconds / session_seconds
    assert speedup > 5
    report(
        "scale_patch_session",
        comparison_table(
            [
                {
                    "strategy": "clone-per-group (seed path)",
                    "seconds": clone_seconds,
                    "faulty models/s": GROUPS / clone_seconds,
                },
                {
                    "strategy": "in-place patch session",
                    "seconds": session_seconds,
                    "faulty models/s": GROUPS / session_seconds,
                },
                {"strategy": "speedup", "seconds": speedup, "faulty models/s": float("nan")},
            ],
            ["strategy", "seconds", "faulty models/s"],
            title=f"Clone-free campaign engine: {GROUPS} weight fault groups on VGG-16",
        ),
    )


def test_streaming_campaign_end_to_end(benchmark, tmp_path):
    """End-to-end streamed campaign: KPIs computed, records on disk, O(batch) memory."""
    dataset = SyntheticClassificationDataset(num_samples=30, num_classes=10, noise=0.25, seed=6)
    model = fit_classifier_head(lenet5(seed=2), dataset, 10)
    scenario = default_scenario(
        injection_target="weights", rnd_bit_range=(23, 30), random_seed=14, model_name="engine"
    )

    def run_engine_campaign():
        result = run_campaign(
            "classification", model, dataset, scenario, output_dir=tmp_path
        )
        return result.results["corrupted"]

    summary = benchmark.pedantic(run_engine_campaign, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    assert summary.num_inferences == len(dataset)
    assert summary.masked_rate + summary.sde_rate + summary.due_rate == pytest.approx(1.0)
    report(
        "scale_campaign_engine",
        comparison_table(
            [
                {
                    "metric": "inferences (golden+faulty pairs)",
                    "value": summary.num_inferences,
                },
                {"metric": "seconds", "value": elapsed},
                {"metric": "inferences/s", "value": summary.num_inferences / elapsed},
                {"metric": "masked rate", "value": summary.masked_rate},
                {"metric": "sde rate", "value": summary.sde_rate},
                {"metric": "due rate", "value": summary.due_rate},
            ],
            ["metric", "value"],
            title="Streamed clone-free campaign (LeNet-5, 30 images, per-image weight faults)",
        ),
    )


def test_prefix_reuse_vs_full_forward(benchmark, vgg_model, tmp_path):
    """Suffix-only faulty inference + golden cache vs the full-forward path.

    Two scenarios on the deep reference model (VGG-16, 16 injectable
    layers), both multi-epoch per-image weight campaigns:

    * *late-layer* faults (``layer_range`` pinned to the last three layers):
      the faulty suffix is tiny and later epochs reuse the cached golden
      boundaries, so nearly the entire two-forwards-per-step cost vanishes —
      acceptance requires >= 2x end-to-end;
    * the *mixed-layer default* (weighted selection over all layers):
      acceptance requires >= 1.5x.

    Both runs must produce byte-identical record files and equal KPI
    summaries compared to the full-forward baseline.
    """
    images = 8 if BENCH_QUICK else 24
    epochs = 3 if BENCH_QUICK else 4
    dataset = SyntheticClassificationDataset(num_samples=images, num_classes=10, noise=0.25, seed=9)
    num_layers = ptfiwrap(
        vgg_model, scenario=default_scenario(injection_target="weights")
    ).fault_injection.num_layers

    def run(sub: str, reuse: bool, scenario) -> tuple[float, object]:
        start = time.perf_counter()
        result = run_campaign(
            "classification", vgg_model, dataset, scenario,
            output_dir=tmp_path / sub, prefix_reuse=reuse,
            golden_cache=GoldenCache() if reuse else None,
        )
        return time.perf_counter() - start, result

    def measure(tag: str, scenario) -> tuple[float, float, object, object]:
        baseline_seconds, baseline = run(f"{tag}_baseline", False, scenario)
        reuse_seconds, reused = run(f"{tag}_reuse", True, scenario)
        for stream in ("golden_csv", "corrupted_csv", "applied_faults"):
            assert (
                open(baseline.output_files[stream], "rb").read()
                == open(reused.output_files[stream], "rb").read()
            ), f"{tag}: {stream} differs between full-forward and prefix-reuse run"
        baseline_kpis, reused_kpis = dict(baseline.summary), dict(reused.summary)
        baseline_kpis.pop("output_files")
        reused_kpis.pop("output_files")
        assert baseline_kpis == reused_kpis
        return baseline_seconds, reuse_seconds, baseline, reused

    late_scenario = default_scenario(
        injection_target="weights", rnd_bit_range=(23, 30), random_seed=31,
        num_runs=epochs, layer_range=(num_layers - 3, num_layers - 1), model_name="prefix",
    )
    mixed_scenario = default_scenario(
        injection_target="weights", rnd_bit_range=(23, 30), random_seed=32,
        num_runs=epochs, model_name="prefix",
    )

    def timed_runs():
        late = measure("late", late_scenario)
        mixed = measure("mixed", mixed_scenario)
        return late, mixed

    (late_base, late_fast, _, late_result), (mixed_base, mixed_fast, _, mixed_result) = (
        benchmark.pedantic(timed_runs, rounds=1, iterations=1)
    )
    late_inferences = late_result.results["corrupted"].num_inferences
    mixed_inferences = mixed_result.results["corrupted"].num_inferences

    def best_speedup(tag: str, scenario, base: float, fast: float, threshold: float):
        # Shield the CI gate against transient load on shared runners: one
        # re-measurement (best-of-two) before judging a sub-second timing.
        if base / fast <= threshold:
            base2, _ = run(f"{tag}_baseline_retry", False, scenario)
            fast2, _ = run(f"{tag}_reuse_retry", True, scenario)
            if base2 / fast2 > base / fast:
                return base2, fast2
        return base, fast

    late_base, late_fast = best_speedup("late", late_scenario, late_base, late_fast, 2.0)
    mixed_base, mixed_fast = best_speedup("mixed", mixed_scenario, mixed_base, mixed_fast, 1.5)
    late_speedup = late_base / late_fast
    mixed_speedup = mixed_base / mixed_fast
    assert late_speedup > 2, (
        f"late-layer prefix reuse regressed: {late_speedup:.2f}x (needs > 2x)"
    )
    assert mixed_speedup > 1.5, (
        f"mixed-layer prefix reuse regressed: {mixed_speedup:.2f}x (needs > 1.5x)"
    )
    record_benchmark(
        "scale_prefix_reuse_late_layer",
        wall_time=late_fast,
        throughput=late_inferences / late_fast,
        speedup_vs_reference=late_speedup,
    )
    record_benchmark(
        "scale_prefix_reuse_mixed_layer",
        wall_time=mixed_fast,
        throughput=mixed_inferences / mixed_fast,
        speedup_vs_reference=mixed_speedup,
    )
    report(
        "scale_prefix_reuse",
        comparison_table(
            [
                {
                    "scenario": "late-layer: full forward (baseline)",
                    "seconds": late_base,
                    "inferences/s": late_inferences / late_base,
                },
                {
                    "scenario": "late-layer: prefix reuse + golden cache",
                    "seconds": late_fast,
                    "inferences/s": late_inferences / late_fast,
                },
                {"scenario": "late-layer speedup", "seconds": late_speedup, "inferences/s": float("nan")},
                {
                    "scenario": "mixed-layer: full forward (baseline)",
                    "seconds": mixed_base,
                    "inferences/s": mixed_inferences / mixed_base,
                },
                {
                    "scenario": "mixed-layer: prefix reuse + golden cache",
                    "seconds": mixed_fast,
                    "inferences/s": mixed_inferences / mixed_fast,
                },
                {"scenario": "mixed-layer speedup", "seconds": mixed_speedup, "inferences/s": float("nan")},
            ],
            ["scenario", "seconds", "inferences/s"],
            title=(
                f"Prefix-reuse faulty inference: VGG-16, {images} images x {epochs} epochs, "
                "per-image weight faults; outputs byte-identical to full forwards"
            ),
        ),
    )


def test_sharded_vs_serial_scaling(benchmark, vgg_model, tmp_path):
    """Sharded executor vs serial path on a multi-group VGG-16 campaign.

    The sharded run must be bit-identical to the serial run (byte-equal
    record files, equal KPI summaries); on multi-core machines it must also
    be faster.  Single-core machines (where a worker pool cannot win by
    construction) still verify the equivalence and report the measured
    ratio.
    """
    images = 128
    workers = min(4, os.cpu_count() or 1)
    dataset = SyntheticClassificationDataset(num_samples=images, num_classes=10, noise=0.25, seed=8)
    scenario = default_scenario(
        injection_target="weights", rnd_bit_range=(23, 30), random_seed=21, model_name="shardbench"
    )

    def run(sub: str, n_workers: int, n_shards: int | None = None) -> tuple[float, object]:
        start = time.perf_counter()
        result = run_campaign(
            "classification", vgg_model, dataset, scenario,
            output_dir=tmp_path / sub, workers=n_workers, num_shards=n_shards,
        )
        return time.perf_counter() - start, result

    def sharded_run():
        # On a single-core machine the pool cannot win; still exercise the
        # shard partition + merge machinery with in-process shards.
        return run(f"sharded_{workers}", workers, max(workers, 3))

    sharded_seconds, sharded = benchmark.pedantic(sharded_run, rounds=1, iterations=1)
    serial_seconds, serial = run("serial", 1, 1)

    # Acceptance: workers=N output is bit-identical to workers=1.
    for tag in ("golden_csv", "corrupted_csv", "applied_faults", "faults"):
        serial_bytes = open(serial.output_files[tag], "rb").read()
        sharded_bytes = open(sharded.output_files[tag], "rb").read()
        assert serial_bytes == sharded_bytes, f"{tag} differs between serial and sharded run"
    serial_kpis, sharded_kpis = dict(serial.summary), dict(sharded.summary)
    serial_kpis.pop("output_files")
    sharded_kpis.pop("output_files")
    assert serial_kpis == sharded_kpis

    speedup = serial_seconds / sharded_seconds
    if workers > 1 and speedup <= 1:
        # Shield against a cold first run or transient machine load: one
        # re-measurement of the sharded path before judging the scaling claim.
        sharded_seconds, _ = run("sharded_retry", workers, workers)
        speedup = serial_seconds / sharded_seconds
    if workers > 1:
        assert speedup > 1, (
            f"sharded executor ({workers} workers, {sharded_seconds:.2f}s) did not beat "
            f"the serial path ({serial_seconds:.2f}s)"
        )
    report(
        "scale_sharded_executor",
        comparison_table(
            [
                {
                    "strategy": "serial (1 process)",
                    "seconds": serial_seconds,
                    "inferences/s": serial.results["corrupted"].num_inferences / serial_seconds,
                },
                {
                    "strategy": f"sharded ({workers} workers)",
                    "seconds": sharded_seconds,
                    "inferences/s": sharded.results["corrupted"].num_inferences / sharded_seconds,
                },
                {"strategy": "speedup", "seconds": speedup, "inferences/s": float("nan")},
            ],
            ["strategy", "seconds", "inferences/s"],
            title=(
                f"Sharded vs serial campaign: VGG-16, {images} per-image weight fault groups, "
                f"{os.cpu_count()} core(s); outputs bit-identical"
            ),
        ),
    )
