"""Experiment ``goal2b`` — Section V item 2b: increase faults per image.

Successively increases the number of concurrent faults injected while
processing a single image to find out how many faults the model tolerates
before the output degrades — the paper's robustness staircase.  The SDE rate
must grow (weakly) monotonically with the number of concurrent faults.
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

IMAGES = 25
FAULT_COUNTS = (1, 2, 4, 8, 16)


def _run_fault_count_sweep() -> list[dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=43)
    model = fit_classifier_head(lenet5(seed=6), dataset, 10)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    golden = model(images)
    wrapper = ptfiwrap(
        model,
        scenario=default_scenario(
            dataset_size=IMAGES,
            injection_target="weights",
            rnd_value_type="bitflip",
            rnd_bit_range=(23, 30),
            random_seed=66,
            batch_size=1,
        ),
    )
    rows = []
    for fault_count in FAULT_COUNTS:
        # Same pattern as the layer sweep: mutate the scenario at run time.
        wrapper.update_scenario(max_faults_per_image=fault_count)
        fault_iter = wrapper.get_fimodel_iter()
        corrupted_logits = []
        for index in range(IMAGES):
            corrupted_model = next(fault_iter)
            corrupted_logits.append(corrupted_model(images[index : index + 1])[0])
        rates = sde_rate(golden, np.stack(corrupted_logits))
        rows.append(
            {
                "faults/image": fault_count,
                "masked": rates["masked"],
                "SDE": rates["sde"],
                "DUE": rates["due"],
                "corrupted (SDE+DUE)": rates["sde"] + rates["due"],
            }
        )
    return rows


def test_goal2b_faults_per_image_sweep(benchmark):
    rows = benchmark.pedantic(_run_fault_count_sweep, rounds=1, iterations=1)

    corrupted_rates = [row["corrupted (SDE+DUE)"] for row in rows]
    # More concurrent faults must not make the model *more* correct: the
    # overall trend rises even if individual steps wiggle (each step draws a
    # fresh random fault set over a small image count).
    assert corrupted_rates[-1] >= corrupted_rates[0]
    assert max(corrupted_rates) > 0.0
    half = len(corrupted_rates) // 2
    assert np.mean(corrupted_rates[half:]) >= np.mean(corrupted_rates[:half]) - 1e-9

    report(
        "goal2b_faults_per_image",
        comparison_table(
            rows,
            ["faults/image", "masked", "SDE", "DUE", "corrupted (SDE+DUE)"],
            title=(
                "Goal 2b — robustness vs number of concurrent weight faults per image "
                f"(LeNet-5, exponent bits, {IMAGES} images per step)"
            ),
        ),
    )
