"""Experiment ``goal2c`` — Section V item 2c: switch between neuron and weight faults.

Runs the identical campaign twice, once injecting into neurons (transient,
hook-based) and once into weights (parameter patching), with and without
Ranger protection — to determine whether a mitigation strategy is equally
effective for both fault targets, which is the question the paper attaches
to this test goal.
"""

import numpy as np

from benchmarks.conftest import report, run_campaign
from repro.alficore import apply_protection, collect_activation_bounds, default_scenario
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

IMAGES = 30


def _run_neuron_vs_weight() -> list[dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=44)
    model = fit_classifier_head(lenet5(seed=8), dataset, 10)
    calibration = np.stack([dataset[i][0] for i in range(10)])
    hardened = apply_protection(model, collect_activation_bounds(model, [calibration]), "ranger")

    rows = []
    for target in ("neurons", "weights"):
        scenario = default_scenario(
            injection_target=target,
            rnd_value_type="bitflip",
            rnd_bit_range=(23, 30),
            random_seed=88,
        )
        result = run_campaign(
            "classification", model, dataset, scenario,
            resil_model=hardened, model_name=f"lenet_{target}",
            num_faults=1, inj_policy="per_image", num_runs=1,
        )
        corrupted, resil = result.results["corrupted"], result.results["resil"]
        rows.append(
            {
                "target": target,
                "SDE (no protection)": corrupted.sde_rate,
                "DUE (no protection)": corrupted.due_rate,
                "SDE (Ranger)": resil.sde_rate,
                "inferences": corrupted.num_inferences,
            }
        )
    return rows


def test_goal2c_neuron_vs_weight_injection(benchmark):
    rows = benchmark.pedantic(_run_neuron_vs_weight, rounds=1, iterations=1)
    by_target = {row["target"]: row for row in rows}

    assert set(by_target) == {"neurons", "weights"}
    for row in rows:
        assert row["inferences"] == IMAGES
        assert 0.0 <= row["SDE (no protection)"] <= 1.0
        # Protection must not hurt for either fault target.
        assert row["SDE (Ranger)"] <= row["SDE (no protection)"] + 1e-9

    report(
        "goal2c_neuron_vs_weight",
        comparison_table(
            rows,
            ["target", "SDE (no protection)", "SDE (Ranger)", "DUE (no protection)", "inferences"],
            title=(
                "Goal 2c — neuron vs weight fault injection under the same scenario "
                f"(LeNet-5, exponent bits, {IMAGES} images, Ranger mitigation)"
            ),
        ),
    )
