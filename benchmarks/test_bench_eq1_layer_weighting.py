"""Experiment ``eq1`` — Eq. 1: layer selection weighted by relative layer size.

Draws a large number of fault locations for VGG-16 and ResNet-50 and compares
the empirical layer-hit frequency against the analytic weight factors
``F_i = prod_j d_ij / sum_i prod_j d_ij`` of Eq. 1, for both weight and
neuron targets.
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import layer_weight_factors, weighted_layer_choice
from repro.alficore.layerweights import layer_sizes_for_target
from repro.models import resnet50, vgg16
from repro.pytorchfi import FaultInjection
from repro.visualization import comparison_table

DRAWS = 20_000


def _empirical_vs_analytic(fi, target: str, rng) -> tuple[np.ndarray, np.ndarray]:
    draws = weighted_layer_choice(fi, target, rng, size=DRAWS, weighted=True)
    empirical = np.bincount(draws, minlength=fi.num_layers) / DRAWS
    analytic = layer_weight_factors(layer_sizes_for_target(fi, target))
    return empirical, analytic


def test_eq1_weighted_layer_selection(benchmark):
    models = {
        "vgg16": vgg16(num_classes=10, seed=0).eval(),
        "resnet50": resnet50(num_classes=10, seed=0).eval(),
    }
    rng = np.random.default_rng(33)
    rows = []

    def run():
        rows.clear()
        for model_name, model in models.items():
            fi = FaultInjection(model, input_shape=(3, 32, 32))
            for target in ("weights", "neurons"):
                empirical, analytic = _empirical_vs_analytic(fi, target, rng)
                max_abs_error = float(np.abs(empirical - analytic).max())
                top_layer = int(np.argmax(analytic))
                rows.append(
                    {
                        "model": model_name,
                        "target": target,
                        "layers": fi.num_layers,
                        "largest layer F_i": analytic[top_layer],
                        "empirical hit rate": empirical[top_layer],
                        "max |emp - F_i|": max_abs_error,
                    }
                )
                # Empirical sampling must follow Eq. 1 within Monte-Carlo noise.
                assert max_abs_error < 0.02
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "eq1_layer_weighting",
        comparison_table(
            rows,
            ["model", "target", "layers", "largest layer F_i", "empirical hit rate", "max |emp - F_i|"],
            title=f"Eq. 1 — weighted layer selection, {DRAWS} draws per configuration",
        ),
    )
