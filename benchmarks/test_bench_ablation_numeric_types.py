"""Ablation ``dtype`` — use case: evaluating the vulnerability of different numeric types.

Section V of the paper lists "evaluating the vulnerability of different
numeric types" as a PyTorchALFI use case, and the introduction argues that
the numeric type determines how many bits are vulnerable (a 16-bit model has
half the bits of a 32-bit one, but a larger fraction of them are exponent
bits).  This ablation runs the same weight-fault campaign with float32 and
float16 quantization of the corrupted values and compares the resulting
corruption rates, overall and restricted to the exponent field.
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.tensor import dtype_info
from repro.visualization import comparison_table

IMAGES = 25


def _campaign(model, images, golden, quantization: str, bit_range, seed: int) -> float:
    scenario = default_scenario(
        dataset_size=IMAGES,
        injection_target="weights",
        rnd_value_type="bitflip",
        quantization=quantization,
        rnd_bit_range=bit_range,
        random_seed=seed,
        batch_size=1,
    )
    wrapper = ptfiwrap(model, scenario=scenario)
    fault_iter = wrapper.get_fimodel_iter()
    corrupted = []
    for index in range(IMAGES):
        corrupted_model = next(fault_iter)
        corrupted.append(corrupted_model(images[index : index + 1])[0])
    rates = sde_rate(golden, np.stack(corrupted))
    return rates["sde"] + rates["due"]


def _run_dtype_ablation() -> list[dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=61)
    model = fit_classifier_head(lenet5(seed=12), dataset, 10)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    golden = model(images)

    rows = []
    for quantization in ("float32", "float16"):
        info = dtype_info(quantization)
        any_bit = _campaign(model, images, golden, quantization, (0, info.bits - 1), seed=71)
        exponent_only = _campaign(model, images, golden, quantization, info.exponent_range, seed=72)
        rows.append(
            {
                "quantization": quantization,
                "bits": info.bits,
                "exponent bits": info.exponent_bits,
                "corrupted (any bit)": any_bit,
                "corrupted (exponent bits)": exponent_only,
            }
        )
    return rows


def test_ablation_numeric_type_vulnerability(benchmark):
    rows = benchmark.pedantic(_run_dtype_ablation, rounds=1, iterations=1)
    by_dtype = {row["quantization"]: row for row in rows}

    for row in rows:
        # Restricting faults to the exponent field concentrates the damage:
        # the exponent-only rate is never lower than the any-bit rate.
        assert row["corrupted (exponent bits)"] >= row["corrupted (any bit)"] - 1e-9
        assert 0.0 <= row["corrupted (any bit)"] <= 1.0
    # Both numeric types are exercised with their full bit width.
    assert by_dtype["float32"]["bits"] == 32
    assert by_dtype["float16"]["bits"] == 16

    report(
        "ablation_numeric_types",
        comparison_table(
            rows,
            ["quantization", "bits", "exponent bits", "corrupted (any bit)", "corrupted (exponent bits)"],
            title=f"Numeric type vulnerability (LeNet-5 weights, {IMAGES} images per configuration)",
        ),
    )
