"""Experiment ``fig2b`` — Fig. 2b: IVMOD SDE/DUE rates for object detection.

The paper injects single weight faults into YoloV3, RetinaNet and Faster-RCNN
and reports the image-wise vulnerability (IVMOD_SDE — additional FPs or lost
TPs relative to the fault-free run) and the NaN/Inf rate (IVMOD_DUE, below
1e-2 for RetinaNet on CoCo; IVMOD_SDE e.g. ~4.2 % for RetinaNet/CoCo).

The reproduction runs the same campaign against the three detector families
of the zoo over the synthetic CoCo-format dataset.
"""

from benchmarks.conftest import DETECTION_IMAGES, DET_CLASSES, report, run_campaign
from repro.alficore import default_scenario
from repro.data import KittiLikeDetectionDataset
from repro.models.detection import faster_rcnn_lite, retinanet_lite, yolov3_tiny
from repro.tensor import exponent_bit_range
from repro.visualization import bar_chart, comparison_table

DETECTORS = {
    "yolov3": yolov3_tiny,
    "retinanet": retinanet_lite,
    "faster_rcnn": faster_rcnn_lite,
}


def _run_fig2b(detection_dataset) -> list[dict]:
    """Run every detector on both datasets of Fig. 2b (CoCo-like and Kitti-like)."""
    kitti_dataset = KittiLikeDetectionDataset(num_samples=DETECTION_IMAGES, seed=17)
    dataset_setups = {
        "coco": (detection_dataset, DET_CLASSES, (64, 64), (3, 64, 64)),
        "kitti": (kitti_dataset, kitti_dataset.num_classes, (48, 96), (3, 48, 96)),
    }
    rows = []
    for dataset_name, (dataset, num_classes, image_size, input_shape) in dataset_setups.items():
        for detector_name, factory in DETECTORS.items():
            model = factory(num_classes=num_classes, seed=5, image_size=image_size).eval()
            scenario = default_scenario(
                injection_target="weights",
                rnd_value_type="bitflip",
                rnd_bit_range=exponent_bit_range("float32"),
                random_seed=202,
                model_name=detector_name,
                dataset_name=dataset_name,
            )
            result = run_campaign(
                "detection", model, dataset, scenario,
                model_name=f"{detector_name}_{dataset_name}",
                num_faults=1, inj_policy="per_image", num_runs=1,
                input_shape=input_shape, num_classes=num_classes,
            )
            corrupted = result.results["corrupted"]
            ivmod = corrupted.ivmod
            rows.append(
                {
                    "detector": detector_name,
                    "dataset": dataset_name,
                    "IVMOD_SDE": ivmod.sde_rate,
                    "IVMOD_DUE": ivmod.due_rate,
                    "golden mAP@0.5": corrupted.golden_map["mAP"],
                    "corrupted mAP@0.5": corrupted.corrupted_map["mAP"],
                    "images": ivmod.total_images,
                }
            )
    return rows


def test_fig2b_objdet_ivmod_rates(benchmark, detection_dataset):
    rows = benchmark.pedantic(_run_fig2b, args=(detection_dataset,), rounds=1, iterations=1)

    for row in rows:
        # IVMOD is a per-image rate.
        assert 0.0 <= row["IVMOD_SDE"] <= 1.0
        assert 0.0 <= row["IVMOD_DUE"] <= 1.0
        # As in the paper, NaN/Inf events (DUE) are much rarer than silent
        # detection corruptions for single weight faults.
        assert row["IVMOD_DUE"] <= max(row["IVMOD_SDE"], 0.35)
        # A single weight fault must not corrupt the detections of every image.
        assert row["IVMOD_SDE"] < 0.9

    chart = bar_chart(
        {f"{row['detector']}/{row['dataset']} SDE": row["IVMOD_SDE"] for row in rows}
        | {f"{row['detector']}/{row['dataset']} DUE": row["IVMOD_DUE"] for row in rows},
        title=(
            "Fig. 2b — IVMOD rates, single weight fault per image on exponent bits "
            f"({DETECTION_IMAGES} images per dataset)"
        ),
        max_value=max(0.2, max(row["IVMOD_SDE"] for row in rows)),
    )
    table = comparison_table(
        rows,
        ["detector", "dataset", "IVMOD_SDE", "IVMOD_DUE", "golden mAP@0.5", "corrupted mAP@0.5", "images"],
        title="Paper reference: RetinaNet/CoCo IVMOD_SDE ~= 4.2 %, IVMOD_DUE < 1e-2 (1 fault/image)",
    )
    report("fig2b_objdet_sde", chart + "\n\n" + table)
