"""Experiment ``scale`` — large-scale campaign efficiency (Sections I and IV).

The paper's motivation for PyTorchALFI is *validation efficiency*: campaigns
over many fault locations must be cheap to define, reproducible, and must not
pay a reconfiguration penalty per inference.  This benchmark quantifies the
mechanisms that provide that efficiency on this reproduction:

* fault pre-generation throughput (faults/second) for campaigns of growing
  size — the cost is paid once, before the inference run;
* the per-inference overhead of obtaining the next faulty model from the
  iterator versus re-building a wrapper from scratch for every image (the
  naive baseline the pre-generated fault matrix replaces);
* fault file reuse: storing and reloading a fault matrix is orders of
  magnitude cheaper than regenerating and guarantees identical faults.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.alficore import FaultMatrix, FaultMatrixGenerator, default_scenario, ptfiwrap
from repro.models import vgg16
from repro.pytorchfi import FaultInjection
from repro.visualization import comparison_table


@pytest.fixture(scope="module")
def profiled_vgg():
    model = vgg16(num_classes=10, seed=0).eval()
    return model, FaultInjection(model, input_shape=(3, 32, 32))


def test_scale_fault_pregeneration_throughput(benchmark, profiled_vgg):
    """Generating 100k weight faults for VGG-16 must run at >10k faults/s."""
    _, fi = profiled_vgg
    scenario = default_scenario(
        dataset_size=10_000, num_runs=10, injection_target="weights", random_seed=7
    )
    generator = FaultMatrixGenerator(fi, scenario)

    matrix = benchmark.pedantic(lambda: generator.generate(100_000), rounds=1, iterations=1)
    assert matrix.num_faults == 100_000

    elapsed = benchmark.stats.stats.mean
    throughput = matrix.num_faults / elapsed
    assert throughput > 10_000
    report(
        "scale_pregeneration",
        comparison_table(
            [
                {
                    "faults": matrix.num_faults,
                    "seconds": elapsed,
                    "faults/s": throughput,
                    "bytes/fault": matrix.matrix.nbytes / matrix.num_faults,
                }
            ],
            ["faults", "seconds", "faults/s", "bytes/fault"],
            title="Large-scale campaign: one-off fault pre-generation cost (VGG-16, weight faults)",
        ),
    )


def test_scale_iterator_vs_naive_reconfiguration(benchmark, profiled_vgg):
    """The faulty-model iterator must beat re-wrapping the model per image."""
    model, _ = profiled_vgg
    images = 20
    scenario = default_scenario(
        dataset_size=images, injection_target="weights", random_seed=8, batch_size=1
    )

    def iterator_path():
        wrapper = ptfiwrap(model, scenario=scenario)
        fault_iter = wrapper.get_fimodel_iter()
        return [next(fault_iter) for _ in range(images)]

    def naive_path():
        # The anti-pattern PyTorchALFI avoids: full reconfiguration per image.
        corrupted = []
        for index in range(images):
            wrapper = ptfiwrap(model, scenario=scenario.copy(random_seed=1000 + index))
            corrupted.append(next(wrapper.get_fimodel_iter()))
        return corrupted

    corrupted_models = benchmark.pedantic(iterator_path, rounds=1, iterations=1)
    assert len(corrupted_models) == images
    iterator_seconds = benchmark.stats.stats.mean

    import time

    start = time.perf_counter()
    naive_models = naive_path()
    naive_seconds = time.perf_counter() - start
    assert len(naive_models) == images

    speedup = naive_seconds / iterator_seconds
    assert speedup > 1.5  # pre-generated faults amortise profiling + generation
    report(
        "scale_iterator_vs_naive",
        comparison_table(
            [
                {
                    "strategy": "ptfiwrap iterator (pre-generated faults)",
                    "seconds for 20 faulty models": iterator_seconds,
                },
                {
                    "strategy": "naive re-wrap per image",
                    "seconds for 20 faulty models": naive_seconds,
                },
                {"strategy": "speedup", "seconds for 20 faulty models": speedup},
            ],
            ["strategy", "seconds for 20 faulty models"],
            title="Large-scale campaign: faulty-model iterator vs per-image reconfiguration (VGG-16)",
        ),
    )


def test_scale_fault_file_reuse(benchmark, profiled_vgg, tmp_path):
    """Reloading a stored fault file is cheap and bit-identical to the original."""
    _, fi = profiled_vgg
    scenario = default_scenario(dataset_size=5_000, injection_target="weights", random_seed=9)
    matrix = FaultMatrixGenerator(fi, scenario).generate()
    path = matrix.save(tmp_path / "campaign_faults.npz")

    loaded = benchmark(lambda: FaultMatrix.load(path))
    assert loaded == matrix

    regeneration_cost = None
    import time

    start = time.perf_counter()
    FaultMatrixGenerator(fi, scenario).generate()
    regeneration_cost = time.perf_counter() - start
    reload_cost = benchmark.stats.stats.mean
    assert reload_cost < regeneration_cost
    report(
        "scale_fault_file_reuse",
        comparison_table(
            [
                {"operation": "regenerate 5000 faults", "seconds": regeneration_cost},
                {"operation": "reload stored fault file", "seconds": reload_cost},
                {"operation": "speedup", "seconds": regeneration_cost / reload_cost},
            ],
            ["operation", "seconds"],
            title="Fault persistence: reuse of stored fault sets across experiments",
        ),
    )
