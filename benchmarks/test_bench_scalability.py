"""Experiment ``scale`` — large-scale campaign efficiency (Sections I and IV).

The paper's motivation for PyTorchALFI is *validation efficiency*: campaigns
over many fault locations must be cheap to define, reproducible, and must not
pay a reconfiguration penalty per inference.  This benchmark quantifies the
mechanisms that provide that efficiency on this reproduction:

* fault pre-generation throughput (faults/second) for campaigns of growing
  size — the cost is paid once, before the inference run;
* the per-inference overhead of obtaining the next faulty model from the
  iterator versus re-building a wrapper from scratch for every image (the
  naive baseline the pre-generated fault matrix replaces);
* fault file reuse: storing and reloading a fault matrix is orders of
  magnitude cheaper than regenerating and guarantees identical faults.
"""

import pytest

from benchmarks.conftest import report
from repro.alficore import FaultMatrix, FaultMatrixGenerator, default_scenario, ptfiwrap
from repro.models import vgg16
from repro.pytorchfi import FaultInjection
from repro.visualization import comparison_table


@pytest.fixture(scope="module")
def profiled_vgg():
    model = vgg16(num_classes=10, seed=0).eval()
    return model, FaultInjection(model, input_shape=(3, 32, 32))


def test_scale_fault_pregeneration_throughput(benchmark, profiled_vgg):
    """The vectorized generator must produce >200k faults/s on VGG-16.

    (The seed's per-column generator, still available via
    ``generate(method="percolumn")``, recorded ~80k faults/s on this
    benchmark; the batched draw path is bit-identical per seed and targets
    >=20x that.)
    """
    _, fi = profiled_vgg
    scenario = default_scenario(
        dataset_size=10_000, num_runs=10, injection_target="weights", random_seed=7
    )
    generator = FaultMatrixGenerator(fi, scenario)

    matrix = benchmark.pedantic(
        lambda: generator.generate(100_000), rounds=3, iterations=1, warmup_rounds=1
    )
    assert matrix.num_faults == 100_000

    elapsed = benchmark.stats.stats.mean
    throughput = matrix.num_faults / elapsed
    assert throughput > 200_000
    report(
        "scale_pregeneration",
        comparison_table(
            [
                {
                    "faults": matrix.num_faults,
                    "seconds": elapsed,
                    "faults/s": throughput,
                    "bytes/fault": matrix.matrix.nbytes / matrix.num_faults,
                }
            ],
            ["faults", "seconds", "faults/s", "bytes/fault"],
            title="Large-scale campaign: one-off fault pre-generation cost (VGG-16, weight faults)",
        ),
    )


def test_scale_iterator_vs_naive_reconfiguration(benchmark, profiled_vgg):
    """The clone-free session iterator must beat the clone-per-group iterator

    (the seed implementation of Listing 1) by >=5x and the naive per-image
    re-wrap by a wide margin."""
    model, _ = profiled_vgg
    images = 20
    scenario = default_scenario(
        dataset_size=images, injection_target="weights", random_seed=8, batch_size=1
    )

    def session_path():
        # The campaign engine: faults patched in place, restored bit-exactly.
        wrapper = ptfiwrap(model, scenario=scenario)
        groups = 0
        for group in wrapper.get_fault_group_iter():
            with group:
                groups += 1
        return groups

    def clone_path():
        # The seed iterator: one full model deep copy per fault group.
        wrapper = ptfiwrap(model, scenario=scenario)
        fault_iter = wrapper.get_fimodel_iter()
        return [next(fault_iter) for _ in range(images)]

    def naive_path():
        # The anti-pattern PyTorchALFI avoids: full reconfiguration per image.
        corrupted = []
        for index in range(images):
            wrapper = ptfiwrap(model, scenario=scenario.copy(random_seed=1000 + index))
            corrupted.append(next(wrapper.get_fimodel_iter()))
        return corrupted

    groups = benchmark.pedantic(session_path, rounds=1, iterations=1)
    assert groups == images
    session_seconds = benchmark.stats.stats.mean

    import time

    start = time.perf_counter()
    clone_models = clone_path()
    clone_seconds = time.perf_counter() - start
    assert len(clone_models) == images

    start = time.perf_counter()
    naive_models = naive_path()
    naive_seconds = time.perf_counter() - start
    assert len(naive_models) == images

    speedup_vs_clone = clone_seconds / session_seconds
    speedup_vs_naive = naive_seconds / session_seconds
    assert speedup_vs_clone > 5  # acceptance: >=5x over the seed iterator path
    assert speedup_vs_naive > 1.5
    report(
        "scale_iterator_vs_naive",
        comparison_table(
            [
                {
                    "strategy": "ptfiwrap patch-session iterator (clone-free)",
                    "seconds for 20 faulty models": session_seconds,
                },
                {
                    "strategy": "ptfiwrap clone-per-group iterator (seed path)",
                    "seconds for 20 faulty models": clone_seconds,
                },
                {
                    "strategy": "naive re-wrap per image",
                    "seconds for 20 faulty models": naive_seconds,
                },
                {"strategy": "speedup vs clone-per-group", "seconds for 20 faulty models": speedup_vs_clone},
                {"strategy": "speedup vs naive re-wrap", "seconds for 20 faulty models": speedup_vs_naive},
            ],
            ["strategy", "seconds for 20 faulty models"],
            title="Large-scale campaign: clone-free sessions vs clone-per-group vs per-image reconfiguration (VGG-16)",
        ),
    )


def test_scale_fault_file_reuse(benchmark, profiled_vgg, tmp_path):
    """Reloading a stored fault file is cheap and bit-identical to the original."""
    _, fi = profiled_vgg
    scenario = default_scenario(dataset_size=5_000, injection_target="weights", random_seed=9)
    matrix = FaultMatrixGenerator(fi, scenario).generate()
    path = matrix.save(tmp_path / "campaign_faults.npz")

    loaded = benchmark(lambda: FaultMatrix.load(path))
    assert loaded == matrix

    regeneration_cost = None
    import time

    start = time.perf_counter()
    FaultMatrixGenerator(fi, scenario).generate()
    regeneration_cost = time.perf_counter() - start
    reload_cost = benchmark.stats.stats.mean
    assert reload_cost < regeneration_cost
    report(
        "scale_fault_file_reuse",
        comparison_table(
            [
                {"operation": "regenerate 5000 faults", "seconds": regeneration_cost},
                {"operation": "reload stored fault file", "seconds": reload_cost},
                {"operation": "speedup", "seconds": regeneration_cost / reload_cost},
            ],
            ["operation", "seconds"],
            title="Fault persistence: reuse of stored fault sets across experiments",
        ),
    )
