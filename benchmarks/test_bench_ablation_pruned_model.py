"""Ablation ``pruning`` — use case: original model vs pruned version.

Section V of the paper lists "compare the robustness of NN between the
original model and a pruned version" as a PyTorchALFI use case.  This
ablation prunes 50 % / 80 % of the smallest weights of a fitted classifier,
replays the *identical* stored fault matrix against the original and the
pruned variants (possible because pruning preserves the layer structure),
and compares fault-free accuracy and corruption rates.
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate, top_k_accuracy
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.models.pruning import prune_by_magnitude, sparsity
from repro.visualization import comparison_table

IMAGES = 25


def _run_pruning_ablation() -> list[dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=62)
    model = fit_classifier_head(lenet5(seed=13), dataset, 10)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    labels = np.asarray([dataset[i][1] for i in range(IMAGES)])

    scenario = default_scenario(
        dataset_size=IMAGES,
        injection_target="weights",
        rnd_value_type="bitflip",
        rnd_bit_range=(23, 30),
        random_seed=81,
        batch_size=1,
    )
    base_wrapper = ptfiwrap(model, scenario=scenario)
    fault_matrix = base_wrapper.get_fault_matrix()

    rows = []
    for amount in (0.0, 0.5, 0.8):
        if amount == 0.0:
            variant = model
        else:
            # Prune, then re-fit the classifier head on the calibration data —
            # the stand-in for the fine-tuning step that normally follows
            # magnitude pruning.
            variant = prune_by_magnitude(model, amount)
            fit_classifier_head(variant, dataset, 10)
        wrapper = ptfiwrap(variant, scenario=scenario)
        wrapper.set_fault_matrix(fault_matrix)  # identical faults for every variant
        golden = variant(images)
        fault_iter = wrapper.get_fimodel_iter()
        corrupted = []
        for index in range(IMAGES):
            corrupted_model = next(fault_iter)
            corrupted.append(corrupted_model(images[index : index + 1])[0])
        rates = sde_rate(golden, np.stack(corrupted))
        rows.append(
            {
                "variant": f"pruned {amount:.0%}" if amount else "original",
                "sparsity": sparsity(variant),
                "golden top-1": top_k_accuracy(golden, labels, k=1),
                "masked": rates["masked"],
                "corrupted (SDE+DUE)": rates["sde"] + rates["due"],
            }
        )
    return rows


def test_ablation_pruned_vs_original_robustness(benchmark):
    rows = benchmark.pedantic(_run_pruning_ablation, rounds=1, iterations=1)

    assert rows[0]["variant"] == "original"
    assert rows[0]["sparsity"] < 0.05
    assert rows[1]["sparsity"] > 0.4 and rows[2]["sparsity"] > 0.7
    # Moderate pruning must not destroy the fault-free accuracy of the fitted model.
    assert rows[1]["golden top-1"] >= 0.7
    for row in rows:
        assert 0.0 <= row["corrupted (SDE+DUE)"] <= 1.0
        assert row["masked"] + row["corrupted (SDE+DUE)"] == 1.0

    report(
        "ablation_pruned_model",
        comparison_table(
            rows,
            ["variant", "sparsity", "golden top-1", "masked", "corrupted (SDE+DUE)"],
            title=(
                "Original vs pruned model under identical weight faults "
                f"(LeNet-5, exponent bits, {IMAGES} images, same fault file)"
            ),
        ),
    )
