"""Ablation ``architectures`` — use case: comparing the robustness of different NN types.

Runs the same single-weight-fault exponent-bit campaign against structurally
different classifier families (classic conv+FC LeNet, deep VGG-style,
residual ResNet-style, depthwise-separable MobileNet-style) and compares
their masked / SDE / DUE profiles under identical campaign parameters — the
"comparing the robustness of different types of NN" use case of Section V.
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate, top_k_accuracy
from repro.models import lenet5, mobilenet_lite, resnet18, vgg11
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

IMAGES = 20

ARCHITECTURES = {
    "lenet5 (conv+fc)": lenet5,
    "vgg11 (deep conv)": vgg11,
    "resnet18 (residual)": resnet18,
    "mobilenet (depthwise)": mobilenet_lite,
}


def _run_architecture_comparison() -> list[dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=63)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    labels = np.asarray([dataset[i][1] for i in range(IMAGES)])
    rows = []
    for name, factory in ARCHITECTURES.items():
        model = fit_classifier_head(factory(num_classes=10, seed=14), dataset, 10)
        golden = model(images)
        scenario = default_scenario(
            dataset_size=IMAGES,
            injection_target="weights",
            rnd_value_type="bitflip",
            rnd_bit_range=(23, 30),
            random_seed=91,
            batch_size=1,
        )
        wrapper = ptfiwrap(model, scenario=scenario)
        fault_iter = wrapper.get_fimodel_iter()
        corrupted = []
        for index in range(IMAGES):
            corrupted_model = next(fault_iter)
            corrupted.append(corrupted_model(images[index : index + 1])[0])
        rates = sde_rate(golden, np.stack(corrupted))
        rows.append(
            {
                "architecture": name,
                "params": wrapper.fault_injection.original_model.num_parameters(),
                "injectable layers": wrapper.fault_injection.num_layers,
                "golden top-1": top_k_accuracy(golden, labels, k=1),
                "masked": rates["masked"],
                "SDE": rates["sde"],
                "DUE": rates["due"],
            }
        )
    return rows


def test_ablation_architecture_comparison(benchmark):
    rows = benchmark.pedantic(_run_architecture_comparison, rounds=1, iterations=1)

    assert len(rows) == len(ARCHITECTURES)
    for row in rows:
        # Every architecture must be a usable classifier before injection...
        assert row["golden top-1"] >= 0.8
        # ...and its outcome taxonomy must be complete.
        assert row["masked"] + row["SDE"] + row["DUE"] == 1.0
    # Masking dominates for single weight faults across every family.
    assert min(row["masked"] for row in rows) >= 0.5
    # The families genuinely differ in structure (layer counts span a range).
    layer_counts = [row["injectable layers"] for row in rows]
    assert max(layer_counts) > 2 * min(layer_counts)

    report(
        "ablation_architectures",
        comparison_table(
            rows,
            ["architecture", "params", "injectable layers", "golden top-1", "masked", "SDE", "DUE"],
            title=(
                "Robustness comparison across NN families under identical campaigns "
                f"(single weight fault/image, exponent bits, {IMAGES} images)"
            ),
        ),
    )
