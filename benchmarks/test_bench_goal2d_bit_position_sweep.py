"""Experiment ``goal2d`` — Section V item 2d: sweep the flipped bit position.

Declares the bit-position sweep as one ``sweep:`` grid over
``scenario.rnd_bit_range`` and runs it through the sweep manager
(:func:`repro.experiments.run_sweep`), measuring the SDE rate per flipped
bit of the float32 word — verifying which bit positions of the numeric type
are likely to produce failures.  The expected shape (also the paper's
motivation for exponent-bit campaigns): the high exponent bits dominate,
mantissa bits are almost always masked.
"""

from benchmarks.conftest import report
from repro.experiments import Artifacts, Experiment, run_sweep
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.tensor import exponent_bit_range, mantissa_bit_range
from repro.visualization import sde_per_bit_chart

IMAGES = 20
# Sweep a representative subset of bit positions across the float32 word.
BIT_POSITIONS = (0, 5, 10, 15, 20, 22, 23, 25, 27, 29, 30, 31)


def _run_bit_sweep() -> dict[int, float]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=45)
    model = fit_classifier_head(lenet5(seed=9), dataset, 10)
    spec = (
        Experiment.builder()
        .name("goal2d")
        .model("lenet5", num_classes=10, seed=9)
        .dataset("synthetic-classification", num_samples=IMAGES, num_classes=10, noise=0.25, seed=45)
        .scenario(
            dataset_size=IMAGES,
            injection_target="weights",
            rnd_value_type="bitflip",
            random_seed=99,
            batch_size=1,
            model_name="lenet5",
        )
        .sweep(axes={"scenario.rnd_bit_range": [[bit, bit] for bit in BIT_POSITIONS]})
        .build()
    )
    outcome = run_sweep(spec, Artifacts(model=model, dataset=dataset))
    sde_by_bit: dict[int, float] = {}
    for point in outcome.outcomes:
        bit = point.point.overrides["scenario.rnd_bit_range"][0]
        kpis = point.summary["corrupted"]
        sde_by_bit[bit] = kpis["sde_rate"] + kpis["due_rate"]
    return sde_by_bit


def test_goal2d_bit_position_sweep(benchmark):
    sde_by_bit = benchmark.pedantic(_run_bit_sweep, rounds=1, iterations=1)

    exponent_low, exponent_high = exponent_bit_range("float32")
    mantissa_low, mantissa_high = mantissa_bit_range("float32")
    exponent_rates = [rate for bit, rate in sde_by_bit.items() if exponent_low <= bit <= exponent_high]
    low_mantissa_rates = [rate for bit, rate in sde_by_bit.items() if mantissa_low <= bit <= 15]

    # Low mantissa bits are (nearly) always masked for single weight faults.
    assert max(low_mantissa_rates) <= 0.1
    # The exponent field must dominate: its peak is the global peak of the sweep.
    assert max(exponent_rates) == max(sde_by_bit.values())
    # The exponent MSB (bit 30) must produce corruption on this model.
    assert sde_by_bit[30] > 0.0

    report(
        "goal2d_bit_position_sweep",
        sde_per_bit_chart(
            sde_by_bit,
            title=(
                "Goal 2d — SDE+DUE rate vs flipped bit position (LeNet-5 weights, "
                f"{IMAGES} images per bit; float32 exponent = bits {exponent_low}..{exponent_high})"
            ),
        ),
    )
