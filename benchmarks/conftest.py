"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark reproduces one table, figure or described test goal of the
paper (see DESIGN.md for the experiment index).  The campaigns are scaled to
synthetic datasets so the whole harness runs in minutes on a laptop, but the
parameters (fault model, bit ranges, injection policy, KPIs) match the paper.

Each benchmark both *times* the campaign (pytest-benchmark) and *reports* the
reproduced rows/series: the tables are printed and written to
``benchmarks/results/<experiment>.txt`` so they can be compared against the
values quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.experiments.runner import Artifacts, facade_run_scenario, facade_spec, run
from repro.models import alexnet, resnet50, vgg16
from repro.models.pretrained import fit_classifier_head

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_campaign.json"

# Quick mode (set REPRO_BENCH_QUICK=1): smaller campaigns for CI smoke jobs.
BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

# Campaign sizes: large enough for stable rates, small enough for minutes.
CLASSIFICATION_IMAGES = 40
DETECTION_IMAGES = 15
NUM_CLASSES = 10
DET_CLASSES = 5


def run_campaign(
    task: str,
    model,
    dataset,
    scenario,
    *,
    resil_model=None,
    model_name: str | None = None,
    num_faults: int | None = None,
    inj_policy: str | None = None,
    num_runs: int | None = None,
    input_shape: tuple[int, ...] = (3, 32, 32),
    num_classes: int | None = None,
    output_dir=None,
    workers: int = 1,
    num_shards: int | None = None,
    prefix_reuse: bool = True,
    golden_cache=None,
):
    """Run one campaign on pre-built objects through the Experiment API.

    The spec is assembled exactly the way the historic facades did
    (``facade_spec`` + ``facade_run_scenario`` + in-memory ``Artifacts``), so
    campaigns benchmarked here produce the same records and KPIs those
    facade-based runs did — without going through the deprecated shims.
    ``num_faults``/``inj_policy``/``num_runs`` override the scenario when
    given; ``None`` keeps the scenario's own values.
    """
    model_name = model_name if model_name is not None else scenario.model_name
    model = model.eval()
    resil_model = resil_model.eval() if resil_model is not None else None
    scenario = facade_run_scenario(
        scenario,
        num_faults=num_faults if num_faults is not None else scenario.max_faults_per_image,
        inj_policy=inj_policy if inj_policy is not None else scenario.inj_policy,
        num_runs=num_runs if num_runs is not None else scenario.num_runs,
        model_name=model_name,
    )
    spec = facade_spec(
        name=model_name,
        task=task,
        scenario=scenario,
        workers=workers,
        num_shards=num_shards,
        prefix_reuse=prefix_reuse,
        input_shape=input_shape,
        output_dir=output_dir,
    )
    return run(
        spec,
        artifacts=Artifacts(
            model=model,
            resil_model=resil_model,
            dataset=dataset,
            golden_cache=golden_cache,
            num_classes=num_classes,
        ),
    )


def report(experiment_id: str, text: str) -> None:
    """Print a reproduced table/series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n=== {experiment_id} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def record_benchmark(
    name: str,
    wall_time: float | None = None,
    throughput: float | None = None,
    speedup_vs_reference: float | None = None,
    **extra,
) -> None:
    """Append/update one machine-readable entry in ``BENCH_campaign.json``.

    The free-form ``.txt`` tables are for humans; this file tracks the perf
    trajectory (wall-time, throughput, speedup vs the reference strategy)
    across PRs so regressions are diffable.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    entries: list[dict] = []
    if BENCH_JSON.exists():
        try:
            loaded = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            loaded = []
        if isinstance(loaded, list):
            # Drop malformed (e.g. hand-edited) entries instead of tripping
            # over them on every later benchmark run.
            entries = [item for item in loaded if isinstance(item, dict) and "name" in item]
    entry = next((item for item in entries if item["name"] == name), None)
    if entry is None:
        entry = {"name": name}
        entries.append(entry)
    if wall_time is not None:
        entry["wall_time"] = wall_time
    if throughput is not None:
        entry["throughput"] = throughput
    if speedup_vs_reference is not None:
        entry["speedup_vs_reference"] = speedup_vs_reference
    entry.update(extra)
    entries.sort(key=lambda item: item["name"])
    BENCH_JSON.write_text(json.dumps(entries, indent=2) + "\n")


@pytest.fixture(autouse=True)
def _bench_json_autorecord(request):
    """Record wall-time of every ``test_bench_*`` entry that timed something.

    Entries that also report throughput/speedup call :func:`record_benchmark`
    themselves; this fixture merges into the same JSON entry by test name.
    """
    yield
    bench = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(bench, "stats", None)
    if stats is not None:
        record_benchmark(request.node.name, wall_time=stats.stats.mean)


@pytest.fixture(scope="session")
def classification_dataset() -> SyntheticClassificationDataset:
    """Shared synthetic classification dataset (ImageNet stand-in)."""
    return SyntheticClassificationDataset(
        num_samples=CLASSIFICATION_IMAGES, num_classes=NUM_CLASSES, noise=0.25, seed=11
    )


@pytest.fixture(scope="session")
def detection_dataset() -> CocoLikeDetectionDataset:
    """Shared synthetic CoCo-style detection dataset."""
    return CocoLikeDetectionDataset(
        num_samples=DETECTION_IMAGES, num_classes=DET_CLASSES, seed=13
    )


@pytest.fixture(scope="session")
def fitted_classifiers(classification_dataset):
    """The three classification models of Fig. 2a with fitted heads."""
    models = {}
    for name, factory in (("alexnet", alexnet), ("vgg16", vgg16), ("resnet50", resnet50)):
        model = factory(num_classes=NUM_CLASSES, seed=3)
        fit_classifier_head(model, classification_dataset, NUM_CLASSES)
        models[name] = model
    return models
