"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark reproduces one table, figure or described test goal of the
paper (see DESIGN.md for the experiment index).  The campaigns are scaled to
synthetic datasets so the whole harness runs in minutes on a laptop, but the
parameters (fault model, bit ranges, injection policy, KPIs) match the paper.

Each benchmark both *times* the campaign (pytest-benchmark) and *reports* the
reproduced rows/series: the tables are printed and written to
``benchmarks/results/<experiment>.txt`` so they can be compared against the
values quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.models import alexnet, resnet50, vgg16
from repro.models.pretrained import fit_classifier_head

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Campaign sizes: large enough for stable rates, small enough for minutes.
CLASSIFICATION_IMAGES = 40
DETECTION_IMAGES = 15
NUM_CLASSES = 10
DET_CLASSES = 5


def report(experiment_id: str, text: str) -> None:
    """Print a reproduced table/series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n=== {experiment_id} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def classification_dataset() -> SyntheticClassificationDataset:
    """Shared synthetic classification dataset (ImageNet stand-in)."""
    return SyntheticClassificationDataset(
        num_samples=CLASSIFICATION_IMAGES, num_classes=NUM_CLASSES, noise=0.25, seed=11
    )


@pytest.fixture(scope="session")
def detection_dataset() -> CocoLikeDetectionDataset:
    """Shared synthetic CoCo-style detection dataset."""
    return CocoLikeDetectionDataset(
        num_samples=DETECTION_IMAGES, num_classes=DET_CLASSES, seed=13
    )


@pytest.fixture(scope="session")
def fitted_classifiers(classification_dataset):
    """The three classification models of Fig. 2a with fitted heads."""
    models = {}
    for name, factory in (("alexnet", alexnet), ("vgg16", vgg16), ("resnet50", resnet50)):
        model = factory(num_classes=NUM_CLASSES, seed=3)
        fit_classifier_head(model, classification_dataset, NUM_CLASSES)
        models[name] = model
    return models
