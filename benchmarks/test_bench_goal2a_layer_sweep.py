"""Experiment ``goal2a`` — Section V item 2a: iterate through single layers.

Uses ``wrapper.get_scenario()`` / ``wrapper.set_scenario()`` to move the
fault injection focus layer by layer through the CNN (the paper's layer
sweep) and reports the per-layer SDE rate.  Early convolution layers, whose
corrupted activations pass through the whole network, are expected to differ
from the final fully connected layers that directly drive the output.
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.visualization import sde_per_layer_chart

IMAGES = 25


def _run_layer_sweep() -> dict[int, dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=42)
    model = fit_classifier_head(lenet5(seed=4), dataset, 10)
    scenario = default_scenario(
        dataset_size=IMAGES,
        injection_target="neurons",
        rnd_value_type="bitflip",
        rnd_bit_range=(30, 31),  # high-impact bits make per-layer differences visible
        random_seed=55,
        batch_size=1,
    )
    wrapper = ptfiwrap(model, scenario=scenario)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    golden = model(images)

    per_layer: dict[int, dict] = {}
    for layer in range(wrapper.fault_injection.num_layers):
        # The paper's pattern: fetch the scenario, move the layer window,
        # write it back; this regenerates the fault set for the new layer.
        current = wrapper.get_scenario()
        current.layer_range = (layer, layer)
        wrapper.set_scenario(current)
        fault_iter = wrapper.get_fimodel_iter()
        corrupted_logits = []
        for index in range(IMAGES):
            corrupted_model = next(fault_iter)
            corrupted_logits.append(corrupted_model(images[index : index + 1])[0])
        rates = sde_rate(golden, np.stack(corrupted_logits))
        layers_hit = set(np.unique(wrapper.get_fault_matrix().matrix[1, :]))
        per_layer[layer] = {
            "rates": rates,
            "layers_hit": layers_hit,
            "layer_name": wrapper.fault_injection.layers[layer].name,
        }
    return per_layer


def test_goal2a_layer_by_layer_sweep(benchmark):
    per_layer = benchmark.pedantic(_run_layer_sweep, rounds=1, iterations=1)

    assert len(per_layer) == 5  # LeNet-5: 2 conv + 3 linear layers
    for layer, entry in per_layer.items():
        # The sweep must have confined every fault to the selected layer.
        assert entry["layers_hit"] == {float(layer)}
        total = entry["rates"]["masked"] + entry["rates"]["sde"] + entry["rates"]["due"]
        assert total == 1.0

    sde_by_layer = {layer: entry["rates"]["sde"] for layer, entry in per_layer.items()}
    # At least one layer must show sensitivity to MSB flips.
    assert max(sde_by_layer.values()) > 0.0

    report(
        "goal2a_layer_sweep",
        sde_per_layer_chart(
            sde_by_layer,
            title=f"Goal 2a — SDE rate per injected layer (LeNet-5, neuron bit flips at bits 30-31, {IMAGES} images/layer)",
            layer_names={layer: entry["layer_name"] for layer, entry in per_layer.items()},
        ),
    )
