"""Experiment ``goal2a`` — Section V item 2a: iterate through single layers.

Declares the paper's layer sweep as one ``sweep:`` grid over
``scenario.layer_range`` and runs it through the sweep manager
(:func:`repro.experiments.run_sweep`): every layer becomes one
content-addressable grid point executed via the ordinary experiment path,
and the per-layer SDE rates are read off the aggregated point summaries.
Early convolution layers, whose corrupted activations pass through the
whole network, are expected to differ from the final fully connected layers
that directly drive the output.
"""

import numpy as np

from benchmarks.conftest import report
from repro.data import SyntheticClassificationDataset
from repro.experiments import Artifacts, Experiment, run_sweep
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.pytorchfi import FaultInjection
from repro.visualization import sde_per_layer_chart

IMAGES = 25


def _run_layer_sweep() -> dict[int, dict]:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=42)
    model = fit_classifier_head(lenet5(seed=4), dataset, 10)
    injector = FaultInjection(model)
    spec = (
        Experiment.builder()
        .name("goal2a")
        .model("lenet5", num_classes=10, seed=4)
        .dataset("synthetic-classification", num_samples=IMAGES, num_classes=10, noise=0.25, seed=42)
        .scenario(
            dataset_size=IMAGES,
            injection_target="neurons",
            rnd_value_type="bitflip",
            rnd_bit_range=(30, 31),  # high-impact bits make per-layer differences visible
            random_seed=55,
            batch_size=1,
            model_name="lenet5",
        )
        .sweep(
            axes={
                "scenario.layer_range": [
                    [layer, layer] for layer in range(injector.num_layers)
                ]
            }
        )
        .build()
    )
    outcome = run_sweep(spec, Artifacts(model=model, dataset=dataset))

    per_layer: dict[int, dict] = {}
    for point in outcome.outcomes:
        layer = point.point.overrides["scenario.layer_range"][0]
        result = point.load_result()
        # The sweep must have confined every fault to the selected layer; the
        # fault matrix row 1 records each fault's layer index.
        layers_hit = set(np.unique(result.wrapper.get_fault_matrix().matrix[1, :]))
        kpis = point.summary["corrupted"]
        per_layer[layer] = {
            "rates": {
                "masked": kpis["masked_rate"],
                "sde": kpis["sde_rate"],
                "due": kpis["due_rate"],
            },
            "layers_hit": layers_hit,
            "layer_name": injector.layers[layer].name,
        }
    return per_layer


def test_goal2a_layer_by_layer_sweep(benchmark):
    per_layer = benchmark.pedantic(_run_layer_sweep, rounds=1, iterations=1)

    assert len(per_layer) == 5  # LeNet-5: 2 conv + 3 linear layers
    for layer, entry in per_layer.items():
        # The sweep must have confined every fault to the selected layer.
        assert entry["layers_hit"] == {float(layer)}
        total = entry["rates"]["masked"] + entry["rates"]["sde"] + entry["rates"]["due"]
        assert total == 1.0

    sde_by_layer = {layer: entry["rates"]["sde"] for layer, entry in per_layer.items()}
    # At least one layer must show sensitivity to MSB flips.
    assert max(sde_by_layer.values()) > 0.0

    report(
        "goal2a_layer_sweep",
        sde_per_layer_chart(
            sde_by_layer,
            title=f"Goal 2a — SDE rate per injected layer (LeNet-5, neuron bit flips at bits 30-31, {IMAGES} images/layer)",
            layer_names={layer: entry["layer_name"] for layer, entry in per_layer.items()},
        ),
    )
