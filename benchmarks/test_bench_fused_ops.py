"""Experiment ``scale_fused_ops`` — fused segment execution vs the interpreter.

PR 10 turned the flat segment chain of :class:`~repro.nn.forward_plan.
ForwardPlan` into a per-segment op graph: elementwise runs collapse into
single in-place chains inside a liveness-planned arena, and conv+bias+relu
triples execute as one kernel (see ``docs/ir.md``).  This benchmark tracks
that replacement on the elementwise-heavy :func:`~repro.models.elemnet`
reference model:

* end-to-end full-model forward under the unfused interpreter executor vs
  the fused executor — acceptance requires >= 1.3x;
* per-region rows (segment ranges grouped by submodule: stem, towers,
  mixing convs, head) comparing both executors over identical activations;
* the bit-exactness contract: fused outputs must be byte-identical to the
  interpreter for the full pass and for every ``resume(k)`` suffix entry;
* the memory contract: the fused executor's fresh allocations per pass plus
  its arena footprint stay below the interpreter's per-pass allocations
  (O(peak) vs O(sum), asserted precisely in ``tests/test_nn_fuse.py``).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import BENCH_QUICK, record_benchmark, report
from repro.models import elemnet
from repro.nn.forward_plan import ForwardPlan
from repro.visualization import comparison_table

BATCH = 4 if BENCH_QUICK else 8
ROUNDS = 5 if BENCH_QUICK else 15
SPEEDUP_FLOOR = 1.3


def _input(batch: int) -> np.ndarray:
    rng = np.random.default_rng(17)
    return rng.standard_normal((batch, 3, 32, 32)).astype(np.float32)


def _regions(plan: ForwardPlan) -> list[tuple[str, int, int]]:
    """Contiguous segment ranges grouped by top-level submodule name."""
    regions: list[tuple[str, int, int]] = []
    for index, name in enumerate(plan.segment_names):
        top = name.split(".", 1)[0]
        if regions and regions[-1][0] == top:
            regions[-1] = (top, regions[-1][1], index + 1)
        else:
            regions.append((top, index, index + 1))
    return regions


def _time_range(plan: ForwardPlan, start: int, stop: int, act: np.ndarray, rounds: int) -> float:
    executor = plan._executor
    executor.run_range(start, stop, act)  # warm: build programs, grow arena
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        executor.run_range(start, stop, act)
        best = min(best, time.perf_counter() - t0)
    return best


def test_fused_vs_interpreter_elemnet(benchmark):
    """Fused executor must be >= 1.3x faster end-to-end on elemnet."""
    model = elemnet().eval()
    x = _input(BATCH)
    interp = ForwardPlan.trace(model, x, executor="interpreter")
    fused = ForwardPlan.trace(model, x, executor="fused")
    assert interp.valid and interp.executor_name == "interpreter"
    assert fused.valid and fused.executor_name == "fused"
    num_segments = len(interp.segments)

    # Bit-exactness contract: full pass and every suffix entry byte-identical.
    assert fused.resume(0, x).tobytes() == interp.resume(0, x).tobytes()
    boundaries = list(range(num_segments)) if not BENCH_QUICK else [0, 1, num_segments // 2]
    for k in boundaries:
        a_k = interp.run_prefix(x, k)
        assert fused.resume(k, a_k).tobytes() == interp.resume(k, a_k).tobytes(), (
            f"fused suffix resume({k}) diverged from the interpreter"
        )

    def fused_forward():
        return fused.resume(0, x)

    benchmark.pedantic(fused_forward, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    fused_seconds = benchmark.stats.stats.min

    def measure_interpreter() -> float:
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            interp.resume(0, x)
            best = min(best, time.perf_counter() - t0)
        return best

    interp.resume(0, x)  # warm
    interp_seconds = measure_interpreter()
    speedup = interp_seconds / fused_seconds
    if speedup <= SPEEDUP_FLOOR:
        # Shield the CI gate against transient load: one re-measurement of
        # both paths (best-of-N each) before judging the floor.
        interp_seconds = min(interp_seconds, measure_interpreter())
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            t1 = time.perf_counter()
            fused.resume(0, x)
            fused_seconds = min(fused_seconds, time.perf_counter() - t1)
        del t0
        speedup = interp_seconds / fused_seconds
    assert speedup > SPEEDUP_FLOOR, (
        f"fused executor regressed: {speedup:.2f}x vs interpreter "
        f"(floor {SPEEDUP_FLOOR}x on elemnet)"
    )

    # Per-region rows: identical boundary activations, both executors.
    rows = []
    for top, start, stop in _regions(interp):
        a_start = interp.run_prefix(x, start)
        t_interp = _time_range(interp, start, stop, a_start, ROUNDS)
        t_fused = _time_range(fused, start, stop, a_start, ROUNDS)
        rows.append(
            {
                "region": f"{top} [{start}:{stop})",
                "interpreter ms": t_interp * 1e3,
                "fused ms": t_fused * 1e3,
                "speedup": t_interp / t_fused,
            }
        )
    rows.append(
        {
            "region": "end-to-end",
            "interpreter ms": interp_seconds * 1e3,
            "fused ms": fused_seconds * 1e3,
            "speedup": speedup,
        }
    )
    record_benchmark(
        "scale_fused_ops_end_to_end",
        wall_time=fused_seconds,
        throughput=BATCH / fused_seconds,
        speedup_vs_reference=speedup,
    )
    for row in rows[:-1]:
        record_benchmark(
            f"scale_fused_ops_region_{row['region'].split(' ')[0]}",
            wall_time=row["fused ms"] / 1e3,
            speedup_vs_reference=row["speedup"],
        )
    report(
        "scale_fused_ops",
        comparison_table(
            rows,
            ["region", "interpreter ms", "fused ms", "speedup"],
            title=(
                f"Fused vs interpreter executor: elemnet, batch {BATCH}, "
                f"{num_segments} segments; outputs byte-identical"
            ),
        ),
    )
