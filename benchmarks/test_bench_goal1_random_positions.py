"""Experiment ``goal1`` — Section V item 1: random faults throughout the network.

Injects neuron bit flips at random positions throughout a classifier (all
layers, all bit positions) to determine the probability of failure of the
model output in the presence of hardware faults — the paper's most basic
campaign, driven entirely by the scenario defaults (Listing 1 integration).
"""

import numpy as np

from benchmarks.conftest import report
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import evaluate_classification_campaign
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

IMAGES = 60


def _run_random_position_campaign() -> dict:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=41)
    model = fit_classifier_head(lenet5(seed=2), dataset, 10)
    scenario = default_scenario(
        dataset_size=IMAGES,
        injection_target="neurons",
        rnd_value_type="bitflip",
        rnd_bit_range=(0, 31),
        weighted_layer_selection=True,
        random_seed=77,
        batch_size=1,
    )
    wrapper = ptfiwrap(model, scenario=scenario)
    fault_iter = wrapper.get_fimodel_iter()

    golden_logits, corrupted_logits, labels = [], [], []
    for index in range(IMAGES):
        image, label = dataset[index]
        batch = image[None, ...]
        corrupted_model = next(fault_iter)
        golden_logits.append(model(batch)[0])
        corrupted_logits.append(corrupted_model(batch)[0])
        labels.append(label)
    result = evaluate_classification_campaign(
        np.stack(golden_logits), np.stack(corrupted_logits), np.asarray(labels), model_name="lenet5"
    )
    layers_hit = wrapper.get_fault_matrix().matrix[1, :]
    return {
        "result": result,
        "distinct_layers_hit": len(np.unique(layers_hit)),
        "num_layers": wrapper.fault_injection.num_layers,
        "applied": len(wrapper.applied_faults),
    }


def test_goal1_random_positions_throughout_network(benchmark):
    summary = benchmark.pedantic(_run_random_position_campaign, rounds=1, iterations=1)
    result = summary["result"]

    assert result.num_inferences == IMAGES
    assert summary["applied"] == IMAGES  # exactly one neuron fault per image applied
    # Random positions must actually spread over the network.
    assert summary["distinct_layers_hit"] >= 2
    # Neural networks tolerate most single neuron bit flips: masking dominates.
    assert result.masked_rate > 0.5
    assert result.masked_rate + result.sde_rate + result.due_rate == 1.0

    report(
        "goal1_random_positions",
        comparison_table(
            [
                {
                    "model": "lenet5",
                    "inferences": result.num_inferences,
                    "masked": result.masked_rate,
                    "SDE": result.sde_rate,
                    "DUE": result.due_rate,
                    "layers hit": f"{summary['distinct_layers_hit']}/{summary['num_layers']}",
                }
            ],
            ["model", "inferences", "masked", "SDE", "DUE", "layers hit"],
            title="Goal 1 — failure probability under random neuron bit flips (any layer, any bit)",
        ),
    )
