"""Experiment ``table1`` — Table I: fault definition parameters for neuron FI.

Generates a neuron fault matrix for a CNN and reproduces Table I: the seven
rows of the matrix (batch, layer, channel, depth, height, width, value), one
column per fault, and verifies the semantics of every row.  The benchmark
times fault matrix generation, which the paper highlights as the step that
makes large-scale campaigns cheap (all faults are pre-generated once).
"""


from benchmarks.conftest import report
from repro.alficore import FaultMatrixGenerator, NEURON_ROWS, default_scenario
from repro.models import vgg16
from repro.pytorchfi import FaultInjection
from repro.visualization import comparison_table

TABLE_I_DESCRIPTIONS = {
    "batch": "number of images within a batch",
    "layer": "n-th layer out of all available layers",
    "channel": "n-th channel out of all available channels",
    "depth": "additional index for conv3d layers",
    "height": "y position in input",
    "width": "x position in input",
    "value": "either a number or the index of bit position",
}


def test_table1_neuron_fault_matrix(benchmark):
    model = vgg16(num_classes=10, seed=0).eval()
    fi = FaultInjection(model, batch_size=4, input_shape=(3, 32, 32))
    scenario = default_scenario(
        dataset_size=100,
        num_runs=2,
        max_faults_per_image=2,
        batch_size=4,
        injection_target="neurons",
        rnd_bit_range=(0, 31),
        random_seed=21,
    )

    matrix = benchmark(lambda: FaultMatrixGenerator(fi, scenario).generate())

    # --- Table I structure -------------------------------------------------
    assert matrix.rows == NEURON_ROWS
    assert matrix.matrix.shape == (7, scenario.total_faults)
    assert matrix.num_faults == 100 * 2 * 2

    # Row semantics: every coordinate stays within the profiled layer shapes.
    for column in range(0, matrix.num_faults, 37):
        fault = matrix.to_neuron_faults([column])[0]
        shape = fi.get_layer_info(fault.layer).output_shape
        assert 0 <= fault.batch < scenario.batch_size
        assert 0 <= fault.channel < shape[1]
        if len(shape) == 4:
            assert 0 <= fault.height < shape[2]
            assert 0 <= fault.width < shape[3]
        assert 0 <= fault.value <= 31

    rows = [
        {
            "line": index + 1,
            "ID": name,
            "description": TABLE_I_DESCRIPTIONS[name],
            "example (fault #0)": f"{matrix.column(0)[index]:.0f}",
            "min": f"{matrix.matrix[index].min():.0f}",
            "max": f"{matrix.matrix[index].max():.0f}",
        }
        for index, name in enumerate(NEURON_ROWS)
    ]
    report(
        "table1_fault_matrix",
        comparison_table(
            rows,
            ["line", "ID", "description", "example (fault #0)", "min", "max"],
            title=(
                "Table I — fault definition parameters for neuron fault injection "
                f"(fault matrix 7 x {matrix.num_faults}, VGG-16, n = a*b*c = 100*2*2)"
            ),
        ),
    )


def test_table1_weight_fault_matrix_layout(benchmark):
    """Weight matrices share the layout with re-interpreted first rows."""
    model = vgg16(num_classes=10, seed=0).eval()
    fi = FaultInjection(model, input_shape=(3, 32, 32))
    scenario = default_scenario(
        dataset_size=200, injection_target="weights", rnd_bit_range=(0, 31), random_seed=22
    )
    matrix = benchmark(lambda: FaultMatrixGenerator(fi, scenario).generate())
    assert matrix.rows[0] == "layer"
    assert matrix.rows[1] == "out_channel"
    assert matrix.rows[2] == "in_channel"
    for column in range(0, matrix.num_faults, 41):
        fault = matrix.to_weight_faults([column])[0]
        shape = fi.get_layer_info(fault.layer).weight_shape
        assert 0 <= fault.out_channel < shape[0]
        assert 0 <= fault.in_channel < shape[1]
    report(
        "table1_weight_matrix",
        "Weight fault matrix layout: rows = "
        + ", ".join(matrix.rows)
        + f"; {matrix.num_faults} pre-generated faults for VGG-16.",
    )
