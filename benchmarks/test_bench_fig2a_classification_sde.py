"""Experiment ``fig2a`` — Fig. 2a: SDE rates for image classification models.

The paper injects single weight faults restricted to exponent bits into
ResNet-50, VGG-16 and AlexNet and reports the resulting silent-data-error
rates without protection and with Ranger/Clipper-style activation range
supervision (VGG-16 unprotected: ~11.8 % SDE for one fault per image).

This benchmark reproduces the setup end-to-end: pre-trained (head-fitted)
models, one weight fault per image drawn from the exponent bit range, SDE
measured as a top-1 change relative to the fault-free run, and the same
fault matrix replayed against the Ranger-hardened variant of each model.
The expected *shape*: unprotected SDE rates in the percent range dominated
by the exponent MSB, and a large reduction under protection.
"""

import numpy as np

from benchmarks.conftest import CLASSIFICATION_IMAGES, NUM_CLASSES, report, run_campaign
from repro.alficore import apply_protection, collect_activation_bounds, default_scenario
from repro.tensor import exponent_bit_range
from repro.visualization import bar_chart, comparison_table


def _run_fig2a(models: dict, dataset) -> list[dict]:
    exponent_bits = exponent_bit_range("float32")
    rows = []
    for model_name, model in models.items():
        # Calibrate the protection bounds over the full test set, as the
        # Ranger/Clipper reference does, so fault-free activations are never
        # clamped and the hardened baseline matches the unprotected one.
        calibration = np.stack([dataset[i][0] for i in range(len(dataset))])
        bounds = collect_activation_bounds(model, [calibration])
        hardened = apply_protection(model, bounds, "ranger")
        scenario = default_scenario(
            injection_target="weights",
            rnd_value_type="bitflip",
            rnd_bit_range=exponent_bits,
            random_seed=101,
            model_name=model_name,
        )
        result = run_campaign(
            "classification", model, dataset, scenario,
            resil_model=hardened, model_name=model_name,
            num_faults=1, inj_policy="per_image", num_runs=1,
        )
        corrupted, resil = result.results["corrupted"], result.results["resil"]
        rows.append(
            {
                "model": model_name,
                "golden top1": corrupted.golden_top1_accuracy,
                "SDE (no protection)": corrupted.sde_rate,
                "DUE (no protection)": corrupted.due_rate,
                "SDE (Ranger)": resil.sde_rate,
                "DUE (Ranger)": resil.due_rate,
                "inferences": corrupted.num_inferences,
            }
        )
    return rows


def test_fig2a_classification_sde_rates(benchmark, fitted_classifiers, classification_dataset):
    rows = benchmark.pedantic(
        _run_fig2a, args=(fitted_classifiers, classification_dataset), rounds=1, iterations=1
    )

    by_model = {row["model"]: row for row in rows}
    # Fault-free accuracy must be high enough for SDE rates to be meaningful.
    for row in rows:
        assert row["golden top1"] >= 0.8
        # Single exponent-bit weight faults: SDE rate in the paper's order of
        # magnitude (a few percent up to a few tens of percent), never a
        # majority of inferences.
        assert 0.0 <= row["SDE (no protection)"] <= 0.6
        # Ranger protection must not increase the overall corruption rate
        # (SDE + DUE).  Protection can convert a detected NaN/Inf outcome into
        # a silent one after clamping, so SDE alone is compared jointly with
        # DUE, with one image of Monte-Carlo wiggle allowed.
        unprotected_total = row["SDE (no protection)"] + row["DUE (no protection)"]
        protected_total = row["SDE (Ranger)"] + row["DUE (Ranger)"]
        assert protected_total <= unprotected_total + 1.0 / row["inferences"] + 1e-9

    # At least one of the CNNs must show a non-zero unprotected SDE rate,
    # otherwise the campaign would be trivially masked (paper: VGG-16 11.8 %).
    assert max(row["SDE (no protection)"] for row in rows) > 0.0

    chart = bar_chart(
        {
            f"{name} (none)": by_model[name]["SDE (no protection)"]
            for name in ("resnet50", "vgg16", "alexnet")
        }
        | {f"{name} (ranger)": by_model[name]["SDE (Ranger)"] for name in ("resnet50", "vgg16", "alexnet")},
        title=(
            "Fig. 2a — SDE rates, single weight fault per image on exponent bits "
            f"({CLASSIFICATION_IMAGES} images, {NUM_CLASSES} classes)"
        ),
        max_value=max(0.2, max(row["SDE (no protection)"] for row in rows)),
    )
    table = comparison_table(
        rows,
        [
            "model",
            "golden top1",
            "SDE (no protection)",
            "DUE (no protection)",
            "SDE (Ranger)",
            "DUE (Ranger)",
            "inferences",
        ],
        title="Paper reference: VGG-16 unprotected ~= 11.8 % SDE at 1 fault/image (weights, exponent bits)",
    )
    report("fig2a_classification_sde", chart + "\n\n" + table)
