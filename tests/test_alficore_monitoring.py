"""Unit tests for the NaN/Inf monitors and custom monitoring hooks."""

import numpy as np
import pytest

from repro import nn
from repro.alficore import InferenceMonitor, RangeMonitor
from repro.alficore.monitoring import output_has_nan_or_inf
from repro.models.detection.detectors import Detection


@pytest.fixture
def simple_model():
    rng = np.random.default_rng(0)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng)).eval()


class TestInferenceMonitor:
    def test_clean_inference_reports_nothing(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        with monitor:
            simple_model(np.ones((1, 4), dtype=np.float32))
            result = monitor.collect()
        assert not result.nan_detected
        assert not result.inf_detected
        assert not result.due_detected

    def test_nan_input_detected(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        with monitor:
            simple_model(np.full((1, 4), np.nan, dtype=np.float32))
            result = monitor.collect()
        assert result.nan_detected
        assert result.due_detected
        assert len(result.nan_layers) > 0

    def test_inf_detected_with_layer_name(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        with monitor:
            simple_model(np.full((1, 4), np.finfo(np.float32).max, dtype=np.float32))
            result = monitor.collect()
        assert result.inf_detected
        assert all(isinstance(name, str) and name for name in result.inf_layers)

    def test_collect_resets_state(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        monitor.attach()
        simple_model(np.full((1, 4), np.nan, dtype=np.float32))
        first = monitor.collect()
        simple_model(np.ones((1, 4), dtype=np.float32))
        second = monitor.collect()
        monitor.detach()
        assert first.nan_detected and not second.nan_detected

    def test_detach_removes_hooks(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        monitor.attach()
        monitor.detach()
        simple_model(np.full((1, 4), np.nan, dtype=np.float32))
        assert not monitor.collect().nan_detected

    def test_layer_name_filter(self, simple_model):
        monitor = InferenceMonitor(simple_model, layer_names=["2"])
        with monitor:
            simple_model(np.full((1, 4), np.nan, dtype=np.float32))
            result = monitor.collect()
        assert set(result.nan_layers) == {"2"}

    def test_attach_is_idempotent(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        monitor.attach()
        monitor.attach()
        simple_model(np.full((1, 4), np.nan, dtype=np.float32))
        result = monitor.collect()
        monitor.detach()
        # Each leaf layer reports at most once per inference.
        assert len(result.nan_layers) == len(set(result.nan_layers))

    def test_custom_monitor_events(self, simple_model):
        monitor = InferenceMonitor(simple_model, custom_monitors=[RangeMonitor(bound=1e-6)])
        with monitor:
            simple_model(np.ones((1, 4), dtype=np.float32))
            result = monitor.collect()
        assert len(result.custom_events) > 0
        assert result.custom_events[0]["monitor"] == "range"

    def test_monitor_result_as_dict(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        with monitor:
            simple_model(np.ones((1, 4), dtype=np.float32))
            data = monitor.collect().as_dict()
        assert set(data) == {"nan_detected", "inf_detected", "nan_layers", "inf_layers", "custom_events"}


class TestRangeMonitor:
    def test_flags_out_of_range(self):
        monitor = RangeMonitor(bound=10.0)
        event = monitor("layer", np.array([100.0]))
        assert event["peak"] == 100.0

    def test_ignores_in_range(self):
        assert RangeMonitor(bound=10.0)("layer", np.array([5.0])) is None

    def test_ignores_all_nan(self):
        assert RangeMonitor(bound=10.0)("layer", np.array([np.nan])) is None

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            RangeMonitor(bound=0)


class TestOutputNanInfCheck:
    def test_array_output(self):
        assert output_has_nan_or_inf(np.array([1.0, np.nan])) == (True, False)
        assert output_has_nan_or_inf(np.array([1.0, np.inf])) == (False, True)
        assert output_has_nan_or_inf(np.array([1.0, 2.0])) == (False, False)

    def test_detection_list_output(self):
        clean = Detection(boxes=np.array([[0, 0, 1, 1.0]]), scores=np.array([0.5]), labels=np.array([0]))
        broken = Detection(
            boxes=np.array([[0, 0, np.inf, 1.0]]), scores=np.array([np.nan]), labels=np.array([0])
        )
        assert output_has_nan_or_inf([clean]) == (False, False)
        assert output_has_nan_or_inf([broken]) == (True, True)

    def test_empty_output(self):
        assert output_has_nan_or_inf(np.zeros((0,))) == (False, False)
        assert output_has_nan_or_inf([Detection()]) == (False, False)


class TestListOutputMonitoring:
    """Regression: list/tuple layer outputs must not bypass DUE detection."""

    class _DetectionHead(nn.Module):
        def __init__(self, payload):
            super().__init__()
            self.payload = payload

        def forward(self, x):
            return self.payload

    def test_list_of_detections_with_nan_boxes_detected(self):
        detections = [Detection(boxes=np.array([[0.0, 0.0, np.nan, 1.0]]),
                                scores=np.array([0.9]),
                                labels=np.array([1]))]
        head = self._DetectionHead(detections).eval()
        model = nn.Sequential(head).eval()
        monitor = InferenceMonitor(model)
        with monitor:
            model(np.ones((1, 4), dtype=np.float32))
            result = monitor.collect()
        assert result.nan_detected
        assert result.due_detected

    def test_list_of_detections_with_inf_scores_detected(self):
        detections = [Detection(boxes=np.array([[0.0, 0.0, 1.0, 1.0]]),
                                scores=np.array([np.inf]),
                                labels=np.array([1]))]
        model = nn.Sequential(self._DetectionHead(detections)).eval()
        monitor = InferenceMonitor(model)
        with monitor:
            model(np.ones((1, 4), dtype=np.float32))
            result = monitor.collect()
        assert result.inf_detected

    def test_clean_list_output_reports_nothing(self):
        detections = [Detection(boxes=np.array([[0.0, 0.0, 1.0, 1.0]]),
                                scores=np.array([0.5]),
                                labels=np.array([0]))]
        model = nn.Sequential(self._DetectionHead(detections)).eval()
        monitor = InferenceMonitor(model)
        with monitor:
            model(np.ones((1, 4), dtype=np.float32))
            result = monitor.collect()
        assert not result.due_detected

    def test_tuple_output_with_nan_detected(self):
        payload = (np.array([1.0, 2.0]), np.array([np.nan]))
        model = nn.Sequential(self._DetectionHead(payload)).eval()
        monitor = InferenceMonitor(model)
        with monitor:
            model(np.ones((1, 4), dtype=np.float32))
            result = monitor.collect()
        assert result.nan_detected


class TestMonitorEnableGate:
    def test_disabled_monitor_records_nothing(self, simple_model):
        monitor = InferenceMonitor(simple_model)
        monitor.attach()
        monitor.enabled = False
        simple_model(np.array([[np.nan, 1.0, 1.0, 1.0]], dtype=np.float32))
        assert not monitor.collect().due_detected
        monitor.enabled = True
        simple_model(np.array([[np.nan, 1.0, 1.0, 1.0]], dtype=np.float32))
        assert monitor.collect().nan_detected
        monitor.detach()
