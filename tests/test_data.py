"""Unit tests for datasets, data loaders and the ALFI metadata wrapper."""

import json

import numpy as np
import pytest

from repro.data import (
    AlfiDataLoaderWrapper,
    CocoLikeDetectionDataset,
    DataLoader,
    SyntheticClassificationDataset,
    TensorDataset,
    coco_annotations_to_json,
    make_separable_classifier_data,
)


class TestTensorDatasetAndLoader:
    def test_tensor_dataset_items(self):
        xs = np.arange(10).reshape(5, 2)
        ys = np.arange(5)
        dataset = TensorDataset(xs, ys)
        assert len(dataset) == 5
        x, y = dataset[2]
        np.testing.assert_array_equal(x, [4, 5])
        assert y == 2

    def test_tensor_dataset_length_mismatch(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros((3, 2)), np.zeros((4,)))

    def test_dataloader_batching(self):
        dataset = TensorDataset(np.arange(10), np.arange(10))
        loader = DataLoader(dataset, batch_size=4)
        batches = list(loader)
        assert len(batches) == 3
        assert len(batches[0][0]) == 4
        assert len(batches[-1][0]) == 2

    def test_dataloader_drop_last(self):
        dataset = TensorDataset(np.arange(10))
        loader = DataLoader(dataset, batch_size=4, drop_last=True)
        assert len(list(loader)) == 2
        assert len(loader) == 2

    def test_dataloader_shuffle_is_seeded(self):
        dataset = TensorDataset(np.arange(20))
        loader_a = DataLoader(dataset, batch_size=20, shuffle=True, seed=5)
        loader_b = DataLoader(dataset, batch_size=20, shuffle=True, seed=5)
        np.testing.assert_array_equal(next(iter(loader_a)), next(iter(loader_b)))

    def test_dataloader_shuffle_changes_between_epochs(self):
        dataset = TensorDataset(np.arange(50))
        loader = DataLoader(dataset, batch_size=50, shuffle=True, seed=1)
        first = next(iter(loader))
        second = next(iter(loader))
        assert not np.array_equal(first, second)

    def test_dataloader_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(TensorDataset(np.arange(4)), batch_size=0)


class TestSyntheticClassificationDataset:
    def test_deterministic_for_same_seed(self):
        a = SyntheticClassificationDataset(num_samples=5, seed=9)
        b = SyntheticClassificationDataset(num_samples=5, seed=9)
        image_a, label_a = a[3]
        image_b, label_b = b[3]
        np.testing.assert_array_equal(image_a, image_b)
        assert label_a == label_b

    def test_item_shapes_and_types(self):
        dataset = SyntheticClassificationDataset(num_samples=4, image_size=(3, 16, 16))
        image, label = dataset[0]
        assert image.shape == (3, 16, 16)
        assert image.dtype == np.float32
        assert isinstance(label, int)

    def test_labels_within_range(self):
        dataset = SyntheticClassificationDataset(num_samples=30, num_classes=4)
        assert set(dataset.labels.tolist()) <= set(range(4))

    def test_metadata(self):
        dataset = SyntheticClassificationDataset(num_samples=3)
        meta = dataset.metadata(1)
        assert meta["image_id"] == 1
        assert meta["height"] == 32 and meta["width"] == 32
        assert meta["file_name"].endswith(".png")

    def test_out_of_range_index(self):
        dataset = SyntheticClassificationDataset(num_samples=3)
        with pytest.raises(IndexError):
            dataset[5]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticClassificationDataset(num_samples=0)
        with pytest.raises(ValueError):
            SyntheticClassificationDataset(num_classes=1)

    def test_classes_are_visually_distinct(self):
        dataset = SyntheticClassificationDataset(num_samples=40, num_classes=3, noise=0.05)
        prototypes = dataset.prototypes
        distances = [
            np.abs(prototypes[i] - prototypes[j]).mean()
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert min(distances) > 0.5

    def test_separable_classifier_data(self):
        features, labels, weight = make_separable_classifier_data(num_samples=50, noise=0.05)
        logits = features @ weight.T
        accuracy = (np.argmax(logits, axis=1) == labels).mean()
        assert accuracy > 0.9


class TestCocoLikeDetectionDataset:
    def test_item_structure(self):
        dataset = CocoLikeDetectionDataset(num_samples=4, num_classes=3)
        image, target = dataset[0]
        assert image.shape == (3, 64, 64)
        assert target["boxes"].shape[1] == 4
        assert len(target["boxes"]) == len(target["labels"])
        assert target["image_id"] == 0

    def test_boxes_inside_image(self):
        dataset = CocoLikeDetectionDataset(num_samples=10, image_size=(48, 48))
        for target in dataset.ground_truth():
            boxes = target["boxes"]
            assert boxes.min() >= 0
            assert boxes[:, [0, 2]].max() <= 48
            assert boxes[:, [1, 3]].max() <= 48

    def test_objects_are_visible_in_image(self):
        dataset = CocoLikeDetectionDataset(num_samples=3, noise=0.01)
        image, target = dataset[0]
        box = target["boxes"][0].astype(int)
        inside = image[:, box[1] : box[3], box[0] : box[2]].mean()
        outside_mask = np.ones_like(image, dtype=bool)
        outside_mask[:, box[1] : box[3], box[0] : box[2]] = False
        assert inside > image[outside_mask].mean()

    def test_deterministic(self):
        a = CocoLikeDetectionDataset(num_samples=3, seed=4)
        b = CocoLikeDetectionDataset(num_samples=3, seed=4)
        np.testing.assert_array_equal(a[1][0], b[1][0])

    def test_target_copies_are_independent(self):
        dataset = CocoLikeDetectionDataset(num_samples=2)
        _, target = dataset[0]
        target["boxes"][...] = -1
        _, fresh = dataset[0]
        assert fresh["boxes"].min() >= 0

    def test_coco_json_export_schema(self):
        dataset = CocoLikeDetectionDataset(num_samples=3, num_classes=2)
        document = coco_annotations_to_json(dataset)
        assert set(document) == {"images", "annotations", "categories"}
        assert len(document["images"]) == 3
        assert len(document["categories"]) == 2
        # The export must be valid JSON end-to-end.
        json.dumps(document)
        for annotation in document["annotations"]:
            assert annotation["bbox"][2] > 0 and annotation["bbox"][3] > 0


class TestAlfiDataLoaderWrapper:
    def test_records_carry_metadata(self):
        dataset = SyntheticClassificationDataset(num_samples=5)
        wrapper = AlfiDataLoaderWrapper(dataset, batch_size=2)
        batch = next(iter(wrapper))
        assert len(batch) == 2
        record = batch[0]
        assert record.image.shape == (3, 32, 32)
        assert record.file_name.endswith(".png")
        assert record.height == 32 and record.width == 32
        assert isinstance(record.target, int)

    def test_len_and_dataset_size(self):
        dataset = SyntheticClassificationDataset(num_samples=7)
        wrapper = AlfiDataLoaderWrapper(dataset, batch_size=3)
        assert len(wrapper) == 3
        assert wrapper.dataset_size == 7

    def test_works_without_metadata_method(self):
        dataset = TensorDataset(np.zeros((4, 3, 8, 8), dtype=np.float32), np.arange(4))
        wrapper = AlfiDataLoaderWrapper(dataset, batch_size=2)
        record = next(iter(wrapper))[0]
        assert record.height == 8 and record.width == 8
        assert record.image_id == 0

    def test_stack_and_labels_helpers(self):
        dataset = SyntheticClassificationDataset(num_samples=4)
        wrapper = AlfiDataLoaderWrapper(dataset, batch_size=4)
        batch = next(iter(wrapper))
        stacked = AlfiDataLoaderWrapper.stack_images(batch)
        labels = AlfiDataLoaderWrapper.labels(batch)
        assert stacked.shape == (4, 3, 32, 32)
        assert labels.shape == (4,)

    def test_record_as_dict(self):
        dataset = SyntheticClassificationDataset(num_samples=2)
        wrapper = AlfiDataLoaderWrapper(dataset, batch_size=1)
        record = next(iter(wrapper))[0]
        data = record.as_dict()
        assert {"image", "image_id", "file_name", "height", "width", "target"} <= set(data)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            AlfiDataLoaderWrapper(SyntheticClassificationDataset(num_samples=2), batch_size=0)

    def test_shuffle_is_seeded(self):
        dataset = SyntheticClassificationDataset(num_samples=10)
        a = AlfiDataLoaderWrapper(dataset, batch_size=10, shuffle=True, seed=3)
        b = AlfiDataLoaderWrapper(dataset, batch_size=10, shuffle=True, seed=3)
        ids_a = [r.image_id for r in next(iter(a))]
        ids_b = [r.image_id for r in next(iter(b))]
        assert ids_a == ids_b
        assert ids_a != sorted(ids_a)
