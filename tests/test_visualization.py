"""Unit tests for the text-based visualisation helpers."""

import pytest

from repro.visualization import bar_chart, comparison_table, sde_per_bit_chart, sde_per_layer_chart


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart({"vgg16": 0.118, "resnet50": 0.05}, title="SDE rates")
        assert "SDE rates" in chart
        assert "vgg16" in chart and "resnet50" in chart
        assert "0.1180" in chart

    def test_bar_lengths_scale_with_values(self):
        chart = bar_chart({"small": 0.1, "large": 1.0}, width=20, max_value=1.0)
        lines = {line.split("|")[0].strip(): line for line in chart.splitlines() if "|" in line}
        assert lines["large"].count("#") > lines["small"].count("#")

    def test_empty_values(self):
        assert "(no data)" in bar_chart({})

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_values_above_scale_are_clamped(self):
        chart = bar_chart({"big": 5.0}, width=10, max_value=1.0)
        assert chart.count("#") == 10


class TestComparisonTable:
    def test_renders_rows_and_columns(self):
        rows = [
            {"model": "vgg16", "sde": 0.118, "due": 0.001},
            {"model": "resnet50", "sde": 0.05, "due": 0.002},
        ]
        table = comparison_table(rows, ["model", "sde", "due"], title="Fig 2a")
        assert "Fig 2a" in table
        assert "vgg16" in table
        assert "0.1180" in table
        assert table.count("\n") >= 3

    def test_missing_cells_rendered_empty(self):
        table = comparison_table([{"a": 1}], ["a", "b"])
        assert "b" in table

    def test_empty_rows(self):
        assert "(no rows)" in comparison_table([], ["a"])


class TestDomainCharts:
    def test_sde_per_bit_chart_sorted(self):
        chart = sde_per_bit_chart({31: 0.5, 23: 0.1, 30: 0.9})
        lines = [line for line in chart.splitlines() if line.startswith("bit")]
        assert lines[0].startswith("bit 23")
        assert lines[-1].startswith("bit 31")

    def test_sde_per_layer_chart_with_names(self):
        chart = sde_per_layer_chart({0: 0.2, 1: 0.4}, layer_names={0: "conv1", 1: "fc"})
        assert "conv1" in chart and "fc" in chart
