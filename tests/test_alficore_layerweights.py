"""Unit tests for the Eq. 1 layer weighting."""

import numpy as np
import pytest

from repro.alficore import layer_weight_factors, weighted_layer_choice
from repro.alficore.layerweights import layer_sizes_for_target
from repro.pytorchfi import FaultInjection


class TestLayerWeightFactors:
    def test_probabilities_sum_to_one(self):
        factors = layer_weight_factors([10, 20, 70])
        np.testing.assert_allclose(factors.sum(), 1.0)

    def test_proportional_to_sizes(self):
        factors = layer_weight_factors([10, 30])
        np.testing.assert_allclose(factors, [0.25, 0.75])

    def test_matches_equation_one(self):
        # F_i = prod_j d_ij / sum_i prod_j d_ij with explicit dimension tuples.
        dims = [(64, 3, 3, 3), (128, 64, 3, 3), (10, 128)]
        sizes = [int(np.prod(d)) for d in dims]
        factors = layer_weight_factors(sizes)
        expected = np.asarray(sizes, dtype=float) / sum(sizes)
        np.testing.assert_allclose(factors, expected)

    def test_zero_sizes_fall_back_to_uniform(self):
        np.testing.assert_allclose(layer_weight_factors([0, 0, 0]), [1 / 3] * 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            layer_weight_factors([])
        with pytest.raises(ValueError):
            layer_weight_factors([1, -2])


class TestWeightedLayerChoice:
    def test_sizes_for_target(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        assert layer_sizes_for_target(fi, "weights") == fi.layer_weight_counts()
        assert layer_sizes_for_target(fi, "neurons") == fi.layer_neuron_counts()
        with pytest.raises(ValueError):
            layer_sizes_for_target(fi, "biases")

    def test_weighted_draws_follow_layer_sizes(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        rng = np.random.default_rng(0)
        draws = weighted_layer_choice(fi, "weights", rng, size=4000, weighted=True)
        empirical = np.bincount(draws, minlength=fi.num_layers) / len(draws)
        expected = layer_weight_factors(fi.layer_weight_counts())
        np.testing.assert_allclose(empirical, expected, atol=0.03)

    def test_uniform_draws_ignore_sizes(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        rng = np.random.default_rng(0)
        draws = weighted_layer_choice(fi, "weights", rng, size=4000, weighted=False)
        empirical = np.bincount(draws, minlength=fi.num_layers) / len(draws)
        np.testing.assert_allclose(empirical, 1.0 / fi.num_layers, atol=0.03)

    def test_layer_range_restriction(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        rng = np.random.default_rng(1)
        draws = weighted_layer_choice(fi, "neurons", rng, size=200, layer_range=(1, 2))
        assert set(np.unique(draws)) <= {1, 2}

    def test_invalid_layer_range(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            weighted_layer_choice(fi, "neurons", rng, size=5, layer_range=(0, 99))
