"""Shard-merge determinism of the sharded campaign executor.

The contract under test: for the same seed, a campaign partitioned into N
shards (run in-process or via a worker pool) produces *byte-identical* merged
record files and equal KPI summaries compared to a single-process run, and
weight campaigns restore the model bit-exactly regardless of sharding.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.alficore import (
    CampaignResultWriter,
    CampaignRunner,
    GoldenCache,
    TestErrorModels_ImgClass,
    TestErrorModels_ObjDet,
    default_scenario,
)
from repro.alficore.campaign import ShardedCampaignExecutor
from repro.alficore.results import merge_csv_files, merge_json_array_files
from repro.alficore.wrapper import ptfiwrap
from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.detection import yolov3_tiny
from repro.models.pretrained import fit_classifier_head
from repro.tensor.bitops import float_to_bits

TestErrorModels_ImgClass.__test__ = False
TestErrorModels_ObjDet.__test__ = False


@pytest.fixture(scope="module")
def fitted_model_and_dataset():
    dataset = SyntheticClassificationDataset(num_samples=12, num_classes=10, noise=0.2, seed=5)
    model = fit_classifier_head(lenet5(seed=1), dataset, 10)
    return model, dataset


@pytest.fixture(scope="module")
def detection_setup():
    dataset = CocoLikeDetectionDataset(num_samples=6, num_classes=5, seed=3)
    model = yolov3_tiny(num_classes=5, seed=0).eval()
    return model, dataset


def _file_bytes(path: str | Path) -> bytes:
    return Path(path).read_bytes()


class TestShardBounds:
    def test_bounds_are_contiguous_and_balanced(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", random_seed=1, num_runs=2)
        runner = CampaignRunner(model, dataset, scenario=scenario)
        executor = ShardedCampaignExecutor(runner.core, workers=1, num_shards=5)
        bounds = executor.shard_bounds()
        assert bounds[0][0] == 0
        assert bounds[-1][1] == runner.core.total_steps
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_steps_is_clamped(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        runner = CampaignRunner(
            model, dataset, scenario=default_scenario(injection_target="weights", random_seed=1)
        )
        executor = ShardedCampaignExecutor(runner.core, workers=1, num_shards=1000)
        assert executor.num_shards == runner.core.total_steps
        summary = runner.run()
        assert summary.num_inferences == len(dataset)


class TestClassificationShardEquivalence:
    @pytest.mark.parametrize("workers,num_shards", [(1, 3), (3, 3)])
    def test_sharded_matches_serial_byte_identically(
        self, fitted_model_and_dataset, tmp_path, workers, num_shards
    ):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=7, model_name="shard"
        )

        def run(sub: str, workers: int, num_shards: int):
            writer = CampaignResultWriter(tmp_path / sub, campaign_name="shard")
            runner = CampaignRunner(
                model, dataset, scenario=scenario, writer=writer,
                workers=workers, num_shards=num_shards,
            )
            return runner.run()

        serial = run("serial", 1, 1)
        sharded = run(f"sharded_{workers}x{num_shards}", workers, num_shards)

        for tag in ("golden_csv", "corrupted_csv", "applied_faults", "faults", "meta"):
            assert _file_bytes(serial.output_files[tag]) == _file_bytes(sharded.output_files[tag])
        serial_kpis = serial.as_dict()
        sharded_kpis = sharded.as_dict()
        serial_kpis.pop("output_files")
        sharded_kpis.pop("output_files")
        assert serial_kpis == sharded_kpis

    @pytest.mark.parametrize("workers,num_shards", [(1, 3), (2, 3)])
    def test_sharded_prefix_reuse_matches_serial_full_forward(
        self, fitted_model_and_dataset, tmp_path, workers, num_shards
    ):
        # Prefix reuse + golden cache in every shard (sharing one spillover
        # directory) must still merge byte-identically to a serial run with
        # both optimisations off.
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=20,
            num_runs=2, model_name="reuse_shard",
        )

        def run(sub: str, workers: int, num_shards: int, reuse: bool):
            writer = CampaignResultWriter(tmp_path / sub, campaign_name="reuse_shard")
            runner = CampaignRunner(
                model, dataset, scenario=scenario, writer=writer,
                workers=workers, num_shards=num_shards,
                prefix_reuse=reuse, golden_cache=GoldenCache() if reuse else None,
            )
            return runner.run()

        serial = run("serial_full", 1, 1, reuse=False)
        sharded = run(f"sharded_reuse_{workers}x{num_shards}", workers, num_shards, reuse=True)

        for tag in ("golden_csv", "corrupted_csv", "applied_faults", "faults"):
            assert _file_bytes(serial.output_files[tag]) == _file_bytes(sharded.output_files[tag])
        serial_kpis, sharded_kpis = serial.as_dict(), sharded.as_dict()
        serial_kpis.pop("output_files")
        sharded_kpis.pop("output_files")
        assert serial_kpis == sharded_kpis
        # The shards shared one golden-cache spillover directory.
        spill = tmp_path / f"sharded_reuse_{workers}x{num_shards}" / "golden_cache"
        assert spill.is_dir() and any(spill.iterdir())

    def test_sharded_neuron_prefix_reuse_matches_serial(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="neurons", random_seed=21, num_runs=2)
        serial = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=False).run()
        sharded = CampaignRunner(
            model, dataset, scenario=scenario, workers=2, num_shards=4,
            prefix_reuse=True, golden_cache=GoldenCache(),
        ).run()
        assert serial.as_dict() == sharded.as_dict()

    def test_sharded_neuron_campaign_matches_serial(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="neurons", random_seed=8)
        serial = CampaignRunner(model, dataset, scenario=scenario).run()
        sharded = CampaignRunner(model, dataset, scenario=scenario, workers=2, num_shards=4).run()
        assert serial.as_dict() == sharded.as_dict()

    def test_sharded_per_epoch_campaign_matches_serial(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights",
            inj_policy="per_epoch",
            batch_size=4,
            num_runs=3,
            random_seed=9,
        )
        serial = CampaignRunner(model, dataset, scenario=scenario).run()
        # Shard boundaries intentionally cut through epochs (9 steps over 4 shards).
        sharded = CampaignRunner(model, dataset, scenario=scenario, workers=1, num_shards=4).run()
        assert serial.num_fault_groups == sharded.num_fault_groups == 3
        assert serial.as_dict() == sharded.as_dict()

    def test_sharded_shuffled_campaign_matches_serial(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", num_runs=2, random_seed=10)
        serial = CampaignRunner(model, dataset, scenario=scenario, dl_shuffle=True).run()
        sharded = CampaignRunner(
            model, dataset, scenario=scenario, dl_shuffle=True, workers=1, num_shards=3
        ).run()
        assert serial.as_dict() == sharded.as_dict()

    def test_weights_restored_bit_exactly_after_sharded_campaign(
        self, fitted_model_and_dataset
    ):
        model, dataset = fitted_model_and_dataset
        bits_before = {n: float_to_bits(p.data).copy() for n, p in model.named_parameters()}
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=11)
        # In-process shards patch the parent's model object; worker-pool shards
        # patch copies.  Both must leave the parent model bit-exact.
        for workers, num_shards in ((1, 3), (2, 2)):
            CampaignRunner(
                model, dataset, scenario=scenario, workers=workers, num_shards=num_shards
            ).run()
            for name, param in model.named_parameters():
                np.testing.assert_array_equal(bits_before[name], float_to_bits(param.data))


class TestDetectionShardEquivalence:
    def test_three_shard_campaign_matches_single_process_byte_identically(
        self, detection_setup, tmp_path
    ):
        model, dataset = detection_setup
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=12
        )

        def run(sub: str, workers: int, num_shards: int | None):
            runner = TestErrorModels_ObjDet(
                model=model,
                model_name="det",
                dataset=dataset,
                scenario=scenario,
                output_dir=tmp_path / sub,
                workers=workers,
                num_shards=num_shards,
            )
            return runner.test_rand_ObjDet_SBFs_inj(num_faults=1)

        serial = run("serial", 1, None)
        sharded = run("sharded", 3, 3)

        for tag in ("golden_json", "corrupted_json", "applied_faults", "ground_truth", "faults"):
            assert _file_bytes(serial.output_files[tag]) == _file_bytes(sharded.output_files[tag])
        assert serial.corrupted.as_dict() == sharded.corrupted.as_dict()
        assert serial.due_flags == sharded.due_flags
        # Per-shard record files are kept next to the merged output.
        shard_dirs = sorted((tmp_path / "sharded" / "shards").iterdir())
        assert len(shard_dirs) == 3
        merged = json.loads(_file_bytes(sharded.output_files["corrupted_json"]))
        per_shard = [
            json.loads((d / "det_corrupted_results.json").read_text()) for d in shard_dirs
        ]
        assert [len(records) for records in per_shard] == [2, 2, 2]
        assert [r for records in per_shard for r in records] == merged

    def test_sharded_weight_campaign_restores_detector_bit_exactly(self, detection_setup):
        model, dataset = detection_setup
        bits_before = {n: float_to_bits(p.data).copy() for n, p in model.named_parameters()}
        scenario = default_scenario(injection_target="weights", random_seed=13)
        runner = TestErrorModels_ObjDet(
            model=model, model_name="restore", dataset=dataset, scenario=scenario,
            workers=1, num_shards=3,
        )
        runner.test_rand_ObjDet_SBFs_inj(num_faults=2)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(bits_before[name], float_to_bits(param.data))

    def test_sharded_resil_campaign_matches_serial(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        hardened = model.clone()
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(30, 30), random_seed=17)

        def run(sub: str, workers: int, num_shards: int | None):
            runner = TestErrorModels_ImgClass(
                model=model, resil_model=hardened, model_name="resil", dataset=dataset,
                scenario=scenario, output_dir=tmp_path / sub,
                workers=workers, num_shards=num_shards,
            )
            return runner.test_rand_ImgClass_SBFs_inj(num_faults=1)

        serial = run("serial", 1, None)
        sharded = run("sharded", 2, 3)
        assert serial.resil is not None and sharded.resil is not None
        np.testing.assert_array_equal(serial.resil_logits, sharded.resil_logits)
        assert serial.resil.as_dict() == sharded.resil.as_dict()
        assert _file_bytes(serial.output_files["resil_csv"]) == _file_bytes(
            sharded.output_files["resil_csv"]
        )

    def test_per_epoch_resil_campaign_consumes_one_group_per_epoch(
        self, fitted_model_and_dataset
    ):
        # Regression: the resil lane must follow the injection policy — with
        # per_epoch and multiple batches per epoch it used to pull one fault
        # group per *step* and exhaust the matrix mid-campaign.
        model, dataset = fitted_model_and_dataset
        hardened = model.clone()
        scenario = default_scenario(
            injection_target="weights",
            inj_policy="per_epoch",
            batch_size=4,
            num_runs=2,
            rnd_bit_range=(23, 30),
            random_seed=18,
        )
        runner = TestErrorModels_ImgClass(
            model=model, resil_model=hardened, model_name="epochresil",
            dataset=dataset, scenario=scenario,
        )
        serial = runner.test_rand_ImgClass_SBFs_inj(num_faults=1, inj_policy="per_epoch", num_runs=2)
        assert serial.resil is not None
        assert len(serial.resil_logits) == 2 * len(dataset)
        sharded = TestErrorModels_ImgClass(
            model=model, resil_model=hardened, model_name="epochresil",
            dataset=dataset, scenario=scenario, workers=1, num_shards=3,
        ).test_rand_ImgClass_SBFs_inj(num_faults=1, inj_policy="per_epoch", num_runs=2)
        np.testing.assert_array_equal(serial.resil_logits, sharded.resil_logits)

    def test_custom_stochastic_error_model_is_shard_deterministic(
        self, fitted_model_and_dataset, tmp_path
    ):
        # Regression: per-group rng derivation — an error model that draws
        # from the rng at apply time must corrupt identically whether groups
        # run serially or split across shards.
        from repro.pytorchfi.errormodels import RandomValueErrorModel

        model, dataset = fitted_model_and_dataset

        class DrawingErrorModel(RandomValueErrorModel):
            """Bypasses the fault matrix's pre-drawn value replay."""

            name = "custom_random"

        scenario = default_scenario(injection_target="weights", random_seed=19, model_name="rngdet")

        def run(sub: str, num_shards: int):
            writer = CampaignResultWriter(tmp_path / sub, campaign_name="rngdet")
            runner = CampaignRunner(
                model, dataset, scenario=scenario, writer=writer,
                error_model=DrawingErrorModel(-1, 1), workers=1, num_shards=num_shards,
            )
            return runner.run()

        serial = run("serial", 1)
        sharded = run("sharded", 3)
        assert _file_bytes(serial.output_files["applied_faults"]) == _file_bytes(
            sharded.output_files["applied_faults"]
        )
        assert _file_bytes(serial.output_files["corrupted_csv"]) == _file_bytes(
            sharded.output_files["corrupted_csv"]
        )

    def test_sharded_imgclass_facade_matches_serial(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=14)
        serial = TestErrorModels_ImgClass(
            model=model, model_name="f", dataset=dataset, scenario=scenario
        ).test_rand_ImgClass_SBFs_inj(num_faults=1)
        sharded = TestErrorModels_ImgClass(
            model=model, model_name="f", dataset=dataset, scenario=scenario, workers=2, num_shards=3
        ).test_rand_ImgClass_SBFs_inj(num_faults=1)
        np.testing.assert_array_equal(serial.golden_logits, sharded.golden_logits)
        np.testing.assert_array_equal(serial.corrupted_logits, sharded.corrupted_logits)
        np.testing.assert_array_equal(serial.labels, sharded.labels)
        assert serial.corrupted.as_dict() == sharded.corrupted.as_dict()


class TestShardScopedIterators:
    def test_ranged_group_iter_leaves_shared_cursor_untouched(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            dataset_size=len(dataset), injection_target="weights", random_seed=15
        )
        wrapper = ptfiwrap(model, scenario=scenario)
        ranged = list(wrapper.get_fault_group_iter(start=3, stop=7))
        assert len(ranged) == 4
        assert wrapper._cursor == 0
        full = list(wrapper.get_fault_group_iter())
        assert len(full) == wrapper.num_fault_groups()

    def test_ranged_group_iter_matches_explicit_group_sessions(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            dataset_size=len(dataset), injection_target="weights", random_seed=16
        )
        wrapper = ptfiwrap(model, scenario=scenario)
        for offset, group in enumerate(wrapper.get_fault_group_iter(start=2, stop=5)):
            with group:
                ranged_applied = [f.as_dict() for f in group.applied_faults]
            with wrapper.fault_group_session(2 + offset) as explicit:
                pass
            assert ranged_applied == [f.as_dict() for f in explicit.applied_faults]

    def test_ranged_group_iter_rejects_bad_ranges(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        wrapper = ptfiwrap(
            model, scenario=default_scenario(dataset_size=len(dataset), injection_target="weights")
        )
        with pytest.raises(ValueError):
            wrapper.get_fault_group_iter(start=-1, stop=2)
        with pytest.raises(ValueError):
            wrapper.get_fault_group_iter(start=0, stop=2, cycle=True)
        with pytest.raises(ValueError):
            wrapper.get_fault_group_iter(stop=2)


class TestMergeHelpers:
    def test_csv_merge_skips_empty_shards_and_extra_headers(self, tmp_path):
        from repro.alficore.results import CsvRecordStream

        rows = [{"a": i, "b": f"x{i}"} for i in range(5)]
        single = tmp_path / "single.csv"
        with CsvRecordStream(single) as stream:
            for row in rows:
                stream.write(row)
        shard_paths = []
        for index, chunk in enumerate(([rows[0], rows[1]], [], rows[2:])):
            path = tmp_path / f"shard_{index}.csv"
            with CsvRecordStream(path) as stream:
                for row in chunk:
                    stream.write(row)
            shard_paths.append(path)
        merged = merge_csv_files(shard_paths, tmp_path / "merged.csv")
        assert merged.read_bytes() == single.read_bytes()

    def test_json_merge_is_byte_identical_to_single_stream(self, tmp_path):
        from repro.alficore.results import JsonArrayStream

        records = [{"i": i, "v": [i, i + 0.5]} for i in range(4)]
        single = tmp_path / "single.json"
        with JsonArrayStream(single) as stream:
            for record in records:
                stream.write(record)
        shard_paths = []
        for index, chunk in enumerate((records[:1], [], records[1:])):
            path = tmp_path / f"shard_{index}.json"
            with JsonArrayStream(path) as stream:
                for record in chunk:
                    stream.write(record)
            shard_paths.append(path)
        merged = merge_json_array_files(shard_paths, tmp_path / "merged.json")
        assert merged.read_bytes() == single.read_bytes()

    def test_json_merge_of_all_empty_shards_is_empty_array(self, tmp_path):
        from repro.alficore.results import JsonArrayStream

        path = tmp_path / "empty.json"
        with JsonArrayStream(path):
            pass
        merged = merge_json_array_files([path], tmp_path / "merged.json")
        assert merged.read_text() == "[]"
