"""Unit tests for the clone-free injection sessions (campaign engine core)."""

import numpy as np
import pytest

from repro.pytorchfi import FaultInjection
from repro.pytorchfi.core import NeuronFault, WeightFault
from repro.tensor.bitops import float_to_bits


def weight_bits(model) -> dict:
    """Raw bit patterns of every parameter (for bit-exact comparisons)."""
    return {name: float_to_bits(param.data).copy() for name, param in model.named_parameters()}


@pytest.fixture
def lenet_fi(lenet_model):
    return FaultInjection(lenet_model, batch_size=2, input_shape=(3, 32, 32))


def some_weight_faults(n=4, bit=30):
    return [
        WeightFault(layer=i % 2, out_channel=i, in_channel=i, depth=-1, height=0, width=0, value=bit)
        for i in range(n)
    ]


class TestWeightPatchSession:
    def test_patch_applies_and_restores_bit_exactly(self, lenet_model, lenet_fi):
        before = weight_bits(lenet_model)
        session = lenet_fi.weight_patch_session(some_weight_faults())
        with session:
            assert session.model is lenet_model
            patched = weight_bits(lenet_model)
            changed = sum(
                0 if np.array_equal(before[name], patched[name]) else 1 for name in before
            )
            assert changed >= 1
        after = weight_bits(lenet_model)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_restore_is_bit_exact_for_nan_and_inf_corruptions(self, lenet_model, lenet_fi):
        """Exponent-field flips can produce NaN/Inf; the restore must still be exact."""
        before = weight_bits(lenet_model)
        faults = [
            WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=h, width=w, value=bit)
            for (h, w, bit) in ((0, 0, 30), (0, 1, 27), (1, 0, 23), (1, 1, 31))
        ]
        for _ in range(3):  # repeated groups on the same weights
            with lenet_fi.weight_patch_session(faults):
                pass
        after = weight_bits(lenet_model)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_overlapping_faults_restore_first_original(self, lenet_model, lenet_fi):
        before = weight_bits(lenet_model)
        fault = WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=30)
        with lenet_fi.weight_patch_session([fault, fault, fault]):
            pass
        after = weight_bits(lenet_model)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_outputs_match_legacy_clone_path(self, lenet_model, lenet_fi, small_images):
        faults = some_weight_faults()
        cloned = lenet_fi.declare_weight_fault_injection(faults)
        expected = cloned(small_images)
        with lenet_fi.weight_patch_session(faults) as session:
            actual = session.model(small_images)
        np.testing.assert_array_equal(expected, actual)

    def test_applied_log_is_per_group_not_shared(self, lenet_fi):
        with lenet_fi.weight_patch_session(some_weight_faults(3)) as session:
            pass
        assert len(session.applied_faults) == 3
        assert session.applied_faults[0].target == "weight"
        # The shared (legacy) log must not grow through sessions.
        assert lenet_fi.applied_faults == []

    def test_unknown_layer_rejected_eagerly(self, lenet_fi):
        bad = WeightFault(layer=99, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=1)
        with pytest.raises(IndexError):
            lenet_fi.weight_patch_session([bad])

    def test_nested_enter_rejected(self, lenet_fi):
        session = lenet_fi.weight_patch_session(some_weight_faults(1))
        with session:
            with pytest.raises(RuntimeError):
                session.__enter__()

    def test_restore_runs_on_exception(self, lenet_model, lenet_fi):
        before = weight_bits(lenet_model)
        with pytest.raises(RuntimeError):
            with lenet_fi.weight_patch_session(some_weight_faults()):
                raise RuntimeError("inference blew up")
        after = weight_bits(lenet_model)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_session_is_reusable_sequentially(self, lenet_model, lenet_fi, small_images):
        session = lenet_fi.weight_patch_session(some_weight_faults(2))
        with session:
            first = session.model(small_images)
        with session:
            second = session.model(small_images)
        np.testing.assert_array_equal(first, second)


class TestNeuronInjectionSession:
    def neuron_faults(self, n=2, bit=30):
        return [
            NeuronFault(batch=0, layer=4, channel=i, depth=-1, height=-1, width=-1, value=bit)
            for i in range(n)
        ]

    def test_model_cloned_once_and_reused(self, lenet_model, lenet_fi):
        session = lenet_fi.neuron_injection_session()
        assert session.model is not lenet_model
        with session.activate(self.neuron_faults()) as group_a:
            model_a = group_a.model
        with session.activate(self.neuron_faults()) as group_b:
            model_b = group_b.model
        assert model_a is model_b is session.model
        session.close()

    def test_outputs_match_legacy_clone_path(self, lenet_fi, small_images):
        faults = self.neuron_faults()
        legacy = lenet_fi.declare_neuron_fault_injection(faults)
        expected = legacy(small_images)
        session = lenet_fi.neuron_injection_session()
        with session.activate(faults) as group:
            actual = group.model(small_images)
        session.close()
        np.testing.assert_array_equal(expected, actual)

    def test_applied_log_is_per_group(self, lenet_fi, small_images):
        session = lenet_fi.neuron_injection_session()
        with session.activate(self.neuron_faults(2)) as first:
            first.model(small_images)
        with session.activate(self.neuron_faults(3)) as second:
            second.model(small_images)
        session.close()
        assert len(first.applied_faults) == 2
        assert len(second.applied_faults) == 3
        assert lenet_fi.applied_faults == []

    def test_model_is_clean_outside_group_context(self, lenet_model, lenet_fi, small_images):
        golden = lenet_model(small_images)
        session = lenet_fi.neuron_injection_session()
        with session.activate(self.neuron_faults()) as group:
            corrupted = group.model(small_images)
        clean = session.model(small_images)
        session.close()
        assert not np.array_equal(golden, corrupted)
        np.testing.assert_array_equal(golden, clean)

    def test_close_removes_hooks(self, lenet_fi, small_images):
        session = lenet_fi.neuron_injection_session()
        group = session.activate(self.neuron_faults())
        group.__enter__()  # leave faults active, then close the session
        session.close()
        session.model(small_images)
        assert group.applied_faults == []

    def test_invalid_fault_rejected_on_activate(self, lenet_fi):
        session = lenet_fi.neuron_injection_session()
        bad = NeuronFault(batch=0, layer=42, channel=0, depth=-1, height=-1, width=-1, value=1)
        with pytest.raises(IndexError):
            session.activate([bad]).__enter__()
        session.close()

    def test_session_context_manager_closes(self, lenet_fi, small_images):
        with lenet_fi.neuron_injection_session() as session:
            with session.activate(self.neuron_faults()) as group:
                group.model(small_images)
            assert len(group.applied_faults) == 2
        assert session._handles == []


class TestSessionRobustness:
    """Regressions from review: partial-failure restore, re-entry replay,
    side-effect-free profiling."""

    class _ExplodingModel:
        """Error model that raises after ``allow`` successful corruptions."""

        name = "exploding"

        def __init__(self, allow):
            self.allow = allow
            self.calls = 0

        def corrupt(self, original, rng):
            self.calls += 1
            if self.calls > self.allow:
                raise ValueError("boom")
            return -original, {"bit_position": None, "flip_direction": None}

    def test_partial_failure_in_enter_restores_applied_faults(self, lenet_model, lenet_fi):
        before = weight_bits(lenet_model)
        session = lenet_fi.weight_patch_session(
            some_weight_faults(3), error_model=self._ExplodingModel(allow=1)
        )
        with pytest.raises(ValueError, match="boom"):
            session.__enter__()
        assert not session.active
        after = weight_bits(lenet_model)
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    class _StochasticModel:
        """Error model drawing a fresh corruption per call (never pinned)."""

        name = "stochastic"

        def corrupt(self, original, rng):
            return float(rng.uniform(-1, 1)), {"bit_position": None, "flip_direction": None}

    def test_reentry_replays_identical_corruptions(self, lenet_model, lenet_fi):
        """Per-epoch campaigns re-enter the same session per batch: every

        entry must patch the identical values the applied log records."""
        session = lenet_fi.weight_patch_session(
            some_weight_faults(2), error_model=self._StochasticModel(), rng=np.random.default_rng(0)
        )
        with session:
            first = [
                (name, param.data.copy()) for name, param in lenet_model.named_parameters()
            ]
            logged = [f.corrupted_value for f in session.applied_faults]
        with session:
            for (name, data) in first:
                np.testing.assert_array_equal(
                    data, dict(lenet_model.named_parameters())[name].data
                )
            assert [f.corrupted_value for f in session.applied_faults] == logged

    def test_profiling_does_not_fire_user_hooks(self, lenet_model):
        events = []
        lenet_model.get_submodule("features.0").register_forward_hook(
            lambda module, inputs, output: events.append("fired") or None
        )
        FaultInjection(lenet_model, input_shape=(3, 32, 32))
        assert events == []  # the profiling probe forward must stay invisible
        lenet_model(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert events == ["fired"]  # ...while real inference still sees the hook
