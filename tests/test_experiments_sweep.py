"""Tests for the sweep grid manager (`repro.experiments.sweep`).

Covers the versioned ``sweep:`` spec section (round-trip, strict unknown-key
rejection, axis grammar with did-you-mean), deterministic grid expansion,
content-addressed skip, interrupted-sweep resume with byte-identical
aggregate tables, and KPI parity with the hand-written per-step loop the
sweep manager replaces.
"""

import json

import pytest

from repro.experiments import (
    Artifacts,
    CampaignStore,
    DATASETS,
    Experiment,
    ExperimentSpec,
    MODELS,
    SpecError,
    StoreError,
    SweepError,
    SweepSpec,
    expand,
    run,
    run_sweep,
)
from repro.experiments.spec import validate_sweep_axis
import repro.experiments.sweep as sweep_module

IMAGES = 6


def base_builder(images=IMAGES):
    return (
        Experiment.builder()
        .name("sweep-test")
        .model("lenet5", num_classes=10, seed=0)
        .dataset(
            "synthetic-classification",
            num_samples=images, num_classes=10, noise=0.25, seed=1,
        )
        .scenario(
            injection_target="weights", rnd_bit_range=(23, 30),
            random_seed=3, model_name="lenet5", dataset_size=images,
        )
    )


def layer_sweep_spec(layers=((0, 0), (1, 1)), **sweep_kwargs):
    return (
        base_builder()
        .sweep(axes={"scenario.layer_range": [list(pair) for pair in layers]}, **sweep_kwargs)
        .build()
    )


class TestSweepSpecSection:
    def test_yaml_round_trip(self, tmp_path):
        spec = layer_sweep_spec()
        path = spec.save(tmp_path / "spec.yml")
        loaded = ExperimentSpec.load(path)
        assert loaded.sweep is not None
        assert loaded.sweep.axes == spec.sweep.axes
        assert loaded.sweep.points == spec.sweep.points

    def test_json_round_trip(self, tmp_path):
        spec = layer_sweep_spec()
        spec.sweep.points = [{"scenario.rnd_bit_range": [30, 30]}]
        path = spec.save(tmp_path / "spec.json")
        loaded = ExperimentSpec.load(path)
        assert loaded.sweep.points == [{"scenario.rnd_bit_range": [30, 30]}]

    def test_schema_version_serialized_and_enforced(self):
        document = layer_sweep_spec().as_dict()
        assert document["sweep"]["schema_version"] == 1
        document["sweep"]["schema_version"] = 2
        with pytest.raises(SpecError, match="sweep schema version 2 is newer"):
            ExperimentSpec.from_dict(document)

    def test_unknown_sweep_keys_rejected(self):
        document = layer_sweep_spec().as_dict()
        document["sweep"]["grid"] = {}
        with pytest.raises(SpecError, match="unknown sweep keys.*grid"):
            ExperimentSpec.from_dict(document)

    def test_axis_typo_gets_did_you_mean(self):
        with pytest.raises(SpecError, match="scenario.layer_range"):
            validate_sweep_axis("scenario.layer_rnage")

    def test_unknown_axis_root_rejected(self):
        with pytest.raises(SpecError, match="unknown axis root"):
            validate_sweep_axis("optimizer.lr")

    def test_empty_axis_values_rejected(self):
        spec = layer_sweep_spec()
        spec.sweep.axes["scenario.layer_range"] = []
        with pytest.raises(SpecError, match="non-empty list"):
            spec.validate()

    def test_sweep_without_axes_or_points_rejected(self):
        spec = layer_sweep_spec()
        spec.sweep = SweepSpec()
        with pytest.raises(SpecError, match="neither axes nor points"):
            spec.validate()

    def test_copy_is_deep(self):
        spec = layer_sweep_spec()
        clone = spec.copy()
        clone.sweep.axes["scenario.layer_range"].append([9, 9])
        assert len(spec.sweep.axes["scenario.layer_range"]) == 2

    def test_run_refuses_sweep_specs(self):
        with pytest.raises(SpecError, match="run_sweep"):
            run(layer_sweep_spec())


class TestExpand:
    def test_cartesian_product_declaration_order(self):
        spec = (
            base_builder()
            .sweep(axes={
                "scenario.random_seed": [3, 4],
                "scenario.rnd_bit_range": [[23, 23], [30, 30]],
            })
            .build()
        )
        plan = expand(spec)
        assert [point.overrides for point in plan.points] == [
            {"scenario.random_seed": 3, "scenario.rnd_bit_range": [23, 23]},
            {"scenario.random_seed": 3, "scenario.rnd_bit_range": [30, 30]},
            {"scenario.random_seed": 4, "scenario.rnd_bit_range": [23, 23]},
            {"scenario.random_seed": 4, "scenario.rnd_bit_range": [30, 30]},
        ]
        assert plan.axis_order == ["scenario.random_seed", "scenario.rnd_bit_range"]

    def test_explicit_points_append_after_the_grid(self):
        spec = layer_sweep_spec()
        spec.sweep.points = [{"scenario.rnd_bit_range": [30, 30]}]
        plan = expand(spec)
        assert len(plan) == 3
        assert plan.points[2].overrides == {"scenario.rnd_bit_range": [30, 30]}
        assert plan.axis_order[-1] == "scenario.rnd_bit_range"

    def test_children_are_concrete_validated_specs(self):
        plan = expand(layer_sweep_spec())
        for index, point in enumerate(plan.points):
            assert point.spec.sweep is None
            assert point.spec.name == f"sweep-test-p{index:03d}"
        assert plan.points[1].spec.scenario.layer_range == (1, 1)
        # The base spec is untouched by expansion.
        assert plan.base.scenario.layer_range is None

    def test_invalid_grid_value_fails_at_expansion(self):
        spec = layer_sweep_spec()
        spec.sweep.axes["scenario.layer_range"] = [[0, 0], "not-a-range"]
        with pytest.raises(SweepError, match="point 1"):
            expand(spec)

    def test_model_axis_changes_the_child_component(self):
        spec = (
            base_builder()
            .sweep(axes={"model.params.seed": [0, 1]})
            .build()
        )
        plan = expand(spec)
        assert plan.points[0].spec.model.params["seed"] == 0
        assert plan.points[1].spec.model.params["seed"] == 1

    def test_protection_params_without_protection_is_an_error(self):
        spec = (
            base_builder()
            .sweep(axes={"protection.params.bound": [1.0, 2.0]})
            .build()
        )
        with pytest.raises(SweepError, match="protection"):
            expand(spec)

    def test_whole_protection_axis_accepts_none_and_components(self):
        spec = (
            base_builder()
            .sweep(axes={"protection": [None, "ranger", {"name": "clipper"}]})
            .build()
        )
        plan = expand(spec)
        assert plan.points[0].spec.protection is None
        assert plan.points[1].spec.protection.name == "ranger"
        assert plan.points[2].spec.protection.name == "clipper"

    def test_expand_without_sweep_section(self):
        with pytest.raises(SweepError, match="no sweep"):
            expand(base_builder().build())


class TestResolve:
    def test_run_ids_are_stable_and_distinct(self):
        spec = layer_sweep_spec()
        plan_a, plan_b = expand(spec), expand(spec)
        plan_a.resolve()
        plan_b.resolve()
        ids_a = [point.run_id for point in plan_a.points]
        assert ids_a == [point.run_id for point in plan_b.points]
        assert len(set(ids_a)) == len(ids_a)
        assert all(len(run_id) == 16 for run_id in ids_a)

    def test_scenario_only_grid_builds_the_model_once(self, monkeypatch):
        from repro.experiments.registry import TASKS

        plugin = TASKS.get("classification")
        builds = []
        original = type(plugin).build_model

        def counting(self, spec, dataset):
            builds.append(spec.name)
            return original(self, spec, dataset)

        monkeypatch.setattr(type(plugin), "build_model", counting)
        plan = expand(layer_sweep_spec())
        plan.resolve()
        assert len(builds) == 1

    def test_supplied_artifacts_forbid_component_axes(self):
        spec = (
            base_builder()
            .sweep(axes={"model.params.seed": [0, 1]})
            .build()
        )
        plan = expand(spec)
        model = MODELS.get("lenet5")(num_classes=10, seed=0)
        with pytest.raises(SweepError, match="pre-built"):
            plan.resolve(Artifacts(model=model))


class TestRunSweep:
    def test_without_store_every_point_executes_in_memory(self):
        result = run_sweep(layer_sweep_spec())
        assert (result.executed, result.cached) == (2, 0)
        for outcome in result.outcomes:
            assert outcome.load_result().summary["corrupted"]["num_inferences"] == IMAGES

    def test_store_skip_and_lazy_results(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        spec = layer_sweep_spec()
        first = run_sweep(spec, store=store)
        assert first.executed == 2
        second = run_sweep(spec, store=store)
        assert (second.executed, second.cached) == (0, 2)
        reloaded = second.outcomes[0].load_result()
        assert reloaded.summary == second.outcomes[0].summary
        assert reloaded.task == "classification"

    def test_rerun_invokes_zero_point_executions(self, tmp_path, monkeypatch):
        store = CampaignStore(tmp_path / "store")
        spec = layer_sweep_spec()
        run_sweep(spec, store=store)

        def forbidden(*args, **kwargs):
            raise AssertionError("a cached sweep must not execute any point")

        monkeypatch.setattr(sweep_module, "_execute_point", forbidden)
        result = run_sweep(spec, store=store)
        assert (result.executed, result.cached) == (0, 2)

    def test_workers_override_reuses_serial_points(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        spec = layer_sweep_spec()
        run_sweep(spec, store=store)
        again = run_sweep(spec, store=store, workers=2)
        assert again.executed == 0

    def test_store_from_sweep_section(self, tmp_path):
        spec = layer_sweep_spec(store=tmp_path / "declared-store")
        result = run_sweep(spec)
        assert result.executed == 2
        assert (tmp_path / "declared-store" / "sweep-test_sweep_table.csv").exists()
        assert run_sweep(spec).executed == 0

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path, monkeypatch):
        spec = layer_sweep_spec(layers=((0, 0), (1, 1), (2, 2)))
        baseline_store = CampaignStore(tmp_path / "baseline")
        run_sweep(spec, store=baseline_store)
        baseline_csv = (baseline_store.root / "sweep-test_sweep_table.csv").read_bytes()
        baseline_json = (baseline_store.root / "sweep-test_sweep_table.json").read_bytes()

        store = CampaignStore(tmp_path / "interrupted")
        original = sweep_module._execute_point
        calls = []

        def crash_on_third(point, *args, **kwargs):
            calls.append(point.index)
            if len(calls) == 3:
                raise RuntimeError("simulated crash mid-sweep")
            return original(point, *args, **kwargs)

        monkeypatch.setattr(sweep_module, "_execute_point", crash_on_third)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(spec, store=store)
        monkeypatch.setattr(sweep_module, "_execute_point", original)

        resumed = run_sweep(spec, store=store, resume=True)
        assert (resumed.executed, resumed.cached) == (1, 2)
        assert (store.root / "sweep-test_sweep_table.csv").read_bytes() == baseline_csv
        assert (store.root / "sweep-test_sweep_table.json").read_bytes() == baseline_json

    def test_resume_refuses_a_different_sweeps_manifest(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        run_sweep(layer_sweep_spec(), store=store)
        other = layer_sweep_spec(layers=((0, 0), (2, 2)))
        with pytest.raises(StoreError, match="different sweep configuration"):
            run_sweep(other, store=store, resume=True)


class TestAggregation:
    def test_table_rows_carry_axes_and_kpis(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        result = run_sweep(layer_sweep_spec(), store=store)
        rows = result.table_rows()
        assert [row["point"] for row in rows] == [0, 1]
        assert rows[0]["scenario.layer_range"] == [0, 0]
        assert rows[1]["scenario.layer_range"] == [1, 1]
        for row in rows:
            assert 0.0 <= row["corrupted.sde_rate"] <= 1.0
            assert row["corrupted.num_inferences"] == IMAGES
            # file locations are bookkeeping, not KPIs
            assert not any(column.startswith("output_files") for column in row)

    def test_format_table_renders_every_point(self):
        result = run_sweep(layer_sweep_spec())
        rendered = result.format_table()
        assert "run_id" in rendered.splitlines()[0]
        assert len(rendered.splitlines()) == 3

    def test_kpi_rows_match_the_hand_written_loop(self, tmp_path):
        """The sweep manager reproduces the manual spec-copy loop bit for bit.

        This is the migration guarantee for ``examples/layer_sweep.py``: the
        per-step KPI rows of the replaced hand-written loop and the sweep
        grid's aggregated rows serialize byte-identically.
        """
        base = base_builder().build()
        dataset = DATASETS.get(base.dataset.name)(**base.dataset.params)
        from repro.models.pretrained import fit_classifier_head

        model = fit_classifier_head(
            MODELS.get(base.model.name)(**base.model.params), dataset, 10
        )
        artifacts = Artifacts(model=model, dataset=dataset)
        layers = [(0, 0), (1, 1)]

        manual_rows = []
        for pair in layers:
            spec = base.copy(scenario=base.scenario.copy(layer_range=pair))
            kpis = run(spec, artifacts=artifacts).summary["corrupted"]
            manual_rows.append(json.loads(json.dumps(kpis, default=str)))

        sweep_spec = base.copy()
        sweep_spec.sweep = SweepSpec(
            axes={"scenario.layer_range": [list(pair) for pair in layers]}
        )
        result = run_sweep(sweep_spec, artifacts, store=tmp_path / "store")
        sweep_rows = [outcome.summary["corrupted"] for outcome in result.outcomes]

        assert json.dumps(sweep_rows, sort_keys=True) == json.dumps(
            manual_rows, sort_keys=True
        )
