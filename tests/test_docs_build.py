"""Docs subsystem: generated API reference stays fresh, covered and deterministic."""

from pathlib import Path

from repro.docs import (
    API_MODULES,
    COVERAGE_MODULES,
    build_api_reference,
    check_api_reference,
    docstring_coverage,
    render_module,
)
from repro.docs.__main__ import main

DOCS_API = Path(__file__).resolve().parents[1] / "docs" / "api"


def test_checked_in_api_reference_matches_source_tree():
    # The CI docs job runs `python -m repro.docs build --check`; keep the
    # same guarantee in tier-1 so drift is caught before push.
    assert check_api_reference(DOCS_API) == []


def test_build_is_deterministic(tmp_path):
    first = {p.name: p.read_text() for p in build_api_reference(tmp_path / "a")}
    second = {p.name: p.read_text() for p in build_api_reference(tmp_path / "b")}
    assert first == second
    assert set(first) == {m.replace(".", "-") + ".md" for m in API_MODULES} | {"index.md"}


def test_no_memory_addresses_leak_into_pages():
    for module_name in API_MODULES:
        assert " at 0x" not in render_module(module_name), module_name


def test_docstring_coverage_is_complete():
    reports = docstring_coverage()
    assert [r.module for r in reports] == list(COVERAGE_MODULES)
    gaps = {r.module: r.missing for r in reports if r.percent < 100.0}
    assert gaps == {}, f"public members missing docstrings: {gaps}"


def test_cli_build_check_and_coverage_exit_codes(tmp_path, capsys):
    assert main(["build", "--out", str(tmp_path / "api")]) == 0
    assert main(["build", "--out", str(tmp_path / "api"), "--check"]) == 0
    (tmp_path / "api" / "index.md").write_text("stale\n")
    assert main(["build", "--out", str(tmp_path / "api"), "--check"]) == 1
    capsys.readouterr()
    assert main(["coverage", "--fail-under", "100"]) == 0
    out = capsys.readouterr().out
    assert "repro.nn.fuse" in out


def test_guides_cross_link_and_exist():
    docs = DOCS_API.parent
    for name in ("index.md", "architecture.md", "ir.md"):
        assert (docs / name).exists(), name
    architecture = (docs / "architecture.md").read_text()
    assert "ir.md" in architecture and "api/index.md" in architecture
    readme = (docs.parent / "README.md").read_text()
    assert "docs/architecture.md" in readme and "docs/ir.md" in readme
