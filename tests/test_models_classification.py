"""Unit tests for the classification model zoo."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MODEL_REGISTRY,
    alexnet,
    build_model,
    lenet5,
    mlp,
    resnet18,
    resnet50,
    vgg11,
    vgg16,
)


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)


class TestFactoryFunctions:
    @pytest.mark.parametrize("factory", [mlp, lenet5, alexnet, vgg11, resnet18])
    def test_forward_output_shape(self, factory, batch):
        model = factory(num_classes=7).eval()
        out = model(batch)
        assert out.shape == (2, 7)
        assert np.isfinite(out).all()

    def test_vgg16_forward(self, batch):
        out = vgg16(num_classes=10).eval()(batch)
        assert out.shape == (2, 10)

    def test_resnet50_forward(self, batch):
        out = resnet50(num_classes=10).eval()(batch)
        assert out.shape == (2, 10)

    def test_same_seed_same_weights(self, batch):
        a = lenet5(seed=3).eval()
        b = lenet5(seed=3).eval()
        np.testing.assert_allclose(a(batch), b(batch))

    def test_different_seed_different_weights(self, batch):
        a = lenet5(seed=1).eval()
        b = lenet5(seed=2).eval()
        assert not np.allclose(a(batch), b(batch))

    def test_registry_contains_paper_models(self):
        assert {"alexnet", "vgg16", "resnet50"} <= set(MODEL_REGISTRY)

    def test_build_model_by_name(self, batch):
        model = build_model("lenet5", num_classes=4).eval()
        assert model(batch).shape == (2, 4)

    def test_build_model_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("transformer9000")


class TestArchitectureShapes:
    def _count_layers(self, model, layer_class):
        return sum(1 for _, module in model.named_modules() if isinstance(module, layer_class))

    def test_alexnet_layer_counts(self):
        model = alexnet()
        assert self._count_layers(model, nn.Conv2d) == 5
        assert self._count_layers(model, nn.Linear) == 3

    def test_vgg16_layer_counts(self):
        model = vgg16()
        assert self._count_layers(model, nn.Conv2d) == 13
        assert self._count_layers(model, nn.Linear) == 3

    def test_vgg11_layer_counts(self):
        model = vgg11()
        assert self._count_layers(model, nn.Conv2d) == 8

    def test_resnet50_block_structure(self):
        model = resnet50()
        # 1 stem + 3*(3+4+6+3) bottleneck convs + downsample convs (4 stages)
        conv_count = self._count_layers(model, nn.Conv2d)
        assert conv_count == 1 + 3 * (3 + 4 + 6 + 3) + 4
        assert self._count_layers(model, nn.Linear) == 1

    def test_resnet18_block_structure(self):
        model = resnet18()
        conv_count = self._count_layers(model, nn.Conv2d)
        assert conv_count == 1 + 2 * (2 + 2 + 2 + 2) + 3

    def test_lenet_layer_counts(self):
        model = lenet5()
        assert self._count_layers(model, nn.Conv2d) == 2
        assert self._count_layers(model, nn.Linear) == 3

    def test_width_scaling_reduces_parameters(self):
        wide = alexnet(width=0.5)
        narrow = alexnet(width=0.25)
        assert narrow.num_parameters() < wide.num_parameters()

    def test_vgg_rejects_unknown_config(self):
        from repro.models.classification import VGG

        with pytest.raises(ValueError):
            VGG("vgg99")


class TestRelativeLayerSizes:
    def test_resnet_deeper_layers_have_more_weights(self):
        """Later ResNet stages use more channels, hence more weights per conv."""
        model = resnet50()
        conv_sizes = [
            module.weight.size
            for _, module in model.named_modules()
            if isinstance(module, nn.Conv2d)
        ]
        assert max(conv_sizes[-5:]) > max(conv_sizes[:5])
