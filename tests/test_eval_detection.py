"""Unit tests for the detection KPIs (AP/mAP and IVMOD)."""

import numpy as np
import pytest

from repro.eval import (
    average_precision,
    coco_map,
    evaluate_detection_campaign,
    ivmod_metric,
    match_detections,
)


def prediction(boxes, scores, labels):
    return {
        "boxes": np.asarray(boxes, dtype=np.float32).reshape(-1, 4),
        "scores": np.asarray(scores, dtype=np.float32).reshape(-1),
        "labels": np.asarray(labels, dtype=np.int64).reshape(-1),
    }


def target(boxes, labels):
    return {
        "boxes": np.asarray(boxes, dtype=np.float32).reshape(-1, 4),
        "labels": np.asarray(labels, dtype=np.int64).reshape(-1),
    }


class TestMatching:
    def test_perfect_match(self):
        tp, num_gt = match_detections([[0, 0, 10, 10]], [0.9], [[0, 0, 10, 10]])
        assert tp.tolist() == [True]
        assert num_gt == 1

    def test_low_iou_not_matched(self):
        tp, _ = match_detections([[0, 0, 10, 10]], [0.9], [[50, 50, 60, 60]])
        assert tp.tolist() == [False]

    def test_each_gt_matched_once(self):
        tp, _ = match_detections(
            [[0, 0, 10, 10], [0, 0, 10, 10]], [0.9, 0.8], [[0, 0, 10, 10]]
        )
        assert tp.tolist() == [True, False]

    def test_highest_score_matched_first(self):
        tp, _ = match_detections(
            [[0, 0, 10, 10], [1, 1, 11, 11]], [0.5, 0.9], [[0, 0, 10, 10]]
        )
        # Predictions are ordered by score: the 0.9 one (index 1) matches first.
        assert tp.tolist() == [True, False]

    def test_empty_predictions(self):
        tp, num_gt = match_detections(np.zeros((0, 4)), np.zeros(0), [[0, 0, 5, 5]])
        assert len(tp) == 0 and num_gt == 1


class TestAveragePrecision:
    def test_perfect_detector(self):
        assert average_precision(np.array([True, True]), 2) == pytest.approx(1.0)

    def test_no_detections(self):
        assert average_precision(np.zeros(0, dtype=bool), 3) == 0.0

    def test_no_ground_truth(self):
        assert average_precision(np.array([True]), 0) == 0.0

    def test_half_recall(self):
        ap = average_precision(np.array([True]), 2)
        assert ap == pytest.approx(0.5)

    def test_false_positive_before_true_positive_lowers_ap(self):
        good = average_precision(np.array([True, False]), 1)
        bad = average_precision(np.array([False, True]), 1)
        assert good > bad


class TestCocoMap:
    def test_perfect_predictions(self):
        targets = [target([[0, 0, 10, 10]], [0]), target([[5, 5, 20, 20]], [1])]
        predictions = [
            prediction([[0, 0, 10, 10]], [0.9], [0]),
            prediction([[5, 5, 20, 20]], [0.8], [1]),
        ]
        result = coco_map(predictions, targets, num_classes=2)
        assert result["mAP"] == pytest.approx(1.0)
        assert result["AR"] == pytest.approx(1.0)
        assert result["AP50"] == pytest.approx(1.0)

    def test_missing_all_objects(self):
        targets = [target([[0, 0, 10, 10]], [0])]
        predictions = [prediction(np.zeros((0, 4)), [], [])]
        result = coco_map(predictions, targets, num_classes=1)
        assert result["mAP"] == 0.0

    def test_wrong_class_counts_as_miss(self):
        targets = [target([[0, 0, 10, 10]], [0])]
        predictions = [prediction([[0, 0, 10, 10]], [0.9], [1])]
        assert coco_map(predictions, targets, num_classes=2)["mAP"] == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            coco_map([], [target([[0, 0, 1, 1]], [0])], 1)

    def test_multiple_iou_thresholds(self):
        targets = [target([[0, 0, 10, 10]], [0])]
        predictions = [prediction([[0, 0, 9, 10]], [0.9], [0])]  # IoU = 0.9
        result = coco_map(predictions, targets, 1, iou_thresholds=(0.5, 0.95))
        assert result["mAP"] == pytest.approx(0.5)  # hit at 0.5, miss at 0.95


class TestIvmod:
    def test_identical_runs_no_corruption(self):
        targets = [target([[0, 0, 10, 10]], [0])] * 3
        golden = [prediction([[0, 0, 10, 10]], [0.9], [0])] * 3
        result = ivmod_metric(golden, golden, targets)
        assert result.sde_rate == 0.0
        assert result.due_rate == 0.0

    def test_lost_true_positive_counts(self):
        targets = [target([[0, 0, 10, 10]], [0])]
        golden = [prediction([[0, 0, 10, 10]], [0.9], [0])]
        corrupted = [prediction(np.zeros((0, 4)), [], [])]
        result = ivmod_metric(golden, corrupted, targets)
        assert result.sde_rate == 1.0
        assert result.tp_lost_images == 1
        assert result.fp_added_images == 0

    def test_added_false_positive_counts(self):
        targets = [target([[0, 0, 10, 10]], [0])]
        golden = [prediction([[0, 0, 10, 10]], [0.9], [0])]
        corrupted = [prediction([[0, 0, 10, 10], [40, 40, 60, 60]], [0.9, 0.8], [0, 0])]
        result = ivmod_metric(golden, corrupted, targets)
        assert result.sde_rate == 1.0
        assert result.fp_added_images == 1

    def test_nan_output_counts_as_due_not_sde(self):
        targets = [target([[0, 0, 10, 10]], [0])]
        golden = [prediction([[0, 0, 10, 10]], [0.9], [0])]
        corrupted = [prediction([[0, 0, np.nan, 10]], [0.9], [0])]
        result = ivmod_metric(golden, corrupted, targets)
        assert result.due_rate == 1.0
        assert result.sde_rate == 0.0

    def test_external_due_flags(self):
        targets = [target([[0, 0, 10, 10]], [0])] * 2
        golden = [prediction([[0, 0, 10, 10]], [0.9], [0])] * 2
        result = ivmod_metric(golden, golden, targets, due_flags=[True, False])
        assert result.due_rate == 0.5

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ivmod_metric([], [prediction([[0, 0, 1, 1]], [0.5], [0])], [])

    def test_empty_campaign(self):
        result = ivmod_metric([], [], [])
        assert result.sde_rate == 0.0 and result.total_images == 0


class TestCampaignEvaluation:
    def test_campaign_summary(self):
        targets = [target([[0, 0, 10, 10]], [0]), target([[20, 20, 40, 40]], [1])]
        golden = [
            prediction([[0, 0, 10, 10]], [0.9], [0]),
            prediction([[20, 20, 40, 40]], [0.9], [1]),
        ]
        corrupted = [
            prediction([[0, 0, 10, 10]], [0.9], [0]),
            prediction(np.zeros((0, 4)), [], []),
        ]
        result = evaluate_detection_campaign(golden, corrupted, targets, num_classes=2, model_name="det")
        assert result.model_name == "det"
        assert result.num_images == 2
        assert result.golden_map["mAP"] == pytest.approx(1.0)
        assert result.corrupted_map["mAP"] < 1.0
        assert result.ivmod.sde_rate == pytest.approx(0.5)

    def test_as_dict_is_json_friendly(self):
        import json

        targets = [target([[0, 0, 10, 10]], [0])]
        golden = [prediction([[0, 0, 10, 10]], [0.9], [0])]
        result = evaluate_detection_campaign(golden, golden, targets, num_classes=1)
        json.dumps(result.as_dict())
