"""Chaos tests of the fault-tolerant campaign executor.

The contract under test: a shard worker that raises, hangs or is SIGKILL'd on
its first attempt is retried by its deterministic ``(start, stop)`` step range
and the finished campaign is *byte-identical* to an undisturbed serial run;
a campaign interrupted mid-run resumes from its crash-safe manifest, re-runs
only the pending shards and again merges byte-identically.

Worker chaos is marker-armed: the worker drops a marker file *before*
failing, so only the first attempt fails and every retry succeeds — exactly
the transient-fault scenario the supervisor exists for.
"""

import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

import multiprocessing

import numpy as np
import pytest

from repro.alficore import CampaignResultWriter, GoldenCache, default_scenario
from repro.alficore.campaign import CampaignCore, ClassificationTask, ShardedCampaignExecutor
from repro.alficore.resilience import (
    KIND_DIED,
    KIND_RAISED,
    KIND_TIMEOUT,
    ExecutionPolicy,
    RunManifest,
    ShardError,
    ShardSupervisor,
    atomic_replace_json,
    atomic_write_pickle,
    manifest_config_digest,
)
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head


@pytest.fixture(scope="module")
def fitted_model_and_dataset():
    dataset = SyntheticClassificationDataset(num_samples=12, num_classes=10, noise=0.2, seed=5)
    model = fit_classifier_head(lenet5(seed=1), dataset, 10)
    return model, dataset


def _file_bytes(path: str | Path) -> bytes:
    return Path(path).read_bytes()


# --------------------------------------------------------------------------- #
# toy worker: marker-armed chaos
# --------------------------------------------------------------------------- #
@dataclass
class ToyJob:
    """Minimal picklable shard job for supervisor unit tests."""

    index: int
    start: int
    stop: int
    chaos_dir: str
    mode: str = "ok"


def _marker(job: ToyJob) -> Path:
    return Path(job.chaos_dir) / f"shard_{job.index}_tripped"


def _toy_execute(job: ToyJob):
    """Square the step range — unless the job's chaos mode says to fail.

    The ``*-once`` modes drop a marker file before failing, so exactly the
    first attempt fails and every retry succeeds.
    """
    marker = _marker(job)
    first_time = not marker.exists()
    if job.mode.endswith("-once") and first_time:
        marker.write_text(job.mode)
        if job.mode == "raise-once":
            raise RuntimeError(f"chaos: shard {job.index} raised")
        if job.mode == "exit-once":
            os._exit(17)
        if job.mode == "hang-once":
            time.sleep(60.0)
    if job.mode == "raise-always":
        raise RuntimeError(f"chaos: shard {job.index} always fails")
    if job.mode == "hang-always":
        time.sleep(60.0)
    if job.mode == "subprocess-raise" and multiprocessing.parent_process() is not None:
        raise RuntimeError(f"chaos: shard {job.index} fails in every subprocess")
    return [i * i for i in range(job.start, job.stop)]


def _toy_jobs(chaos_dir: Path, modes: list[str]) -> list[ToyJob]:
    return [
        ToyJob(index=i, start=4 * i, stop=4 * (i + 1), chaos_dir=str(chaos_dir), mode=mode)
        for i, mode in enumerate(modes)
    ]


_EXPECTED = lambda jobs: [[i * i for i in range(j.start, j.stop)] for j in jobs]  # noqa: E731


class TestShardSupervisor:
    def test_clean_run_returns_results_sorted_by_index(self, tmp_path):
        jobs = _toy_jobs(tmp_path, ["ok", "ok", "ok"])
        supervisor = ShardSupervisor(list(reversed(jobs)), _toy_execute, workers=2)
        assert supervisor.run() == _EXPECTED(jobs)
        assert supervisor.attempt_log == {}

    def test_raised_worker_is_retried(self, tmp_path):
        jobs = _toy_jobs(tmp_path, ["ok", "raise-once", "ok"])
        supervisor = ShardSupervisor(
            jobs, _toy_execute, workers=2, policy=ExecutionPolicy(retries=2, backoff=0.0)
        )
        assert supervisor.run() == _EXPECTED(jobs)
        assert supervisor.attempt_log == {1: [{"attempt": 1, "kind": KIND_RAISED}]}

    def test_sigkilled_worker_is_classified_died_and_retried(self, tmp_path):
        jobs = _toy_jobs(tmp_path, ["exit-once", "ok"])
        supervisor = ShardSupervisor(
            jobs, _toy_execute, workers=2, policy=ExecutionPolicy(retries=2, backoff=0.0)
        )
        assert supervisor.run() == _EXPECTED(jobs)
        assert supervisor.attempt_log == {0: [{"attempt": 1, "kind": KIND_DIED}]}

    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        jobs = _toy_jobs(tmp_path, ["ok", "hang-once"])
        supervisor = ShardSupervisor(
            jobs,
            _toy_execute,
            workers=2,
            policy=ExecutionPolicy(retries=2, backoff=0.0, shard_timeout=1.0),
        )
        assert supervisor.run() == _EXPECTED(jobs)
        assert supervisor.attempt_log == {1: [{"attempt": 1, "kind": KIND_TIMEOUT}]}

    def test_exhausted_budget_raises_structured_shard_error(self, tmp_path):
        jobs = _toy_jobs(tmp_path, ["ok", "raise-always"])
        supervisor = ShardSupervisor(
            jobs,
            _toy_execute,
            workers=2,
            policy=ExecutionPolicy(retries=1, backoff=0.0, in_process_fallback=False),
        )
        with pytest.raises(ShardError) as err:
            supervisor.run()
        assert err.value.index == 1
        assert (err.value.start, err.value.stop) == (4, 8)
        assert err.value.attempts == 2
        assert err.value.kind == KIND_RAISED
        assert "chaos: shard 1 always fails" in err.value.cause
        assert "shard 1 (steps [4, 8))" in str(err.value)

    def test_repeatedly_raising_shard_degrades_to_in_process(self, tmp_path):
        # Fails in every subprocess but succeeds in-process: the graceful
        # degradation path of a pathological multiprocessing environment.
        jobs = _toy_jobs(tmp_path, ["subprocess-raise", "ok"])
        supervisor = ShardSupervisor(
            jobs, _toy_execute, workers=2, policy=ExecutionPolicy(retries=0, backoff=0.0)
        )
        assert supervisor.run() == _EXPECTED(jobs)
        assert supervisor.attempt_log == {0: [{"attempt": 1, "kind": KIND_RAISED}]}

    def test_timed_out_shard_is_never_pulled_in_process(self, tmp_path):
        # In-process fallback would block the supervisor on the 60s sleep;
        # timeouts must fail hard instead.
        jobs = _toy_jobs(tmp_path, ["hang-always"])
        supervisor = ShardSupervisor(
            jobs,
            _toy_execute,
            workers=1,
            policy=ExecutionPolicy(
                retries=0, backoff=0.0, shard_timeout=1.0, in_process_fallback=True
            ),
        )
        with pytest.raises(ShardError) as err:
            supervisor.run()
        assert err.value.kind == KIND_TIMEOUT
        assert err.value.attempts == 1

    def test_serial_execution_retries_and_wraps_in_shard_error(self, tmp_path):
        jobs = _toy_jobs(tmp_path, ["raise-once", "ok"])
        supervisor = ShardSupervisor(
            jobs, _toy_execute, policy=ExecutionPolicy(retries=1, backoff=0.0)
        )
        assert supervisor.run_serial() == _EXPECTED(jobs)
        assert supervisor.attempt_log == {0: [{"attempt": 1, "kind": KIND_RAISED}]}

        always = _toy_jobs(tmp_path / "always", ["raise-always"])
        supervisor = ShardSupervisor(
            always, _toy_execute, policy=ExecutionPolicy(retries=1, backoff=0.0)
        )
        with pytest.raises(ShardError) as err:
            supervisor.run_serial()
        assert (err.value.index, err.value.start, err.value.stop) == (0, 0, 4)
        assert err.value.attempts == 2
        assert err.value.kind == KIND_RAISED

    def test_empty_job_list_is_a_no_op(self, tmp_path):
        assert ShardSupervisor([], _toy_execute, workers=2).run() == []


class TestExecutionPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = ExecutionPolicy(backoff=0.5, backoff_cap=3.0)
        assert [policy.backoff_delay(k) for k in range(1, 6)] == [0.5, 1.0, 2.0, 3.0, 3.0]
        assert ExecutionPolicy(backoff=0.0).backoff_delay(5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"shard_timeout": 0.0},
            {"shard_timeout": -2.5},
            {"backoff": -0.1},
            {"backoff_cap": -1.0},
        ],
    )
    def test_validate_rejects_out_of_range_settings(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs).validate()


# --------------------------------------------------------------------------- #
# the crash-safe run manifest
# --------------------------------------------------------------------------- #
class TestRunManifest:
    CONFIG = {"campaign_name": "m", "total_steps": 12, "bounds": [[0, 6], [6, 12]]}

    def test_round_trip_and_progress_tracking(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = RunManifest.fresh(path, self.CONFIG)
        assert path.exists()
        manifest.mark_completed(1, 6, 12)
        manifest.mark_completed(0, 0, 6)

        loaded = RunManifest.load(path)
        assert loaded is not None
        assert loaded.matches(self.CONFIG)
        assert loaded.completed_indices() == [0, 1]
        assert loaded.is_completed(1)
        assert loaded.completed[1] == {"start": 6, "stop": 12}

        loaded.mark_pending(1)
        assert RunManifest.load(path).completed_indices() == [0]
        loaded.mark_pending(7)  # unknown index: no-op

    def test_load_rejects_missing_corrupt_and_tampered_files(self, tmp_path):
        assert RunManifest.load(tmp_path / "absent.json") is None

        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text('{"schema_version": 1, "config": ')  # torn write
        assert RunManifest.load(corrupt) is None

        tampered = tmp_path / "tampered.json"
        RunManifest.fresh(tampered, self.CONFIG)
        document = json.loads(tampered.read_text())
        document["config"]["total_steps"] = 99  # digest no longer matches
        tampered.write_text(json.dumps(document))
        assert RunManifest.load(tampered) is None

    def test_matches_is_digest_based(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.json", self.CONFIG)
        assert manifest.matches(dict(self.CONFIG))
        assert not manifest.matches({**self.CONFIG, "total_steps": 13})
        assert manifest_config_digest(self.CONFIG) == manifest_config_digest(dict(self.CONFIG))

    def test_atomic_writers_leave_no_temp_files(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_replace_json(target, {"a": 1})
        atomic_replace_json(target, {"a": 2})
        assert json.loads(target.read_text()) == {"a": 2}

        pickled = tmp_path / "payload.pkl"
        atomic_write_pickle(pickled, {"state": [1, 2, 3]})
        with open(pickled, "rb") as handle:
            assert pickle.load(handle) == {"state": [1, 2, 3]}
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


# --------------------------------------------------------------------------- #
# golden-cache spillover corruption (worker killed mid-write, disk full, ...)
# --------------------------------------------------------------------------- #
class TestGoldenCacheCorruptSpill:
    def test_corrupt_spill_file_is_a_miss_and_is_unlinked(self, tmp_path):
        key = ("golden", (0, 1, 2))
        writer_cache = GoldenCache(spill_dir=tmp_path)
        writer_cache.put(key, np.arange(4.0), batch_shape=(3, 1))
        spill_files = list(tmp_path.glob("golden_*.pkl"))
        assert len(spill_files) == 1
        spill_files[0].write_bytes(b"\x80\x04 truncated garbage")

        reader_cache = GoldenCache(spill_dir=tmp_path)
        assert reader_cache.get(key) is None
        assert not spill_files[0].exists()  # never trips a later lookup
        # A second lookup is a plain miss, not an error.
        assert reader_cache.get(key) is None

    def test_intact_spill_round_trips_and_no_temp_files_remain(self, tmp_path):
        key = ("golden", (3, 4))
        GoldenCache(spill_dir=tmp_path).put(key, np.arange(2.0), batch_shape=(2, 1))
        entry = GoldenCache(spill_dir=tmp_path).get(key)
        assert entry is not None
        np.testing.assert_array_equal(entry.output, np.arange(2.0))
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


# --------------------------------------------------------------------------- #
# campaign-level chaos: retry is byte-identical to an undisturbed run
# --------------------------------------------------------------------------- #
class ChaosClassificationTask(ClassificationTask):
    """A classification task that fails once, at a chosen campaign step.

    A marker file is dropped *before* failing, so the shard's retry (and any
    other attempt after the first) runs clean — the transient-fault scenario
    the supervisor exists for.  Must stay picklable: workers receive it by
    value.
    """

    def __init__(self, chaos_dir: str | Path, fail_step: int, mode: str = "raise"):
        super().__init__()
        self.chaos_dir = str(chaos_dir)
        self.fail_step = int(fail_step)
        self.mode = mode

    def consume(self, ctx) -> None:
        marker = Path(self.chaos_dir) / f"step_{self.fail_step}_tripped"
        if ctx.step == self.fail_step and not marker.exists():
            marker.write_text(self.mode)
            if self.mode == "raise":
                raise RuntimeError(f"chaos: step {ctx.step} failed")
            if self.mode == "exit":
                os._exit(23)
            if self.mode == "hang":
                time.sleep(60.0)
        super().consume(ctx)


STREAM_TAGS = ("golden_csv", "corrupted_csv", "applied_faults")


def _run_campaign(out_dir, model, dataset, scenario, task, workers, num_shards, policy=None):
    writer = CampaignResultWriter(out_dir, campaign_name="chaos")
    core = CampaignCore(model, dataset, task, scenario=scenario, writer=writer)
    executor = ShardedCampaignExecutor(
        core, workers=workers, num_shards=num_shards, policy=policy
    )
    state, paths = executor.run()
    return state, paths, executor


class TestCampaignChaos:
    """Worker chaos mid-campaign: merged outputs stay byte-identical."""

    @pytest.fixture()
    def scenario(self):
        return default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=7, model_name="chaos"
        )

    @pytest.fixture()
    def reference(self, fitted_model_and_dataset, scenario, tmp_path):
        model, dataset = fitted_model_and_dataset
        return _run_campaign(
            tmp_path / "reference", model, dataset, scenario, ClassificationTask(),
            workers=1, num_shards=1,
        )

    def _assert_matches_reference(self, reference, state, paths):
        ref_state, ref_paths, _ = reference
        for tag in STREAM_TAGS:
            assert _file_bytes(ref_paths[tag]) == _file_bytes(paths[tag]), tag
        assert state == ref_state

    @pytest.mark.parametrize(
        "workers,mode,expected_kind",
        [(3, "raise", KIND_RAISED), (2, "exit", KIND_DIED)],
    )
    def test_failing_worker_is_retried_byte_identically(
        self, fitted_model_and_dataset, scenario, tmp_path, reference, workers, mode, expected_kind
    ):
        model, dataset = fitted_model_and_dataset
        chaos_dir = tmp_path / f"chaos_{mode}"
        chaos_dir.mkdir()
        # 12 steps over 3 shards: step 5 lands in shard 1 (steps [4, 8)).
        task = ChaosClassificationTask(chaos_dir, fail_step=5, mode=mode)
        state, paths, executor = _run_campaign(
            tmp_path / mode, model, dataset, scenario, task,
            workers=workers, num_shards=3, policy=ExecutionPolicy(retries=2, backoff=0.0),
        )
        self._assert_matches_reference(reference, state, paths)
        assert executor.attempt_log == {1: [{"attempt": 1, "kind": expected_kind}]}
        # Only the committed shard directories remain, no .wip leftovers.
        shard_dirs = sorted(p.name for p in (tmp_path / mode / "shards").iterdir())
        assert shard_dirs == ["shard_00", "shard_01", "shard_02"]

    def test_hung_worker_is_killed_and_retried_byte_identically(
        self, fitted_model_and_dataset, scenario, tmp_path, reference
    ):
        model, dataset = fitted_model_and_dataset
        chaos_dir = tmp_path / "chaos_hang"
        chaos_dir.mkdir()
        task = ChaosClassificationTask(chaos_dir, fail_step=5, mode="hang")
        state, paths, executor = _run_campaign(
            tmp_path / "hang", model, dataset, scenario, task,
            workers=2, num_shards=3,
            policy=ExecutionPolicy(retries=2, backoff=0.0, shard_timeout=5.0),
        )
        self._assert_matches_reference(reference, state, paths)
        assert executor.attempt_log == {1: [{"attempt": 1, "kind": KIND_TIMEOUT}]}

    def test_serial_sharded_run_retries_raising_shard(
        self, fitted_model_and_dataset, scenario, tmp_path, reference
    ):
        # workers=1: the in-process execution path shares retry semantics.
        model, dataset = fitted_model_and_dataset
        chaos_dir = tmp_path / "chaos_serial"
        chaos_dir.mkdir()
        task = ChaosClassificationTask(chaos_dir, fail_step=5, mode="raise")
        state, paths, executor = _run_campaign(
            tmp_path / "serial_retry", model, dataset, scenario, task,
            workers=1, num_shards=3, policy=ExecutionPolicy(retries=1, backoff=0.0),
        )
        self._assert_matches_reference(reference, state, paths)
        assert executor.attempt_log == {1: [{"attempt": 1, "kind": KIND_RAISED}]}


# --------------------------------------------------------------------------- #
# crash + resume: only pending shards run, merge is byte-identical
# --------------------------------------------------------------------------- #
class TestCrashResume:
    @pytest.fixture()
    def scenario(self):
        return default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=7, model_name="chaos"
        )

    def _shard_snapshot(self, shard_dir: Path) -> dict[str, tuple[int, bytes]]:
        return {
            p.name: (p.stat().st_mtime_ns, p.read_bytes())
            for p in sorted(shard_dir.iterdir())
        }

    def test_interrupted_campaign_resumes_byte_identically(
        self, fitted_model_and_dataset, scenario, tmp_path
    ):
        model, dataset = fitted_model_and_dataset
        ref_state, ref_paths, _ = _run_campaign(
            tmp_path / "reference", model, dataset, scenario, ClassificationTask(),
            workers=1, num_shards=1,
        )

        # Interrupt: shard 1 (steps [4, 8)) fails with an exhausted budget
        # after shard 0 already committed.
        out = tmp_path / "crash"
        chaos_dir = tmp_path / "chaos"
        chaos_dir.mkdir()
        task = ChaosClassificationTask(chaos_dir, fail_step=5, mode="raise")
        with pytest.raises(ShardError) as err:
            _run_campaign(
                out, model, dataset, scenario, task,
                workers=1, num_shards=3,
                policy=ExecutionPolicy(retries=0, backoff=0.0, in_process_fallback=False),
            )
        assert (err.value.index, err.value.start, err.value.stop) == (1, 4, 8)
        assert err.value.attempts == 1
        assert "chaos: step 5 failed" in err.value.cause

        manifest = RunManifest.load(out / "chaos_manifest.json")
        assert manifest is not None
        assert manifest.completed_indices() == [0]
        assert (out / "shards" / "shard_00").is_dir()
        assert not (out / "shards" / "shard_01").exists()
        before = self._shard_snapshot(out / "shards" / "shard_00")

        # Resume: the same campaign configuration, fresh task object.  The
        # chaos marker is tripped, so pending shards now run clean.
        resumed_task = ChaosClassificationTask(chaos_dir, fail_step=5, mode="raise")
        state, paths, executor = _run_campaign(
            out, model, dataset, scenario, resumed_task,
            workers=1, num_shards=3,
            policy=ExecutionPolicy(retries=0, backoff=0.0, resume=True),
        )
        for tag in STREAM_TAGS:
            assert _file_bytes(ref_paths[tag]) == _file_bytes(paths[tag]), tag
        assert state == ref_state
        # The completed shard was merged from disk, not re-run.
        assert self._shard_snapshot(out / "shards" / "shard_00") == before
        assert executor.attempt_log == {}
        assert RunManifest.load(out / "chaos_manifest.json").completed_indices() == [0, 1, 2]

    def test_resume_reruns_shard_with_corrupt_state(
        self, fitted_model_and_dataset, scenario, tmp_path
    ):
        model, dataset = fitted_model_and_dataset
        out = tmp_path / "run"
        state, paths, _ = _run_campaign(
            out, model, dataset, scenario, ClassificationTask(), workers=1, num_shards=2
        )
        # Corrupt one committed shard's state payload: resume must demote it
        # to pending and re-run it rather than trust unreadable bytes.
        (out / "shards" / "shard_01" / "shard_state.pkl").write_bytes(b"garbage")
        resumed_state, resumed_paths, executor = _run_campaign(
            out, model, dataset, scenario, ClassificationTask(),
            workers=1, num_shards=2, policy=ExecutionPolicy(resume=True),
        )
        assert resumed_state == state
        for tag in STREAM_TAGS:
            assert _file_bytes(paths[tag]) == _file_bytes(resumed_paths[tag]), tag
        assert RunManifest.load(out / "chaos_manifest.json").completed_indices() == [0, 1]

    def test_resume_of_a_finished_campaign_runs_nothing(
        self, fitted_model_and_dataset, scenario, tmp_path
    ):
        model, dataset = fitted_model_and_dataset
        out = tmp_path / "run"
        state, paths, _ = _run_campaign(
            out, model, dataset, scenario, ClassificationTask(), workers=1, num_shards=2
        )
        shard_dirs = sorted((out / "shards").iterdir())
        before = [self._shard_snapshot(d) for d in shard_dirs]

        resumed_state, resumed_paths, _ = _run_campaign(
            out, model, dataset, scenario, ClassificationTask(),
            workers=1, num_shards=2, policy=ExecutionPolicy(resume=True),
        )
        assert resumed_state == state
        for tag in STREAM_TAGS:
            assert _file_bytes(paths[tag]) == _file_bytes(resumed_paths[tag]), tag
        assert [self._shard_snapshot(d) for d in shard_dirs] == before

    def test_resume_refuses_a_different_campaign_configuration(
        self, fitted_model_and_dataset, scenario, tmp_path
    ):
        model, dataset = fitted_model_and_dataset
        out = tmp_path / "run"
        _run_campaign(
            out, model, dataset, scenario, ClassificationTask(), workers=1, num_shards=2
        )
        changed = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=8, model_name="chaos"
        )
        with pytest.raises(ValueError, match="different"):
            _run_campaign(
                out, model, dataset, changed, ClassificationTask(),
                workers=1, num_shards=2, policy=ExecutionPolicy(resume=True),
            )

    def test_resume_requires_a_result_writer(self, fitted_model_and_dataset, scenario):
        model, dataset = fitted_model_and_dataset
        core = CampaignCore(model, dataset, ClassificationTask(), scenario=scenario)
        executor = ShardedCampaignExecutor(
            core, workers=1, num_shards=2, policy=ExecutionPolicy(resume=True)
        )
        with pytest.raises(ValueError, match="writer"):
            executor.run()
