"""Tests for the shared content-digest helpers (`repro.alficore.digests`).

The module is the single implementation behind the run manifest's config
guard, the golden cache's spillover names, the campaign core's weight
fingerprints and the campaign store's run IDs — so its stability guarantees
are load-bearing for skip/resume correctness everywhere.
"""

import hashlib

import numpy as np
import pytest

from repro.alficore.digests import (
    SHORT_DIGEST_LENGTH,
    bytes_digest,
    config_digest,
    key_digest,
    model_fingerprint,
)
from repro.alficore.resilience import manifest_config_digest
from repro.models import lenet5


class TestConfigDigest:
    def test_stable_across_key_order(self):
        assert config_digest({"a": 1, "b": [2, 3]}) == config_digest({"b": [2, 3], "a": 1})

    def test_sensitive_to_values(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_sensitive_to_keys(self):
        assert config_digest({"a": 1}) != config_digest({"b": 1})

    def test_nested_mappings_sorted(self):
        left = config_digest({"outer": {"x": 1, "y": 2}})
        right = config_digest({"outer": {"y": 2, "x": 1}})
        assert left == right

    def test_non_json_leaves_fall_back_to_str(self):
        from pathlib import Path

        assert config_digest({"p": Path("/tmp/x")}) == config_digest({"p": "/tmp/x"})

    def test_full_sha1_length(self):
        assert len(config_digest({})) == 40

    def test_manifest_config_digest_is_the_shared_helper(self):
        config = {"scenario": {"seed": 3}, "bounds": [[0, 4]]}
        assert manifest_config_digest(config) == config_digest(config)


class TestKeyDigest:
    def test_matches_historic_spill_name_derivation(self):
        # The golden-cache spillover files of existing directories must keep
        # resolving: the helper must digest exactly repr(key).
        key = ("golden", "abcd1234", 0, (1, 2, 3), "ffff")
        assert key_digest(key) == hashlib.sha1(repr(key).encode("utf-8")).hexdigest()

    def test_distinct_keys_distinct_digests(self):
        assert key_digest(("a", 1)) != key_digest(("a", 2))


class TestBytesDigest:
    def test_short_form(self):
        digest = bytes_digest(b"payload")
        assert len(digest) == SHORT_DIGEST_LENGTH
        assert digest == hashlib.sha1(b"payload").hexdigest()[:SHORT_DIGEST_LENGTH]

    def test_custom_length(self):
        assert len(bytes_digest(b"payload", length=8)) == 8


class TestModelFingerprint:
    @pytest.fixture(scope="class")
    def model(self):
        return lenet5(num_classes=10, seed=0)

    def test_deterministic_for_equal_weights(self, model):
        other = lenet5(num_classes=10, seed=0)
        assert model_fingerprint(model) == model_fingerprint(other)

    def test_sensitive_to_weights(self, model):
        other = lenet5(num_classes=10, seed=1)
        assert model_fingerprint(model) != model_fingerprint(other)

    def test_sensitive_to_single_element_change(self, model):
        before = model_fingerprint(model)
        param = next(iter(model.named_parameters()))[1]
        original = param.data.ravel()[0]
        param.data.ravel()[0] = original + 1.0
        try:
            assert model_fingerprint(model) != before
        finally:
            param.data.ravel()[0] = original
        assert model_fingerprint(model) == before

    def test_short_form_length(self, model):
        assert len(model_fingerprint(model)) == SHORT_DIGEST_LENGTH

    def test_matches_campaign_core_fingerprint(self, model):
        # CampaignCore._model_fingerprint must be the same digest (golden
        # cache spillover recorded by older runs must keep matching).
        reference = hashlib.sha1()
        for name, param in model.named_parameters():
            reference.update(name.encode("utf-8"))
            reference.update(param.data.tobytes())
        assert model_fingerprint(model) == reference.hexdigest()[:16]

    def test_numpy_array_params_supported(self):
        class Param:
            def __init__(self, values):
                self.data = np.asarray(values, dtype=np.float32)

        class Tiny:
            def named_parameters(self):
                yield "w", Param([1.0, 2.0])

        assert len(model_fingerprint(Tiny())) == SHORT_DIGEST_LENGTH
