"""Tests for the ``pytorchalfi`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_imgclass_defaults(self):
        args = build_parser().parse_args(["run-imgclass"])
        assert args.model == "lenet5"
        assert args.target == "weights"
        assert tuple(args.bit_range) == (23, 30)
        assert args.inj_policy == "per_image"

    def test_run_objdet_defaults(self):
        args = build_parser().parse_args(["run-objdet"])
        assert args.model == "yolov3"
        assert args.num_classes == 5

    def test_batch_size_and_workers_accepted_by_both_subcommands(self):
        for command in ("run-imgclass", "run-objdet"):
            args = build_parser().parse_args([command, "--batch-size", "4", "--workers", "3"])
            assert args.batch_size == 4
            assert args.workers == 3
            defaults = build_parser().parse_args([command])
            assert defaults.batch_size is None
            assert defaults.workers == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-imgclass", "--model", "gpt5"])

    def test_analyze_requires_campaign(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--output-dir", "x"])

    def test_fault_file_is_path_or_none(self):
        from pathlib import Path

        defaults = build_parser().parse_args(["run-imgclass"])
        assert defaults.fault_file is None
        args = build_parser().parse_args(["run-imgclass", "--fault-file", "faults.npz"])
        assert args.fault_file == Path("faults.npz")
        assert isinstance(args.fault_file, Path)
        # An explicit empty value (unset shell variable) means "not given".
        empty = build_parser().parse_args(["run-imgclass", "--fault-file", ""])
        assert empty.fault_file is None

    def test_scenario_file_fault_file_survives_without_cli_override(self, tmp_path):
        from pathlib import Path

        from repro.alficore import default_scenario, save_scenario
        from repro.cli import _scenario_from_args

        scenario_path = tmp_path / "replay.yml"
        save_scenario(default_scenario(fault_file="stored_faults.npz"), scenario_path)
        args = build_parser().parse_args(["run-imgclass", "--scenario", str(scenario_path)])
        assert _scenario_from_args(args).fault_file == Path("stored_faults.npz")
        args = build_parser().parse_args(
            ["run-imgclass", "--scenario", str(scenario_path), "--fault-file", "other.npz"]
        )
        assert _scenario_from_args(args).fault_file == Path("other.npz")


class TestSpecCommands:
    def _write_spec(self, tmp_path, **overrides):
        from repro.experiments import Experiment

        builder = (
            Experiment.builder()
            .name("cli-spec")
            .model("lenet5", num_classes=10, seed=0)
            .dataset("synthetic-classification", num_samples=6, num_classes=10,
                     noise=0.25, seed=1)
            .scenario(injection_target="weights", rnd_bit_range=(23, 30),
                      random_seed=3, model_name="lenet5", dataset_size=6)
        )
        spec = builder.build().copy(**overrides)
        return spec.save(tmp_path / "spec.yml")

    def test_run_spec_end_to_end(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        exit_code = main(["run", str(path), "--output-dir", str(tmp_path / "out")])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "lenet5" in captured
        assert "SDE" in captured
        assert (tmp_path / "out" / "lenet5_corrupted_results.csv").exists()

    def test_run_missing_spec_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.yml")]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_serial_spec_with_workers_fails_cleanly(self, tmp_path, capsys):
        import yaml

        path = self._write_spec(tmp_path)
        data = yaml.safe_load(path.read_text())
        data["backend"] = {"name": "serial", "workers": 2}
        path.write_text(yaml.safe_dump(data))
        assert main(["validate", str(path)]) == 1
        assert "serial" in capsys.readouterr().out
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_spec_with_unknown_model_fails_with_suggestion(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        import yaml

        data = yaml.safe_load(path.read_text())
        data["model"]["name"] = "lenet"
        path.write_text(yaml.safe_dump(data))
        assert main(["run", str(path)]) == 1
        assert "did you mean" in capsys.readouterr().err

    def test_validate_reports_ok_and_failures(self, tmp_path, capsys):
        good = self._write_spec(tmp_path)
        bad = tmp_path / "bad.yml"
        bad.write_text("schema_version: 1\nwarp_drive: true\n")
        assert main(["validate", str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "warp_drive" in out

    def test_checked_in_example_specs_validate(self, capsys):
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parents[1] / "examples" / "specs"
        specs = sorted(str(p) for p in specs_dir.glob("*.yml"))
        assert specs, "no example spec files checked in"
        assert main(["validate", *specs]) == 0

    def test_invalid_spec_is_not_persisted_by_save_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "invalid.yml"
        exit_code = main(
            [
                "run-imgclass", "--model", "lenet5", "--images", "4",
                "--golden-cache", "-1",
                "--output-dir", str(tmp_path / "out"),
                "--save-spec", str(spec_path),
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err
        assert not spec_path.exists()

    def test_null_schema_version_fails_cleanly(self, tmp_path, capsys):
        import yaml

        path = self._write_spec(tmp_path)
        data = yaml.safe_load(path.read_text())
        data["schema_version"] = None
        path.write_text(yaml.safe_dump(data))
        assert main(["validate", str(path)]) == 0  # null means "current"
        capsys.readouterr()
        data["schema_version"] = "latest"
        path.write_text(yaml.safe_dump(data))
        assert main(["validate", str(path)]) == 1
        assert "schema_version" in capsys.readouterr().out

    def test_save_spec_round_trips_through_run(self, tmp_path, capsys):
        spec_path = tmp_path / "saved.yml"
        exit_code = main(
            [
                "run-imgclass", "--model", "lenet5", "--images", "6",
                "--output-dir", str(tmp_path / "first"),
                "--save-spec", str(spec_path),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        assert spec_path.exists()
        exit_code = main(["run", str(spec_path), "--output-dir", str(tmp_path / "second")])
        assert exit_code == 0
        first = (tmp_path / "first" / "lenet5_corrupted_results.csv").read_bytes()
        second = (tmp_path / "second" / "lenet5_corrupted_results.csv").read_bytes()
        assert first == second


class TestExecutorFlag:
    def test_executor_flag_parses_with_registry_choices(self):
        for command in ("run-imgclass", "run-objdet"):
            args = build_parser().parse_args([command])
            assert args.executor == "interpreter"
            args = build_parser().parse_args([command, "--executor", "fused"])
            assert args.executor == "fused"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-imgclass", "--executor", "turbo"])
        # run <spec> defaults to None: the spec's own knob wins unless given.
        assert build_parser().parse_args(["run", "spec.yml"]).executor is None
        assert (
            build_parser().parse_args(["run", "spec.yml", "--executor", "fused"]).executor
            == "fused"
        )

    def _run(self, tmp_path, tag, *extra):
        output_dir = tmp_path / tag
        exit_code = main(
            [
                "run-imgclass", "--model", "lenet5", "--images", "6",
                "--target", "weights", "--output-dir", str(output_dir), *extra,
            ]
        )
        assert exit_code == 0
        return output_dir

    def test_campaign_outputs_byte_identical_across_executors(self, tmp_path, capsys):
        """The executor knob may change speed, never results (serial + sharded)."""
        baseline = self._run(tmp_path, "module", "--executor", "module")
        fused = self._run(tmp_path, "fused", "--executor", "fused")
        sharded = self._run(tmp_path, "fused-sharded", "--executor", "fused", "--workers", "2")
        capsys.readouterr()
        for name in (
            "lenet5_corrupted_results.csv",
            "lenet5_golden_results.csv",
            "lenet5_applied_faults.json",
            "lenet5_faults.npz",
            "lenet5_summary_kpis.json",
        ):
            want = (baseline / name).read_bytes()
            assert (fused / name).read_bytes() == want, f"{name}: fused != module"
            assert (sharded / name).read_bytes() == want, f"{name}: sharded fused != module"


class TestImgClassCommand:
    def test_end_to_end_run_and_analyze(self, tmp_path, capsys):
        output_dir = tmp_path / "campaign"
        exit_code = main(
            [
                "run-imgclass",
                "--model",
                "lenet5",
                "--images",
                "8",
                "--num-faults",
                "1",
                "--target",
                "weights",
                "--bit-range",
                "23",
                "30",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "lenet5" in captured
        assert "SDE" in captured
        assert (output_dir / "lenet5_scenario.yml").exists()
        assert (output_dir / "lenet5_corrupted_results.csv").exists()

        json_out = tmp_path / "analysis.json"
        exit_code = main(
            [
                "analyze",
                "--output-dir",
                str(output_dir),
                "--campaign",
                "lenet5",
                "--kind",
                "imgclass",
                "--json-out",
                str(json_out),
            ]
        )
        assert exit_code == 0
        analysis = json.loads(json_out.read_text())
        assert analysis["num_inferences"] == 8
        assert 0.0 <= analysis["sde_rate"] <= 1.0

    def test_batch_size_reaches_the_scenario(self, tmp_path, capsys):
        output_dir = tmp_path / "batched"
        exit_code = main(
            [
                "run-imgclass",
                "--model",
                "lenet5",
                "--images",
                "8",
                "--inj-policy",
                "per_batch",
                "--batch-size",
                "4",
                "--workers",
                "2",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        import yaml

        meta = yaml.safe_load((output_dir / "lenet5_scenario.yml").read_text())
        assert meta["scenario"]["batch_size"] == 4
        assert meta["scenario"]["inj_policy"] == "per_batch"

    def test_run_with_protection(self, tmp_path, capsys):
        exit_code = main(
            [
                "run-imgclass",
                "--model",
                "mlp",
                "--images",
                "6",
                "--protection",
                "ranger",
                "--output-dir",
                str(tmp_path / "protected"),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "resil (ranger)" in captured


class TestObjDetCommand:
    def test_end_to_end_run(self, tmp_path, capsys):
        output_dir = tmp_path / "det"
        exit_code = main(
            [
                "run-objdet",
                "--model",
                "yolov3",
                "--images",
                "4",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "IVMOD_SDE" in captured
        assert (output_dir / "yolov3_ground_truth.json").exists()

        exit_code = main(
            [
                "analyze",
                "--output-dir",
                str(output_dir),
                "--campaign",
                "yolov3",
                "--kind",
                "objdet",
            ]
        )
        assert exit_code == 0


class TestSweepCommand:
    def _write_sweep_spec(self, tmp_path, store=None):
        from repro.experiments import Experiment

        builder = (
            Experiment.builder()
            .name("cli-sweep")
            .model("lenet5", num_classes=10, seed=0)
            .dataset("synthetic-classification", num_samples=6, num_classes=10,
                     noise=0.25, seed=1)
            .scenario(injection_target="weights", rnd_bit_range=(23, 30),
                      random_seed=3, model_name="lenet5", dataset_size=6)
            .sweep(axes={"scenario.layer_range": [[0, 0], [1, 1]]}, store=store)
        )
        return builder.build().save(tmp_path / "sweep.yml")

    def test_dry_run_lists_points_without_executing(self, tmp_path, capsys):
        path = self._write_sweep_spec(tmp_path, store=tmp_path / "store")
        assert main(["sweep", str(path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert out.count("pending") == 2
        assert not (tmp_path / "store").exists()  # dry run touches nothing

    def test_end_to_end_skip_on_second_invocation(self, tmp_path, capsys):
        path = self._write_sweep_spec(tmp_path, store=tmp_path / "store")
        assert main(["sweep", str(path)]) == 0
        out = capsys.readouterr().out
        assert "executed=2" in out and "cached=0" in out
        assert (tmp_path / "store" / "cli-sweep_sweep_table.csv").exists()

        assert main(["sweep", str(path)]) == 0
        out = capsys.readouterr().out
        assert "executed=0" in out and "cached=2" in out

    def test_store_flag_overrides_spec(self, tmp_path, capsys):
        path = self._write_sweep_spec(tmp_path, store=tmp_path / "declared")
        assert main(["sweep", str(path), "--store", str(tmp_path / "flag")]) == 0
        capsys.readouterr()
        assert (tmp_path / "flag").is_dir()
        assert not (tmp_path / "declared").exists()

    def test_sweep_without_section_fails_cleanly(self, tmp_path):
        from repro.experiments import Experiment

        spec = (
            Experiment.builder()
            .name("plain")
            .scenario(model_name="lenet5")
            .build()
        )
        path = spec.save(tmp_path / "plain.yml")
        with pytest.raises(SystemExit, match="no sweep: section"):
            main(["sweep", str(path)])

    def test_sweep_without_store_fails_cleanly(self, tmp_path):
        path = self._write_sweep_spec(tmp_path, store=None)
        with pytest.raises(SystemExit, match="no campaign store"):
            main(["sweep", str(path)])

    def test_run_redirects_sweep_specs(self, tmp_path, capsys):
        path = self._write_sweep_spec(tmp_path, store=tmp_path / "store")
        assert main(["run", str(path)]) == 1
        assert "pytorchalfi sweep" in capsys.readouterr().err
