"""Tests for the ``pytorchalfi`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_imgclass_defaults(self):
        args = build_parser().parse_args(["run-imgclass"])
        assert args.model == "lenet5"
        assert args.target == "weights"
        assert tuple(args.bit_range) == (23, 30)
        assert args.inj_policy == "per_image"

    def test_run_objdet_defaults(self):
        args = build_parser().parse_args(["run-objdet"])
        assert args.model == "yolov3"
        assert args.num_classes == 5

    def test_batch_size_and_workers_accepted_by_both_subcommands(self):
        for command in ("run-imgclass", "run-objdet"):
            args = build_parser().parse_args([command, "--batch-size", "4", "--workers", "3"])
            assert args.batch_size == 4
            assert args.workers == 3
            defaults = build_parser().parse_args([command])
            assert defaults.batch_size is None
            assert defaults.workers == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-imgclass", "--model", "gpt5"])

    def test_analyze_requires_campaign(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--output-dir", "x"])


class TestImgClassCommand:
    def test_end_to_end_run_and_analyze(self, tmp_path, capsys):
        output_dir = tmp_path / "campaign"
        exit_code = main(
            [
                "run-imgclass",
                "--model",
                "lenet5",
                "--images",
                "8",
                "--num-faults",
                "1",
                "--target",
                "weights",
                "--bit-range",
                "23",
                "30",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "lenet5" in captured
        assert "SDE" in captured
        assert (output_dir / "lenet5_scenario.yml").exists()
        assert (output_dir / "lenet5_corrupted_results.csv").exists()

        json_out = tmp_path / "analysis.json"
        exit_code = main(
            [
                "analyze",
                "--output-dir",
                str(output_dir),
                "--campaign",
                "lenet5",
                "--kind",
                "imgclass",
                "--json-out",
                str(json_out),
            ]
        )
        assert exit_code == 0
        analysis = json.loads(json_out.read_text())
        assert analysis["num_inferences"] == 8
        assert 0.0 <= analysis["sde_rate"] <= 1.0

    def test_batch_size_reaches_the_scenario(self, tmp_path, capsys):
        output_dir = tmp_path / "batched"
        exit_code = main(
            [
                "run-imgclass",
                "--model",
                "lenet5",
                "--images",
                "8",
                "--inj-policy",
                "per_batch",
                "--batch-size",
                "4",
                "--workers",
                "2",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        import yaml

        meta = yaml.safe_load((output_dir / "lenet5_scenario.yml").read_text())
        assert meta["scenario"]["batch_size"] == 4
        assert meta["scenario"]["inj_policy"] == "per_batch"

    def test_run_with_protection(self, tmp_path, capsys):
        exit_code = main(
            [
                "run-imgclass",
                "--model",
                "mlp",
                "--images",
                "6",
                "--protection",
                "ranger",
                "--output-dir",
                str(tmp_path / "protected"),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "resil (ranger)" in captured


class TestObjDetCommand:
    def test_end_to_end_run(self, tmp_path, capsys):
        output_dir = tmp_path / "det"
        exit_code = main(
            [
                "run-objdet",
                "--model",
                "yolov3",
                "--images",
                "4",
                "--output-dir",
                str(output_dir),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "IVMOD_SDE" in captured
        assert (output_dir / "yolov3_ground_truth.json").exists()

        exit_code = main(
            [
                "analyze",
                "--output-dir",
                str(output_dir),
                "--campaign",
                "yolov3",
                "--kind",
                "objdet",
            ]
        )
        assert exit_code == 0
