"""Segment IR: lowering, kernels, hook blocking, the executor registry."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ForwardPlan, functional as F, ir
from repro.nn.ir import (
    ALIAS_KINDS,
    ELEMENTWISE_KINDS,
    InterpreterExecutor,
    ModuleExecutor,
    executor_names,
    lower_segment,
    make_executor,
    module_blocked,
    register_executor,
)


def _image(batch=2, channels=4, size=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, channels, size, size)).astype(np.float32)


class TestLowering:
    def test_conv2d_lowers_to_conv_plus_bias(self):
        conv = nn.Conv2d(4, 6, 3, padding=1, rng=np.random.default_rng(0))
        ops = lower_segment(conv, "conv")
        assert [op.kind for op in ops] == ["conv2d", "bias_add"]
        assert all(op.module is conv for op in ops)

    def test_biasless_conv2d_lowers_to_single_op(self):
        conv = nn.Conv2d(4, 6, 3, bias=False, rng=np.random.default_rng(0))
        assert [op.kind for op in lower_segment(conv, "conv")] == ["conv2d"]

    def test_linear_lowers_to_matmul_plus_bias(self):
        linear = nn.Linear(8, 3, rng=np.random.default_rng(0))
        assert [op.kind for op in lower_segment(linear, "fc")] == ["matmul", "bias_add"]

    def test_single_op_layers_lower_to_their_kind(self):
        cases = [
            (nn.ReLU(), "relu"),
            (nn.LeakyReLU(), "leaky_relu"),
            (nn.Sigmoid(), "sigmoid"),
            (nn.Tanh(), "tanh"),
            (nn.BatchNorm2d(4), "batchnorm2d"),
            (nn.Softmax(), "softmax"),
            (nn.MaxPool2d(2), "max_pool2d"),
            (nn.AvgPool2d(2), "avg_pool2d"),
            (nn.AdaptiveAvgPool2d(1), "adaptive_avg_pool2d"),
            (nn.Flatten(), "flatten"),
            (nn.Dropout(0.5), "dropout"),
            (nn.Identity(), "identity"),
        ]
        for module, kind in cases:
            ops = lower_segment(module, "m")
            assert [op.kind for op in ops] == [kind], kind

    def test_unknown_and_subclassed_modules_stay_opaque(self):
        class FancyReLU(nn.ReLU):
            def forward(self, x):
                return super().forward(x) + 1.0

        assert lower_segment(FancyReLU(), "m") is None
        assert lower_segment(nn.Sequential(nn.ReLU()), "m") is None

    def test_kind_sets_are_disjoint(self):
        assert not (ELEMENTWISE_KINDS & ALIAS_KINDS)


class TestKernels:
    """Split conv/linear kernels must be bit-identical to the module forward."""

    def test_conv2d_split_bias_matches_module(self):
        conv = nn.Conv2d(4, 6, 3, stride=2, padding=1, rng=np.random.default_rng(1))
        x = _image(seed=2)
        value = x
        for op in lower_segment(conv, "conv"):
            value = op.run(value)
        assert value.tobytes() == conv(x).tobytes()

    def test_grouped_conv2d_matches_module(self):
        conv = nn.Conv2d(4, 4, 3, padding=1, groups=4, rng=np.random.default_rng(3))
        x = _image(seed=4)
        value = x
        for op in lower_segment(conv, "dw"):
            value = op.run(value)
        assert value.tobytes() == conv(x).tobytes()

    def test_linear_split_bias_matches_module(self):
        linear = nn.Linear(16, 5, rng=np.random.default_rng(5))
        x = np.random.default_rng(6).normal(size=(3, 16)).astype(np.float32)
        value = x
        for op in lower_segment(linear, "fc"):
            value = op.run(value)
        assert value.tobytes() == linear(x).tobytes()

    def test_single_op_kernels_match_module_forward(self):
        x = _image(seed=7)
        for module in (nn.ReLU(), nn.Tanh(), nn.BatchNorm2d(4), nn.MaxPool2d(2)):
            (op,) = lower_segment(module, "m")
            assert op.run(x).tobytes() == module(x).tobytes()

    def test_kernels_read_weights_live(self):
        # Campaigns corrupt weights in place between trace and execution;
        # the lowered kernel must observe the current bits, not a snapshot.
        conv = nn.Conv2d(4, 6, 3, rng=np.random.default_rng(8))
        ops = lower_segment(conv, "conv")
        x = _image(seed=9)
        before = ops[0].run(x).tobytes()
        conv.weight.data[0, 0, 0, 0] *= -3.0
        after = ops[0].run(x).tobytes()
        assert before != after
        restored = conv(x)
        value = x
        for op in ops:
            value = op.run(value)
        assert value.tobytes() == restored.tobytes()


class TestModuleBlocked:
    def test_plain_module_is_unblocked(self):
        assert not module_blocked(nn.ReLU())

    def test_pre_hook_blocks(self):
        relu = nn.ReLU()
        relu.register_forward_pre_hook(lambda m, args: None)
        assert module_blocked(relu)

    def test_forward_hook_blocks_by_default(self):
        relu = nn.ReLU()
        relu.register_forward_hook(lambda m, args, out: None)
        assert module_blocked(relu)

    def test_transparent_forward_hook_does_not_block(self):
        relu = nn.ReLU()

        def hook(module, args, out):
            return None

        hook.plan_transparent = lambda: True
        relu.register_forward_hook(hook)
        assert not module_blocked(relu)
        hook.plan_transparent = lambda: False
        assert module_blocked(relu)

    def test_disabled_monitor_hooks_are_transparent(self):
        from repro.alficore.monitoring import InferenceMonitor

        model = nn.Sequential(nn.Conv2d(3, 4, 3, rng=np.random.default_rng(0)), nn.ReLU()).eval()
        monitor = InferenceMonitor(model)
        monitor.attach()
        hooked = [m for m in model.modules() if m._forward_hooks]
        assert hooked, "monitor attached no hooks"
        monitor.enabled = False
        assert not any(module_blocked(m) for m in hooked)
        monitor.enabled = True
        assert all(module_blocked(m) for m in hooked)


class TestExecutorRegistry:
    def test_builtin_executors_registered(self):
        assert {"module", "interpreter", "fused"} <= set(executor_names())

    def test_make_executor_binds_plan(self):
        model = nn.Sequential(nn.Linear(8, 8, rng=np.random.default_rng(0)), nn.ReLU()).eval()
        x = np.random.default_rng(1).normal(size=(2, 8)).astype(np.float32)
        plan = ForwardPlan.trace(model, x)
        assert isinstance(make_executor("module", plan), ModuleExecutor)
        assert isinstance(make_executor("interpreter", plan), InterpreterExecutor)

    def test_unknown_executor_raises(self):
        with pytest.raises(KeyError, match="unknown executor"):
            make_executor("nope", None)

    def test_duplicate_registration_rejected_without_override(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("interpreter", InterpreterExecutor)
        register_executor("interpreter", InterpreterExecutor, override=True)
        assert "interpreter" in executor_names()

    def test_custom_executor_usable_from_trace(self):
        class Doubling(ModuleExecutor):
            name = "doubling"

            def run_segment(self, index, value):
                return super().run_segment(index, value)

        register_executor("test-doubling", Doubling, override=True)
        try:
            model = nn.Sequential(
                nn.Linear(4, 4, rng=np.random.default_rng(2)), nn.ReLU()
            ).eval()
            x = np.random.default_rng(3).normal(size=(2, 4)).astype(np.float32)
            plan = ForwardPlan.trace(model, x, executor="test-doubling")
            assert plan.executor_name == "test-doubling"
            np.testing.assert_array_equal(plan.resume(0, x), model(x))
        finally:
            ir._EXECUTORS.pop("test-doubling", None)


class TestInterpreterExecutor:
    def test_interpreter_matches_module_path_bitwise(self):
        from repro.models import lenet5

        model = lenet5(num_classes=10, seed=0).eval()
        x = _image(channels=3, size=32, seed=10)
        module_plan = ForwardPlan.trace(model, x)
        interp_plan = ForwardPlan.trace(model, x, executor="interpreter")
        assert interp_plan.executor_name == "interpreter"
        assert interp_plan.resume(0, x).tobytes() == module_plan.resume(0, x).tobytes()
        for k in range(len(module_plan.segments)):
            a_k = module_plan.run_prefix(x, k)
            assert interp_plan.resume(k, a_k).tobytes() == module_plan.resume(k, a_k).tobytes()

    def test_alloc_bytes_counts_per_op_outputs(self):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Flatten(),
        ).eval()
        x = _image(channels=3, seed=11)
        plan = ForwardPlan.trace(model, x, executor="interpreter")
        executor = plan._executor
        executor.reset_stats()
        out = plan.resume(0, x)
        conv_out_bytes = 4 * 4 * x.shape[0] * x.shape[2] * x.shape[3]
        # conv2d + bias_add + relu each allocate one conv-shaped output;
        # flatten is an alias op and must not be counted.
        assert executor.alloc_bytes == 3 * conv_out_bytes
        assert out.nbytes == conv_out_bytes

    def test_blocked_segment_falls_back_to_module_call(self):
        model = nn.Sequential(
            nn.Linear(8, 8, rng=np.random.default_rng(4)), nn.ReLU()
        ).eval()
        x = np.random.default_rng(5).normal(size=(2, 8)).astype(np.float32)
        plan = ForwardPlan.trace(model, x, executor="interpreter")
        seen = []
        relu = model._modules["1"]
        hook = lambda m, args, out: seen.append(out.copy())  # noqa: E731
        handle = relu.register_forward_hook(hook)
        try:
            out = plan.resume(0, x)
        finally:
            handle.remove()
        assert len(seen) == 1
        np.testing.assert_array_equal(seen[0], out)
        assert out.tobytes() == model(x).tobytes()

    def test_functional_reductions_are_layout_canonical(self):
        # The bit-exactness contract across executors relies on reductions
        # giving the same bits for C-contiguous and strided inputs of equal
        # values (docs/ir.md); guard the canonicalisation in functional.py.
        rng = np.random.default_rng(12)
        base = rng.normal(size=(2, 6, 8, 8)).astype(np.float32)
        strided = np.asfortranarray(base)
        assert not strided.flags["C_CONTIGUOUS"]
        assert F.softmax(base, axis=1).tobytes() == F.softmax(strided, axis=1).tobytes()
        assert (
            F.adaptive_avg_pool2d(base, 1).tobytes()
            == F.adaptive_avg_pool2d(strided, 1).tobytes()
        )
        assert (
            F.max_pool2d(base, 2, 2, 0).tobytes() == F.max_pool2d(strided, 2, 2, 0).tobytes()
        )
