"""Unit tests for the detection substrate: boxes, anchors and detectors."""

import numpy as np
import pytest

from repro.models.detection import (
    Detection,
    box_iou,
    build_detector,
    clip_boxes,
    faster_rcnn_lite,
    generate_anchor_grid,
    nms,
    retinanet_lite,
    xywh_to_xyxy,
    xyxy_to_xywh,
    yolov3_tiny,
)
from repro.models.detection.anchors import decode_offsets


class TestBoxConversions:
    def test_xywh_round_trip(self):
        boxes = np.array([[10.0, 20.0, 30.0, 40.0], [0.0, 0.0, 5.0, 5.0]])
        np.testing.assert_allclose(xyxy_to_xywh(xywh_to_xyxy(boxes)), boxes)

    def test_xywh_to_xyxy_values(self):
        out = xywh_to_xyxy(np.array([[10.0, 20.0, 5.0, 8.0]]))
        np.testing.assert_allclose(out, [[10.0, 20.0, 15.0, 28.0]])

    def test_clip_boxes(self):
        boxes = np.array([[-5.0, -5.0, 100.0, 100.0]])
        clipped = clip_boxes(boxes, (64, 48))
        np.testing.assert_allclose(clipped, [[0.0, 0.0, 48.0, 64.0]])


class TestIoU:
    def test_identical_boxes(self):
        box = np.array([[0.0, 0.0, 10.0, 10.0]])
        np.testing.assert_allclose(box_iou(box, box), [[1.0]])

    def test_disjoint_boxes(self):
        a = np.array([[0.0, 0.0, 10.0, 10.0]])
        b = np.array([[20.0, 20.0, 30.0, 30.0]])
        np.testing.assert_allclose(box_iou(a, b), [[0.0]])

    def test_half_overlap(self):
        a = np.array([[0.0, 0.0, 10.0, 10.0]])
        b = np.array([[5.0, 0.0, 15.0, 10.0]])
        np.testing.assert_allclose(box_iou(a, b), [[50.0 / 150.0]])

    def test_matrix_shape(self):
        a = np.zeros((3, 4))
        b = np.zeros((5, 4))
        assert box_iou(a, b).shape == (3, 5)

    def test_empty_inputs(self):
        assert box_iou(np.zeros((0, 4)), np.zeros((2, 4))).shape == (0, 2)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = np.sort(rng.uniform(0, 50, size=(4, 4)), axis=1)
        b = np.sort(rng.uniform(0, 50, size=(6, 4)), axis=1)
        np.testing.assert_allclose(box_iou(a, b), box_iou(b, a).T, rtol=1e-6)


class TestNms:
    def test_keeps_highest_scoring_of_overlapping_pair(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [30, 30, 40, 40]], dtype=np.float32)
        scores = np.array([0.6, 0.9, 0.5])
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [1, 2]

    def test_no_suppression_below_threshold(self):
        boxes = np.array([[0, 0, 10, 10], [20, 20, 30, 30]], dtype=np.float32)
        keep = nms(boxes, np.array([0.5, 0.6]), iou_threshold=0.5)
        assert set(keep.tolist()) == {0, 1}

    def test_empty_input(self):
        assert len(nms(np.zeros((0, 4)), np.zeros((0,)))) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            nms(np.zeros((2, 4)), np.zeros((3,)))

    def test_result_sorted_by_score(self):
        boxes = np.array([[0, 0, 5, 5], [20, 20, 25, 25], [40, 40, 45, 45]], dtype=np.float32)
        scores = np.array([0.1, 0.9, 0.5])
        keep = nms(boxes, scores, 0.5)
        assert list(keep) == [1, 2, 0]


class TestAnchors:
    def test_anchor_count(self):
        anchors = generate_anchor_grid((4, 4), (64, 64), (16.0,), (1.0,))
        assert anchors.shape == (16, 4)

    def test_anchor_count_with_sizes_and_ratios(self):
        anchors = generate_anchor_grid((2, 3), (64, 64), (8.0, 16.0), (0.5, 1.0, 2.0))
        assert anchors.shape == (2 * 3 * 6, 4)

    def test_anchor_centres_inside_image(self):
        anchors = generate_anchor_grid((8, 8), (64, 64), (16.0,))
        centres_x = (anchors[:, 0] + anchors[:, 2]) / 2
        centres_y = (anchors[:, 1] + anchors[:, 3]) / 2
        assert centres_x.min() >= 0 and centres_x.max() <= 64
        assert centres_y.min() >= 0 and centres_y.max() <= 64

    def test_anchor_sizes_respected(self):
        anchors = generate_anchor_grid((1, 1), (64, 64), (16.0,), (1.0,))
        widths = anchors[:, 2] - anchors[:, 0]
        np.testing.assert_allclose(widths, 16.0)

    def test_invalid_feature_size(self):
        with pytest.raises(ValueError):
            generate_anchor_grid((0, 4), (64, 64))

    def test_decode_zero_offsets_returns_anchors(self):
        anchors = generate_anchor_grid((2, 2), (32, 32), (8.0,))
        decoded = decode_offsets(anchors, np.zeros_like(anchors))
        np.testing.assert_allclose(decoded, anchors, atol=1e-5)

    def test_decode_shift(self):
        anchors = np.array([[0.0, 0.0, 10.0, 10.0]])
        offsets = np.array([[0.5, 0.0, 0.0, 0.0]])
        decoded = decode_offsets(anchors, offsets)
        np.testing.assert_allclose(decoded, [[5.0, 0.0, 15.0, 10.0]], atol=1e-5)

    def test_decode_clamps_extreme_scale(self):
        anchors = np.array([[0.0, 0.0, 10.0, 10.0]])
        offsets = np.array([[0.0, 0.0, 100.0, 100.0]])
        decoded = decode_offsets(anchors, offsets)
        assert np.isfinite(decoded).all()


class TestDetection:
    def test_empty_detection(self):
        detection = Detection()
        assert len(detection) == 0
        assert not detection.has_nan_or_inf()

    def test_as_dict(self):
        detection = Detection(
            boxes=np.array([[0.0, 0.0, 5.0, 5.0]]),
            scores=np.array([0.8]),
            labels=np.array([2]),
        )
        data = detection.as_dict()
        assert data["labels"] == [2]
        assert len(data["boxes"][0]) == 4

    def test_nan_detection_flag(self):
        detection = Detection(
            boxes=np.array([[0.0, 0.0, np.nan, 5.0]]),
            scores=np.array([0.8]),
            labels=np.array([1]),
        )
        assert detection.has_nan_or_inf()

    def test_nan_and_inf_attributed_separately(self):
        nan_only = Detection(
            boxes=np.array([[0.0, 0.0, np.nan, 5.0]]),
            scores=np.array([0.8]),
            labels=np.array([1]),
        )
        assert nan_only.has_nan() and not nan_only.has_inf()
        inf_only = Detection(
            boxes=np.array([[0.0, 0.0, 4.0, 5.0]]),
            scores=np.array([np.inf]),
            labels=np.array([1]),
        )
        assert inf_only.has_inf() and not inf_only.has_nan()
        clean = Detection(
            boxes=np.array([[0.0, 0.0, 4.0, 5.0]]),
            scores=np.array([0.8]),
            labels=np.array([1]),
        )
        assert not clean.has_nan() and not clean.has_inf()


class TestDetectors:
    @pytest.mark.parametrize("factory", [yolov3_tiny, retinanet_lite, faster_rcnn_lite])
    def test_forward_returns_per_image_detections(self, factory):
        model = factory(num_classes=5, seed=0).eval()
        images = np.random.default_rng(0).normal(size=(2, 3, 64, 64)).astype(np.float32)
        detections = model(images)
        assert len(detections) == 2
        for detection in detections:
            assert isinstance(detection, Detection)
            boxes = np.asarray(detection.boxes).reshape(-1, 4)
            if len(boxes):
                assert boxes[:, 0].min() >= 0
                assert boxes[:, 2].max() <= 64

    def test_detectors_are_deterministic(self):
        images = np.random.default_rng(1).normal(size=(1, 3, 64, 64)).astype(np.float32)
        a = yolov3_tiny(seed=3).eval()(images)[0]
        b = yolov3_tiny(seed=3).eval()(images)[0]
        np.testing.assert_allclose(a.boxes, b.boxes)
        np.testing.assert_allclose(a.scores, b.scores)

    def test_build_detector_registry(self):
        model = build_detector("retinanet", num_classes=3)
        assert model.num_classes == 3

    def test_build_detector_unknown(self):
        with pytest.raises(KeyError):
            build_detector("detr")

    def test_detectors_contain_injectable_conv_layers(self):
        from repro import nn

        for factory in (yolov3_tiny, retinanet_lite, faster_rcnn_lite):
            model = factory()
            convs = [m for _, m in model.named_modules() if isinstance(m, nn.Conv2d)]
            assert len(convs) >= 4
