"""End-to-end tests of the unified Experiment API.

The acceptance bar of the redesign: a spec serialized to YAML, reloaded and
re-run produces byte-identical campaign outputs (serial and ``workers>1``
sharded) to the facades, the facades are deprecation shims over the same
code path, and :class:`CampaignResult` merges ``step_range`` slices into a
result identical to an unsliced run.
"""

from pathlib import Path

import pytest

from repro.alficore import TestErrorModels_ImgClass, TestErrorModels_ObjDet
from repro.alficore._deprecation import reset_warnings
from repro.alficore.campaign import CampaignRunner
from repro.alficore.scenario import default_scenario
from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.experiments import (
    Artifacts,
    BackendSpec,
    CampaignResult,
    ComponentSpec,
    Experiment,
    ExperimentSpec,
    run,
)
from repro.models import build_model
from repro.models.detection import build_detector
from repro.models.pretrained import fit_classifier_head

IMAGES = 9
CLASSES = 10


def classification_scenario(**overrides):
    base = dict(
        injection_target="weights",
        rnd_value_type="bitflip",
        rnd_bit_range=(23, 30),
        random_seed=1234,
        model_name="lenet5",
        dataset_size=IMAGES,
    )
    base.update(overrides)
    return default_scenario(**base)


def classification_spec(output_dir, **backend_kwargs) -> ExperimentSpec:
    builder = (
        Experiment.builder()
        .name("lenet5")
        .model("lenet5", num_classes=CLASSES, seed=0)
        .dataset("synthetic-classification", num_samples=IMAGES, num_classes=CLASSES,
                 noise=0.25, seed=1)
        .scenario(classification_scenario())
        .output_dir(output_dir)
    )
    if backend_kwargs:
        builder.backend(**backend_kwargs)
    return builder.build()


def build_fitted_classifier(dataset):
    model = build_model("lenet5", num_classes=CLASSES, seed=0)
    return fit_classifier_head(model, dataset, CLASSES)


def assert_files_identical(first: dict, second: dict, tags=None):
    tags = tags if tags is not None else sorted(set(first) & set(second))
    assert tags, "no common output files to compare"
    for tag in tags:
        a, b = Path(first[tag]).read_bytes(), Path(second[tag]).read_bytes()
        assert a == b, f"output file {tag!r} differs"


class TestSpecVsFacadeByteIdentity:
    @pytest.mark.parametrize("backend_kwargs", [
        {"name": "serial", "workers": 1},
        {"name": "sharded", "workers": 2, "num_shards": 3},
    ], ids=["serial", "sharded"])
    def test_classification(self, tmp_path, backend_kwargs):
        dataset = SyntheticClassificationDataset(
            num_samples=IMAGES, num_classes=CLASSES, noise=0.25, seed=1
        )
        facade = TestErrorModels_ImgClass(
            model=build_fitted_classifier(dataset),
            model_name="lenet5",
            dataset=dataset,
            scenario=classification_scenario(),
            output_dir=tmp_path / "facade",
            workers=backend_kwargs.get("workers", 1),
            num_shards=backend_kwargs.get("num_shards"),
        )
        facade_out = facade.test_rand_ImgClass_SBFs_inj(num_faults=1)

        spec = classification_spec(tmp_path / "spec", **backend_kwargs)
        result = run(spec)

        assert_files_identical(facade_out.output_files, result.output_files)
        assert facade_out.corrupted.as_dict() == result.summary["corrupted"]

    def test_classification_yaml_reload_rerun(self, tmp_path):
        spec = classification_spec(tmp_path / "direct")
        direct = run(spec)

        reloaded = ExperimentSpec.load(spec.save(tmp_path / "spec.yml"))
        reloaded.output_dir = tmp_path / "reloaded"
        again = run(reloaded)

        assert_files_identical(direct.output_files, again.output_files)
        assert direct.summary == {**again.summary, "output_files": direct.summary["output_files"]}

    @pytest.mark.parametrize("backend_kwargs", [
        {"name": "serial", "workers": 1},
        {"name": "sharded", "workers": 2, "num_shards": 2},
    ], ids=["serial", "sharded"])
    def test_detection(self, tmp_path, backend_kwargs):
        dataset = CocoLikeDetectionDataset(num_samples=6, num_classes=5, seed=9)
        facade = TestErrorModels_ObjDet(
            model=build_detector("yolov3", num_classes=5, seed=1).eval(),
            model_name="yolov3",
            dataset=dataset,
            scenario=default_scenario(
                injection_target="weights", rnd_bit_range=(23, 30), random_seed=77,
                model_name="yolov3", dataset_size=6,
            ),
            output_dir=tmp_path / "facade",
            workers=backend_kwargs.get("workers", 1),
            num_shards=backend_kwargs.get("num_shards"),
        )
        facade_out = facade.test_rand_ObjDet_SBFs_inj(num_faults=1)

        spec = (
            Experiment.builder()
            .name("yolov3")
            .task("detection")
            .model("yolov3", num_classes=5, seed=1)
            .dataset("synthetic-coco", num_samples=6, num_classes=5, seed=9)
            .scenario(
                injection_target="weights", rnd_bit_range=(23, 30), random_seed=77,
                model_name="yolov3", dataset_size=6,
            )
            .backend(**backend_kwargs)
            .output_dir(tmp_path / "spec")
            .build()
        )
        result = run(spec)

        assert_files_identical(facade_out.output_files, result.output_files)
        assert facade_out.corrupted.as_dict() == result.summary["corrupted"]

    def test_campaign_runner_streams_match_spec_run(self, tmp_path):
        from repro.alficore.results import CampaignResultWriter

        dataset = SyntheticClassificationDataset(
            num_samples=IMAGES, num_classes=CLASSES, noise=0.25, seed=1
        )
        runner = CampaignRunner(
            build_fitted_classifier(dataset),
            dataset,
            scenario=classification_scenario(),
            writer=CampaignResultWriter(tmp_path / "runner", campaign_name="lenet5"),
        )
        summary = runner.run()

        result = run(classification_spec(tmp_path / "spec"))
        assert_files_identical(
            summary.output_files, result.output_files,
            tags=["golden_csv", "corrupted_csv", "applied_faults", "faults", "meta"],
        )
        assert summary.sde_rate == result.summary["corrupted"]["sde_rate"]
        assert summary.num_inferences == result.summary["corrupted"]["num_inferences"]


class TestFacadeFaultFileReplay:
    def test_scenario_declared_fault_file_survives_default_argument(self, tmp_path):
        """A fault_file in the facade's base scenario keeps replaying."""
        from repro.alficore import load_fault_file, ptfiwrap

        dataset = SyntheticClassificationDataset(
            num_samples=IMAGES, num_classes=CLASSES, noise=0.25, seed=1
        )
        model = build_fitted_classifier(dataset)
        stored = tmp_path / "stored_faults.npz"
        ptfiwrap(model, scenario=classification_scenario()).save_fault_matrix(stored)

        facade = TestErrorModels_ImgClass(
            model=model,
            model_name="lenet5",
            dataset=dataset,
            scenario=classification_scenario(random_seed=999, fault_file=stored),
        )
        facade.test_rand_ImgClass_SBFs_inj()  # no fault_file argument
        assert facade.wrapper.get_fault_matrix() == load_fault_file(stored)


class TestFacadeEmptyModelName:
    def test_campaign_runner_accepts_empty_model_name(self, tmp_path):
        from repro.alficore.results import CampaignResultWriter

        dataset = SyntheticClassificationDataset(num_samples=4, num_classes=CLASSES, seed=1)
        runner = CampaignRunner(
            build_fitted_classifier(dataset),
            dataset,
            scenario=classification_scenario(model_name=""),
            writer=CampaignResultWriter(tmp_path, campaign_name=""),
        )
        summary = runner.run()  # pre-redesign behavior: runs, files "_*"
        assert summary.num_inferences == 4
        assert (tmp_path / "_corrupted_results.csv").exists()


class TestFacadeDeprecation:
    def test_each_shim_warns_exactly_once(self, tmp_path):
        dataset = SyntheticClassificationDataset(num_samples=4, num_classes=CLASSES, seed=1)
        model = build_fitted_classifier(dataset)
        det_dataset = CocoLikeDetectionDataset(num_samples=2, num_classes=5, seed=9)
        detector = build_detector("yolov3", num_classes=5, seed=1).eval()

        reset_warnings()
        with pytest.warns(DeprecationWarning, match="TestErrorModels_ImgClass"):
            TestErrorModels_ImgClass(model=model, dataset=dataset)
        with pytest.warns(DeprecationWarning, match="TestErrorModels_ObjDet"):
            TestErrorModels_ObjDet(model=detector, dataset=det_dataset)
        with pytest.warns(DeprecationWarning, match="CampaignRunner"):
            CampaignRunner(model, dataset)

        # Second construction is silent: a single warning per facade.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            TestErrorModels_ImgClass(model=model, dataset=dataset)
            TestErrorModels_ObjDet(model=detector, dataset=det_dataset)
            CampaignRunner(model, dataset)
        reset_warnings()


class TestCampaignResultHandle:
    def test_lazy_record_iterators(self, tmp_path):
        result = run(classification_spec(tmp_path / "records"))
        golden_rows = list(result.iter_records("golden_csv"))
        assert len(golden_rows) == IMAGES
        assert golden_rows[0]["model_tag"] == "golden"
        applied = list(result.iter_records("applied_faults"))
        assert len(applied) == IMAGES
        with pytest.raises(KeyError, match="no output file tagged"):
            next(result.iter_records("nope"))

    def test_json_iteration_is_incremental_and_matches_json_load(self, tmp_path, monkeypatch):
        import json

        import repro.experiments.result as result_mod

        spec = (
            Experiment.builder()
            .name("yolov3")
            .task("detection")
            .model("yolov3", num_classes=5, seed=1)
            .dataset("synthetic-coco", num_samples=4, num_classes=5, seed=9)
            .scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=77,
                      model_name="yolov3", dataset_size=4)
            .output_dir(tmp_path / "det")
            .build()
        )
        result = run(spec)
        # A tiny chunk size forces every buffer-boundary path in the
        # incremental parser.
        monkeypatch.setattr(result_mod, "_JSON_CHUNK", 7)
        for tag in ("corrupted_json", "applied_faults", "ground_truth"):
            expected = json.loads(Path(result.output_files[tag]).read_text())
            assert list(result.iter_records(tag)) == expected

    def test_json_iteration_survives_numbers_on_chunk_boundaries(self, tmp_path, monkeypatch):
        import json

        import repro.experiments.result as result_mod
        from repro.experiments.result import _iter_json_array

        records = ["s", 3.5, True, 12345, -1e5, {"x": 2.25}, None, [1.5, "a,b"]]
        path = tmp_path / "scalars.json"
        path.write_text(json.dumps(records))
        # Every chunk size must parse identically — including sizes that cut
        # a float right after its integer part or exponent marker.
        for chunk in range(1, 12):
            monkeypatch.setattr(result_mod, "_JSON_CHUNK", chunk)
            assert list(_iter_json_array(path)) == records, f"chunk={chunk}"

    def test_json_iteration_handles_empty_and_rejects_non_arrays(self, tmp_path):
        from repro.experiments.result import _iter_json_array

        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert list(_iter_json_array(empty)) == []
        no_records = tmp_path / "no_records.json"
        no_records.write_text("[]")
        assert list(_iter_json_array(no_records)) == []
        mapping = tmp_path / "mapping.json"
        mapping.write_text('{"a": 1}')
        with pytest.raises(ValueError, match="not a record array"):
            list(_iter_json_array(mapping))
        truncated = tmp_path / "truncated.json"
        truncated.write_text('[\n{"a": 1},\n{"b": ')
        with pytest.raises(ValueError, match="truncated|unterminated"):
            list(_iter_json_array(truncated))

    def test_step_range_slices_merge_to_full_run(self, tmp_path):
        full = run(classification_spec(tmp_path / "full"))

        halves = []
        for index, (start, stop) in enumerate(((0, IMAGES // 2), (IMAGES // 2, IMAGES))):
            spec = classification_spec(tmp_path / f"half{index}")
            spec.backend = BackendSpec("serial", step_range=(start, stop))
            halves.append(run(spec))

        merged = CampaignResult.merge(halves, output_dir=tmp_path / "merged")
        assert merged.summary["corrupted"] == full.summary["corrupted"]
        assert_files_identical(
            full.output_files, merged.output_files,
            tags=["golden_csv", "corrupted_csv", "applied_faults"],
        )

    def test_merge_into_a_slice_directory_does_not_destroy_inputs(self, tmp_path):
        full = run(classification_spec(tmp_path / "full"))
        halves = []
        for index, (start, stop) in enumerate(((0, IMAGES // 2), (IMAGES // 2, IMAGES))):
            spec = classification_spec(tmp_path / f"half{index}")
            spec.backend = BackendSpec("serial", step_range=(start, stop))
            halves.append(run(spec))

        # Merging into slice 0's own directory must still read both inputs.
        merged = CampaignResult.merge(halves, output_dir=tmp_path / "half0")
        assert_files_identical(
            full.output_files, merged.output_files,
            tags=["golden_csv", "corrupted_csv", "applied_faults"],
        )

    def test_merge_rejects_mixed_tasks(self, tmp_path):
        result = run(classification_spec(tmp_path / "one"))
        other = CampaignResult(spec=result.spec, task="detection", summary={})
        with pytest.raises(ValueError, match="different tasks"):
            CampaignResult.merge([result, other])


class TestStreamingEvaluation:
    def test_streaming_run_reports_kpis_from_counters(self, tmp_path):
        buffered = run(classification_spec(tmp_path / "buffered"))
        streaming_spec = classification_spec(tmp_path / "streaming")
        streaming_spec.task_options["collect_outputs"] = False
        streaming = run(streaming_spec)

        assert streaming.extras == {}
        assert not streaming.state.golden_logits  # nothing buffered
        buffered_kpis = buffered.summary["corrupted"]
        streaming_kpis = streaming.summary["corrupted"]
        for key in ("num_inferences", "golden_top1_accuracy", "masked_rate",
                    "sde_rate", "due_rate", "corrupted_top1_accuracy"):
            assert streaming_kpis[key] == buffered_kpis[key], key


class TestModelKindValidation:
    def test_detector_in_classification_task_rejected(self):
        from repro.experiments import SpecError

        spec = classification_spec(None)
        spec.output_dir = None
        spec.model = ComponentSpec("yolov3", {"num_classes": 5, "seed": 1})
        with pytest.raises(SpecError, match="registered as a 'detector'"):
            spec.validate(registries=True)

    def test_detection_dataset_in_classification_task_rejected(self):
        from repro.experiments import SpecError

        spec = classification_spec(None)
        spec.output_dir = None
        spec.dataset = ComponentSpec("synthetic-coco", {"num_samples": 4, "num_classes": 5})
        with pytest.raises(SpecError, match="registered for task 'detection'"):
            spec.validate(registries=True)


class TestResultNaming:
    def test_default_scenario_model_name_falls_back_to_spec_model(self, tmp_path):
        spec = classification_spec(tmp_path / "named")
        spec.scenario = spec.scenario.copy(model_name="model")  # the default sentinel
        result = run(spec)
        assert result.context["model_name"] == "lenet5"
        assert (tmp_path / "named" / "lenet5_corrupted_results.csv").exists()


class TestArtifactsOverride:
    def test_prebuilt_model_and_dataset_are_used(self, tmp_path):
        dataset = SyntheticClassificationDataset(
            num_samples=IMAGES, num_classes=CLASSES, noise=0.25, seed=1
        )
        model = build_fitted_classifier(dataset)
        spec = classification_spec(tmp_path / "artifacts")
        result = run(spec, artifacts=Artifacts(model=model, dataset=dataset))
        assert result.core.model is model
        assert result.core.dataset is dataset

    def test_prebuilt_core_honors_spec_output_dir(self, tmp_path):
        from repro.alficore.campaign import CampaignCore, ClassificationTask

        dataset = SyntheticClassificationDataset(
            num_samples=4, num_classes=CLASSES, noise=0.25, seed=1
        )
        core = CampaignCore(
            build_fitted_classifier(dataset),
            dataset,
            ClassificationTask(collect_outputs=True),
            scenario=classification_scenario(),
        )
        spec = classification_spec(tmp_path / "core_out")
        result = run(spec, artifacts=Artifacts(core=core))
        assert "corrupted_csv" in result.output_files
        assert (tmp_path / "core_out" / "lenet5_corrupted_results.csv").exists()

    def test_registry_resolution_matches_prebuilt(self, tmp_path):
        dataset = SyntheticClassificationDataset(
            num_samples=IMAGES, num_classes=CLASSES, noise=0.25, seed=1
        )
        model = build_fitted_classifier(dataset)
        via_artifacts = run(
            classification_spec(tmp_path / "a"), artifacts=Artifacts(model=model, dataset=dataset)
        )
        via_registry = run(classification_spec(tmp_path / "b"))
        assert_files_identical(via_artifacts.output_files, via_registry.output_files)
