"""Unit tests for the ptfiwrap wrapper (Listing 1 of the paper)."""

import numpy as np
import pytest

from repro.alficore import default_scenario, ptfiwrap
from repro.alficore.scenario import save_scenario
from repro.pytorchfi.errormodels import RandomValueErrorModel


class TestConstruction:
    def test_wrapper_profiles_model(self, lenet_model, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        assert wrapper.fault_injection.num_layers == 5

    def test_fault_matrix_pre_generated(self, lenet_model, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        matrix = wrapper.get_fault_matrix()
        assert matrix.num_faults == neuron_scenario.total_faults
        assert matrix.injection_target == "neurons"

    def test_scenario_loaded_from_config_dir(self, lenet_model, tmp_path):
        scenario = default_scenario(dataset_size=3, injection_target="weights", random_seed=11)
        save_scenario(scenario, tmp_path / "scenarios" / "default.yml")
        wrapper = ptfiwrap(lenet_model, config_dir=tmp_path)
        assert wrapper.get_scenario() == scenario

    def test_falls_back_to_builtin_defaults(self, lenet_model, tmp_path):
        wrapper = ptfiwrap(lenet_model, config_dir=tmp_path)  # no scenarios/ dir
        assert wrapper.get_scenario().dataset_size == 10


class TestScenarioMutation:
    def test_get_scenario_returns_copy(self, lenet_model, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        copy = wrapper.get_scenario()
        copy.dataset_size = 999
        assert wrapper.get_scenario().dataset_size == neuron_scenario.dataset_size

    def test_set_scenario_regenerates_faults(self, lenet_model, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        first = wrapper.get_fault_matrix()
        wrapper.set_scenario(neuron_scenario.copy(layer_range=(0, 0)))
        second = wrapper.get_fault_matrix()
        assert set(np.unique(second.matrix[1, :])) == {0.0}
        assert first != second

    def test_update_scenario_shorthand(self, lenet_model, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        wrapper.update_scenario(injection_target="weights")
        assert wrapper.get_fault_matrix().injection_target == "weights"

    def test_layer_sweep_pattern(self, lenet_model, neuron_scenario):
        """Iterating the start layer as in Section V-D regenerates matching faults."""
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        for layer in range(wrapper.fault_injection.num_layers):
            scenario = wrapper.get_scenario()
            scenario.layer_range = (layer, layer)
            wrapper.set_scenario(scenario)
            layers_hit = set(np.unique(wrapper.get_fault_matrix().matrix[1, :]))
            assert layers_hit == {float(layer)}


class TestFaultyModelIterator:
    def test_iterator_yields_num_fault_groups_models(self, lenet_model, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        models = list(wrapper.get_fimodel_iter())
        assert len(models) == wrapper.num_fault_groups() == neuron_scenario.total_faults

    def test_iterator_cycle_mode(self, lenet_model):
        scenario = default_scenario(dataset_size=2)
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        iterator = wrapper.get_fimodel_iter(cycle=True)
        models = [next(iterator) for _ in range(5)]
        assert len(models) == 5

    def test_reset_iterator(self, lenet_model):
        scenario = default_scenario(dataset_size=2)
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        iterator = wrapper.get_fimodel_iter()
        next(iterator)
        next(iterator)
        wrapper.reset_iterator()
        assert len(list(wrapper.get_fimodel_iter())) == 2

    def test_each_model_is_fresh_copy(self, lenet_model, small_images, weight_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        iterator = wrapper.get_fimodel_iter()
        model_a = next(iterator)
        model_b = next(iterator)
        assert model_a is not model_b
        # Faults of model_a must not leak into model_b's weights beyond its own fault.
        state_a = model_a.state_dict()
        state_b = model_b.state_dict()
        differing = sum(
            0 if np.array_equal(state_a[key], state_b[key]) else 1 for key in state_a
        )
        assert differing <= 2

    def test_weight_faults_applied_to_corrupted_model(self, lenet_model, weight_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        corrupted = next(wrapper.get_fimodel_iter())
        golden_state = lenet_model.state_dict()
        corrupted_state = corrupted.state_dict()
        changed = [
            key for key in golden_state if not np.array_equal(golden_state[key], corrupted_state[key])
        ]
        assert len(changed) == 1

    def test_neuron_faults_recorded_during_inference(self, lenet_model, small_images, neuron_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        corrupted = next(wrapper.get_fimodel_iter())
        assert wrapper.applied_faults == []
        corrupted(small_images[:1])
        assert len(wrapper.applied_faults) == 1

    def test_max_faults_per_image_group_size(self, lenet_model, small_images):
        scenario = default_scenario(dataset_size=3, max_faults_per_image=4, injection_target="weights")
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        next(wrapper.get_fimodel_iter())
        assert len(wrapper.applied_faults) == 4

    def test_error_model_override(self, lenet_model, small_images):
        scenario = default_scenario(dataset_size=1, injection_target="neurons", rnd_value_type="number")
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        corrupted = next(wrapper.get_fimodel_iter(error_model=RandomValueErrorModel(-1, 1)))
        corrupted(small_images[:1])
        assert wrapper.applied_faults[0].bit_position is None


class TestFaultMatrixReuse:
    def test_corrupted_model_for_group_is_repeatable(self, lenet_model, weight_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        model_a = wrapper.corrupted_model_for_group(2)
        model_b = wrapper.corrupted_model_for_group(2)
        for (_, param_a), (_, param_b) in zip(model_a.named_parameters(), model_b.named_parameters()):
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_corrupted_model_for_group_bounds(self, lenet_model, weight_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        with pytest.raises(IndexError):
            wrapper.corrupted_model_for_group(9999)

    def test_save_and_reload_fault_matrix(self, lenet_model, weight_scenario, tmp_path):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        path = wrapper.save_fault_matrix(tmp_path / "faults.npz")
        other = ptfiwrap(lenet_model, scenario=weight_scenario.copy(fault_file=str(path)))
        assert other.get_fault_matrix() == wrapper.get_fault_matrix()

    def test_set_fault_matrix_target_mismatch(self, lenet_model, neuron_scenario, weight_scenario):
        neuron_wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        weight_wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        with pytest.raises(ValueError):
            weight_wrapper.set_fault_matrix(neuron_wrapper.get_fault_matrix())

    def test_fault_file_target_mismatch_raises(self, lenet_model, neuron_scenario, weight_scenario, tmp_path):
        neuron_wrapper = ptfiwrap(lenet_model, scenario=neuron_scenario)
        path = neuron_wrapper.save_fault_matrix(tmp_path / "neuron_faults.npz")
        with pytest.raises(ValueError):
            ptfiwrap(lenet_model, scenario=weight_scenario.copy(fault_file=str(path)))


class TestPartialFaultGroups:
    """Regression: trailing fault columns must not be silently dropped."""

    def _wrapper_with_seven_faults(self, lenet_model, tmp_path):
        generate_scenario = default_scenario(dataset_size=7, injection_target="weights", random_seed=21)
        wrapper = ptfiwrap(lenet_model, scenario=generate_scenario)
        path = wrapper.save_fault_matrix(tmp_path / "seven.npz")
        replay = default_scenario(
            dataset_size=3,
            max_faults_per_image=3,
            injection_target="weights",
            fault_file=str(path),
            random_seed=21,
        )
        return ptfiwrap(lenet_model, scenario=replay)

    def test_num_fault_groups_counts_partial_group(self, lenet_model, tmp_path):
        wrapper = self._wrapper_with_seven_faults(lenet_model, tmp_path)
        assert wrapper.get_fault_matrix().num_faults == 7
        assert wrapper.num_fault_groups() == 3  # 3 + 3 + 1, not 7 // 3 == 2

    def test_iterator_yields_final_partial_group_with_warning(self, lenet_model, tmp_path):
        wrapper = self._wrapper_with_seven_faults(lenet_model, tmp_path)
        iterator = wrapper.get_fimodel_iter()
        next(iterator)
        next(iterator)
        with pytest.warns(RuntimeWarning, match="partial"):
            last = next(iterator)
        assert len(wrapper.fault_injection.applied_fault_groups()[-1]) == 1
        golden_state = lenet_model.state_dict()
        changed = [
            key
            for key in golden_state
            if not np.array_equal(golden_state[key], last.state_dict()[key])
        ]
        assert len(changed) == 1
        with pytest.raises(StopIteration):
            next(iterator)

    def test_session_iterator_yields_partial_group(self, lenet_model, tmp_path):
        wrapper = self._wrapper_with_seven_faults(lenet_model, tmp_path)
        with pytest.warns(RuntimeWarning, match="partial"):
            counts = []
            for group in wrapper.get_fault_group_iter():
                with group:
                    counts.append(len(group.applied_faults))
        assert counts == [3, 3, 1]

    def test_exact_multiple_emits_no_warning(self, lenet_model, recwarn):
        wrapper = ptfiwrap(
            lenet_model,
            scenario=default_scenario(dataset_size=4, max_faults_per_image=2, injection_target="weights"),
        )
        models = list(wrapper.get_fimodel_iter())
        assert len(models) == wrapper.num_fault_groups() == 4
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


class TestFaultGroupSessions:
    def test_fault_group_session_is_repeatable(self, lenet_model, weight_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        with wrapper.fault_group_session(2) as first:
            bits_first = [f.corrupted_value for f in first.applied_faults]
        with wrapper.fault_group_session(2) as second:
            bits_second = [f.corrupted_value for f in second.applied_faults]
        assert bits_first == bits_second

    def test_fault_group_session_bounds(self, lenet_model, weight_scenario):
        wrapper = ptfiwrap(lenet_model, scenario=weight_scenario)
        with pytest.raises(IndexError):
            wrapper.fault_group_session(9999)

    def test_session_iter_matches_clone_iter_outputs(self, lenet_model, small_images, weight_scenario):
        wrapper_a = ptfiwrap(lenet_model, scenario=weight_scenario)
        wrapper_b = ptfiwrap(lenet_model, scenario=weight_scenario)
        clones = wrapper_a.get_fimodel_iter()
        sessions = wrapper_b.get_fault_group_iter()
        for _ in range(3):
            expected = next(clones)(small_images)
            with next(sessions) as group:
                actual = group.model(small_images)
            np.testing.assert_array_equal(expected, actual)
