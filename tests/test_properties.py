"""Property-based tests (hypothesis) on the core invariants of the framework."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alficore import FaultMatrixGenerator, default_scenario, layer_weight_factors
from repro.eval import outcome_rates, sde_rate, top_k_predictions
from repro.eval.sdc import FaultOutcome
from repro.models.detection import box_iou, nms
from repro.pytorchfi import FaultInjection
from repro.pytorchfi.errormodels import BitFlipErrorModel
from repro.tensor import bits_to_float, flip_bit, flip_bit_scalar, float_to_bits, get_bit


finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32, min_value=-(2.0**100), max_value=2.0**100
)


class TestBitopsProperties:
    @given(value=finite_floats, bit=st.integers(0, 31))
    @settings(max_examples=200)
    def test_double_flip_is_identity(self, value, bit):
        once = flip_bit(np.float32(value), bit)
        twice = flip_bit(once, bit)
        np.testing.assert_array_equal(np.float32(value), twice)

    @given(value=finite_floats, bit=st.integers(0, 31))
    @settings(max_examples=200)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        original_bits = int(float_to_bits(np.float32(value)))
        flipped_bits = int(float_to_bits(flip_bit(np.float32(value), bit)))
        assert bin(original_bits ^ flipped_bits).count("1") == 1

    @given(value=finite_floats)
    @settings(max_examples=200)
    def test_bits_round_trip(self, value):
        restored = bits_to_float(float_to_bits(np.float32(value)))
        np.testing.assert_array_equal(np.float32(value), restored)

    @given(value=finite_floats, bit=st.integers(0, 31))
    @settings(max_examples=100)
    def test_flip_direction_consistent_with_original_bit(self, value, bit):
        record = flip_bit_scalar(float(np.float32(value)), bit)
        original_bit = int(get_bit(np.float32(value), bit))
        expected = "0->1" if original_bit == 0 else "1->0"
        assert record.flip_direction == expected

    @given(value=finite_floats, bit=st.integers(23, 30))
    @settings(max_examples=100)
    def test_exponent_flip_changes_magnitude_or_zero(self, value, bit):
        """Exponent bit flips never change the sign of a non-zero value."""
        corrupted = float(flip_bit(np.float32(value), bit))
        if value != 0 and np.isfinite(corrupted) and corrupted != 0:
            assert np.sign(corrupted) == np.sign(value)


class TestLayerWeightProperties:
    @given(sizes=st.lists(st.integers(0, 10_000), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_factors_are_a_probability_distribution(self, sizes):
        factors = layer_weight_factors(sizes)
        assert np.all(factors >= 0)
        np.testing.assert_allclose(factors.sum(), 1.0, rtol=1e-9)

    @given(
        sizes=st.lists(st.integers(1, 10_000), min_size=2, max_size=20),
        scale=st.integers(2, 10),
    )
    @settings(max_examples=100)
    def test_factors_scale_invariant(self, sizes, scale):
        base = layer_weight_factors(sizes)
        scaled = layer_weight_factors([s * scale for s in sizes])
        np.testing.assert_allclose(base, scaled, rtol=1e-9)


class TestIoUProperties:
    boxes = st.lists(
        st.tuples(
            st.floats(0, 50, allow_nan=False),
            st.floats(0, 50, allow_nan=False),
            st.floats(0.1, 50, allow_nan=False),
            st.floats(0.1, 50, allow_nan=False),
        ).map(lambda t: [t[0], t[1], t[0] + t[2], t[1] + t[3]]),
        min_size=1,
        max_size=8,
    )

    @given(boxes_a=boxes, boxes_b=boxes)
    @settings(max_examples=100)
    def test_iou_bounded_and_symmetric(self, boxes_a, boxes_b):
        a = np.asarray(boxes_a, dtype=np.float32)
        b = np.asarray(boxes_b, dtype=np.float32)
        iou = box_iou(a, b)
        assert np.all(iou >= 0) and np.all(iou <= 1 + 1e-6)
        np.testing.assert_allclose(iou, box_iou(b, a).T, rtol=1e-5, atol=1e-6)

    @given(boxes_a=boxes)
    @settings(max_examples=100)
    def test_self_iou_diagonal_is_one(self, boxes_a):
        a = np.asarray(boxes_a, dtype=np.float32)
        iou = box_iou(a, a)
        np.testing.assert_allclose(np.diag(iou), 1.0, rtol=1e-5)

    @given(boxes_a=boxes, threshold=st.floats(0.1, 0.9))
    @settings(max_examples=100)
    def test_nms_kept_boxes_are_mutually_non_overlapping(self, boxes_a, threshold):
        a = np.asarray(boxes_a, dtype=np.float32)
        scores = np.linspace(1.0, 0.1, len(a)).astype(np.float32)
        keep = nms(a, scores, threshold)
        kept = a[keep]
        iou = box_iou(kept, kept)
        off_diagonal = iou - np.eye(len(kept))
        assert np.all(off_diagonal <= threshold + 1e-5)

    @given(boxes_a=boxes)
    @settings(max_examples=50)
    def test_nms_output_is_subset_of_input(self, boxes_a):
        a = np.asarray(boxes_a, dtype=np.float32)
        scores = np.random.default_rng(0).uniform(0, 1, len(a)).astype(np.float32)
        keep = nms(a, scores, 0.5)
        assert len(keep) <= len(a)
        assert len(set(keep.tolist())) == len(keep)


class TestEvalProperties:
    @given(
        logits=st.lists(
            st.lists(st.floats(-100, 100, allow_nan=False, width=32), min_size=5, max_size=5),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_top_k_classes_are_valid_and_distinct(self, logits):
        arr = np.asarray(logits, dtype=np.float32)
        classes, probabilities = top_k_predictions(arr, k=5)
        for row in classes:
            assert len(set(row.tolist())) == 5
            assert set(row.tolist()) <= set(range(5))
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1 + 1e-6)

    @given(
        outcomes=st.lists(
            st.sampled_from([FaultOutcome.MASKED, FaultOutcome.SDE, FaultOutcome.DUE]),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100)
    def test_outcome_rates_always_sum_to_one(self, outcomes):
        rates = outcome_rates(outcomes)
        assert rates["masked"] + rates["sde"] + rates["due"] == np.float64(1.0) or np.isclose(
            rates["masked"] + rates["sde"] + rates["due"], 1.0
        )

    @given(
        golden=st.lists(
            st.lists(st.floats(-10, 10, allow_nan=False, width=32), min_size=3, max_size=3),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_identical_runs_have_zero_sde(self, golden):
        arr = np.asarray(golden, dtype=np.float32)
        rates = sde_rate(arr, arr.copy())
        assert rates["sde"] == 0.0 and rates["due"] == 0.0


class TestFaultMatrixProperties:
    @given(
        dataset_size=st.integers(1, 12),
        num_runs=st.integers(1, 3),
        faults_per_image=st.integers(1, 4),
        target=st.sampled_from(["neurons", "weights"]),
        bit_low=st.integers(0, 15),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_matrices_respect_scenario(
        self, mlp_model_module, dataset_size, num_runs, faults_per_image, target, bit_low, seed
    ):
        scenario = default_scenario(
            dataset_size=dataset_size,
            num_runs=num_runs,
            max_faults_per_image=faults_per_image,
            injection_target=target,
            rnd_bit_range=(bit_low, 31),
            random_seed=seed,
        )
        matrix = FaultMatrixGenerator(mlp_model_module, scenario).generate()
        assert matrix.num_faults == scenario.total_faults
        layers = matrix.matrix[1 if target == "neurons" else 0, :]
        assert layers.min() >= 0 and layers.max() < mlp_model_module.num_layers
        values = matrix.matrix[6, :]
        assert values.min() >= bit_low and values.max() <= 31

    @given(bit=st.integers(0, 31), value=finite_floats)
    @settings(max_examples=100)
    def test_bitflip_error_model_replay_matches_direct_flip(self, bit, value):
        model = BitFlipErrorModel(bit_position=bit)
        corrupted, info = model.corrupt(float(np.float32(value)), np.random.default_rng(0))
        direct = float(flip_bit(np.float32(value), bit))
        assert corrupted == direct or (np.isnan(corrupted) and np.isnan(direct))


# A module-scoped profiled injector for the hypothesis matrix test (profiling
# an MLP takes ~1 ms but doing it inside @given would still dominate).
import pytest  # noqa: E402  (kept close to the fixture it decorates)

from repro.models import mlp  # noqa: E402


@pytest.fixture(scope="module")
def mlp_model_module():
    return FaultInjection(mlp(num_classes=10, seed=0).eval(), input_shape=(3, 32, 32))
