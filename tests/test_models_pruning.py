"""Unit tests for magnitude pruning and the pruned-vs-original use case."""

import numpy as np
import pytest

from repro.alficore import default_scenario, ptfiwrap
from repro.models.pruning import prunable_weight_count, prune_by_magnitude, sparsity
from repro.pytorchfi import FaultInjection


class TestPruneByMagnitude:
    def test_target_sparsity_reached(self, lenet_model):
        pruned = prune_by_magnitude(lenet_model, 0.5)
        assert sparsity(pruned) == pytest.approx(0.5, abs=0.02)

    def test_original_model_untouched(self, lenet_model):
        before = sparsity(lenet_model)
        prune_by_magnitude(lenet_model, 0.8)
        assert sparsity(lenet_model) == before

    def test_zero_amount_is_identity(self, lenet_model, small_images):
        pruned = prune_by_magnitude(lenet_model, 0.0)
        np.testing.assert_allclose(pruned(small_images), lenet_model(small_images))

    def test_small_weights_removed_first(self, lenet_model):
        pruned = prune_by_magnitude(lenet_model, 0.3)
        for (_, original), (_, new) in zip(lenet_model.named_parameters(), pruned.named_parameters()):
            if original.data.ndim < 2:
                continue
            zeroed = (new.data == 0.0) & (original.data != 0.0)
            kept = new.data != 0.0
            if zeroed.any() and kept.any():
                assert np.abs(original.data[zeroed]).max() <= np.abs(new.data[kept]).min() + 1e-6

    def test_invalid_amount(self, lenet_model):
        with pytest.raises(ValueError):
            prune_by_magnitude(lenet_model, 1.0)
        with pytest.raises(ValueError):
            prune_by_magnitude(lenet_model, -0.1)

    def test_prunable_weight_count(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        assert prunable_weight_count(lenet_model) == sum(fi.layer_weight_counts())

    def test_layer_structure_preserved_for_fault_replay(self, lenet_model):
        """The same fault matrix must address both the original and pruned model."""
        pruned = prune_by_magnitude(lenet_model, 0.6)
        original_fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        pruned_fi = FaultInjection(pruned, input_shape=(3, 32, 32))
        assert original_fi.num_layers == pruned_fi.num_layers
        assert original_fi.layer_weight_counts() == pruned_fi.layer_weight_counts()

    def test_fault_campaign_on_pruned_model(self, lenet_model, small_images):
        pruned = prune_by_magnitude(lenet_model, 0.5)
        scenario = default_scenario(dataset_size=4, injection_target="weights", random_seed=3)
        original_wrapper = ptfiwrap(lenet_model, scenario=scenario)
        pruned_wrapper = ptfiwrap(pruned, scenario=scenario)
        pruned_wrapper.set_fault_matrix(original_wrapper.get_fault_matrix())
        corrupted = pruned_wrapper.corrupted_model_for_group(0)
        assert corrupted(small_images).shape == (2, 10)
