"""Tests for the declarative experiment specification (round-trip, validation)."""

from pathlib import Path

import pytest

from repro.alficore.scenario import default_scenario
from repro.experiments import (
    BackendSpec,
    CachingSpec,
    ComponentSpec,
    ExecutionSpec,
    Experiment,
    ExperimentSpec,
    SPEC_SCHEMA_VERSION,
    SpecError,
    UnknownComponentError,
)


def full_spec() -> ExperimentSpec:
    """A spec touching every field with a non-default value."""
    return ExperimentSpec(
        name="full",
        task="detection",
        model=ComponentSpec("yolov3", {"num_classes": 5, "seed": 3}),
        dataset=ComponentSpec("synthetic-coco", {"num_samples": 6, "num_classes": 5, "seed": 2}),
        scenario=default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=9,
            model_name="yolov3", dataset_size=6,
        ),
        protection=ComponentSpec("ranger", {"layer_types": None}),
        backend=BackendSpec("sharded", workers=2, num_shards=3),
        caching=CachingSpec(golden_cache_mb=64, prefix_reuse=False),
        execution=ExecutionSpec(
            retries=1, shard_timeout=30.0, backoff=0.25, resume=False, executor="fused"
        ),
        input_shape=(3, 64, 64),
        dl_shuffle=True,
        output_dir=Path("out/dir"),
        task_options={"collect_applied_log": False},
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = full_spec()
        assert ExperimentSpec.from_dict(spec.as_dict()) == spec

    def test_yaml_round_trip(self):
        import yaml

        spec = full_spec()
        assert ExperimentSpec.from_dict(yaml.safe_load(spec.to_yaml())) == spec

    def test_json_round_trip(self):
        import json

        spec = full_spec()
        assert ExperimentSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_numpy_params_serialize(self, tmp_path):
        import numpy as np

        spec = full_spec()
        spec.model.params["num_classes"] = np.int64(5)
        spec.model.params["scale"] = np.float32(0.5)
        reloaded = ExperimentSpec.load(spec.save(tmp_path / "np.yml"))
        assert reloaded.model.params["num_classes"] == 5
        assert reloaded.model.params["scale"] == 0.5
        spec.to_json()  # JSON path serializes too

    def test_file_round_trip_yaml_and_json(self, tmp_path):
        spec = full_spec()
        for name in ("spec.yml", "spec.json"):
            path = spec.save(tmp_path / name)
            assert ExperimentSpec.load(path) == spec

    def test_schema_version_in_document(self):
        assert full_spec().as_dict()["schema_version"] == SPEC_SCHEMA_VERSION

    def test_step_range_round_trips(self):
        spec = ExperimentSpec(backend=BackendSpec("serial", step_range=(0, 5)))
        rebuilt = ExperimentSpec.from_dict(spec.as_dict())
        assert rebuilt.backend.step_range == (0, 5)


class TestValidation:
    def test_newer_schema_version_rejected(self):
        data = full_spec().as_dict()
        data["schema_version"] = SPEC_SCHEMA_VERSION + 1
        with pytest.raises(SpecError, match="newer than the supported"):
            ExperimentSpec.from_dict(data)

    def test_null_and_non_numeric_schema_version_fail_cleanly(self):
        data = full_spec().as_dict()
        data["schema_version"] = None  # YAML `schema_version:` loads as null
        assert ExperimentSpec.from_dict(data) == full_spec()
        data["schema_version"] = "latest"
        with pytest.raises(SpecError, match="schema_version must be an integer"):
            ExperimentSpec.from_dict(data)
        data["schema_version"] = True
        with pytest.raises(SpecError, match="schema_version must be an integer"):
            ExperimentSpec.from_dict(data)

    def test_unknown_top_level_key_rejected(self):
        data = full_spec().as_dict()
        data["turbo"] = True
        with pytest.raises(SpecError, match="unknown experiment spec keys.*turbo"):
            ExperimentSpec.from_dict(data)

    @pytest.mark.parametrize("section", ["model", "backend", "caching", "execution"])
    def test_unknown_nested_key_rejected(self, section):
        data = full_spec().as_dict()
        data[section] = dict(data[section], bogus=1)
        with pytest.raises(SpecError, match=f"unknown {section}"):
            ExperimentSpec.from_dict(data)

    def test_unknown_scenario_key_rejected(self):
        data = full_spec().as_dict()
        data["scenario"] = dict(data["scenario"], warp=1)
        with pytest.raises(SpecError, match="invalid scenario section"):
            ExperimentSpec.from_dict(data)

    def test_non_mapping_scenario_rejected(self):
        data = full_spec().as_dict()
        data["scenario"] = "weights"
        with pytest.raises(SpecError, match="scenario must be a mapping"):
            ExperimentSpec.from_dict(data)

    def test_bad_backend_values_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec(backend=BackendSpec(workers=0)).validate()
        with pytest.raises(SpecError):
            ExperimentSpec(backend=BackendSpec(step_range=(4, 2))).validate()
        with pytest.raises(SpecError):
            ExperimentSpec(caching=CachingSpec(golden_cache_mb=-1)).validate()

    def test_bad_execution_values_rejected(self):
        with pytest.raises(SpecError, match="execution.retries"):
            ExperimentSpec(execution=ExecutionSpec(retries=-1)).validate()
        with pytest.raises(SpecError, match="execution.shard_timeout"):
            ExperimentSpec(execution=ExecutionSpec(shard_timeout=0.0)).validate()
        with pytest.raises(SpecError, match="execution.backoff"):
            ExperimentSpec(execution=ExecutionSpec(backoff=-0.5)).validate()

    def test_executor_validated_against_registry(self):
        with pytest.raises(SpecError, match="execution.executor"):
            ExperimentSpec(execution=ExecutionSpec(executor="turbo")).validate()
        for name in ("module", "interpreter", "fused"):
            ExperimentSpec(execution=ExecutionSpec(executor=name)).validate()

    def test_executor_round_trips_and_defaults(self):
        data = full_spec().as_dict()
        assert data["execution"]["executor"] == "fused"
        assert ExperimentSpec.from_dict(data).execution.executor == "fused"
        del data["execution"]["executor"]
        assert ExperimentSpec.from_dict(data).execution.executor == "interpreter"
        data["execution"]["executor"] = None
        assert ExperimentSpec.from_dict(data).execution.executor == "interpreter"

    def test_resume_requires_sharded_backend_and_output_dir(self):
        with pytest.raises(SpecError, match="resume requires the 'sharded' backend"):
            ExperimentSpec(execution=ExecutionSpec(resume=True)).validate()
        with pytest.raises(SpecError, match="resume requires output_dir"):
            ExperimentSpec(
                backend=BackendSpec("sharded", workers=2),
                execution=ExecutionSpec(resume=True),
            ).validate()
        ExperimentSpec(
            backend=BackendSpec("sharded", workers=2),
            execution=ExecutionSpec(resume=True),
            output_dir=Path("out"),
        ).validate()

    def test_execution_nulls_mean_defaults(self):
        data = full_spec().as_dict()
        data["execution"] = {"retries": None, "shard_timeout": None, "backoff": None, "resume": None}
        spec = ExperimentSpec.from_dict(data)
        assert spec.execution == ExecutionSpec()
        data["execution"] = {"backoff": "slow"}
        with pytest.raises(SpecError, match="execution.backoff must be a number"):
            ExperimentSpec.from_dict(data)

    def test_serial_backend_with_workers_rejected_at_validation(self):
        # validate and run must agree: a serial backend with workers>1 is a
        # spec error, not a run-time crash.
        with pytest.raises(SpecError, match="serial.*workers=1"):
            ExperimentSpec(backend=BackendSpec("serial", workers=2)).validate()

    def test_backend_combinations_validate_and_run_agree(self):
        with pytest.raises(SpecError, match="serial.*num_shards"):
            ExperimentSpec(backend=BackendSpec("serial", num_shards=3)).validate()
        with pytest.raises(SpecError, match="sharded.*step_range"):
            ExperimentSpec(
                backend=BackendSpec("sharded", workers=2, step_range=(0, 4))
            ).validate()

    def test_empty_protection_mapping_rejected(self):
        data = full_spec().as_dict()
        data["protection"] = {}
        with pytest.raises(SpecError, match="protection requires a 'name'"):
            ExperimentSpec.from_dict(data)

    def test_null_values_mean_defaults_not_literals(self):
        data = full_spec().as_dict()
        data["caching"] = {"golden_cache_mb": None, "prefix_reuse": None}
        data["backend"] = {"name": "sharded", "workers": None}
        data["task"] = None
        data["name"] = None
        spec = ExperimentSpec.from_dict(data)
        assert spec.caching.prefix_reuse is True
        assert spec.caching.golden_cache_mb == 0
        assert spec.backend.workers == 1
        assert spec.task == "classification" and spec.name == "experiment"
        data["model"] = {"name": None}
        with pytest.raises(SpecError, match="model requires a 'name'"):
            ExperimentSpec.from_dict(data)

    @pytest.mark.parametrize("mutation", [
        {"backend": {"step_range": [5]}},
        {"backend": {"workers": {}}},
        {"input_shape": 5},
        {"model": {"name": "lenet5", "params": 5}},
        {"task_options": 7},
        {"caching": {"golden_cache_mb": "lots"}},
    ], ids=["short-step-range", "mapping-workers", "scalar-input-shape",
            "scalar-params", "scalar-task-options", "string-cache-mb"])
    def test_malformed_field_types_raise_spec_errors(self, mutation):
        # Every malformed document fails with a SpecError (clean CLI
        # message), never a raw TypeError/IndexError traceback.
        data = full_spec().as_dict()
        data.update(mutation)
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(data)

    def test_registry_validation_catches_typos(self):
        spec = full_spec()
        spec.model = ComponentSpec("yolov")
        with pytest.raises(UnknownComponentError, match="did you mean.*yolov3"):
            spec.validate(registries=True)

    def test_component_from_plain_string(self):
        assert ComponentSpec.from_dict("ranger", "protection") == ComponentSpec("ranger")

    def test_copy_overrides_and_isolates(self):
        spec = full_spec()
        clone = spec.copy(name="other")
        assert clone.name == "other" and spec.name == "full"
        clone.model.params["seed"] = 99
        assert spec.model.params["seed"] == 3
        with pytest.raises(SpecError):
            spec.copy(warp=1)


class TestBuilder:
    def test_builder_equals_explicit_spec(self):
        built = (
            Experiment.builder()
            .name("full")
            .task("detection")
            .model("yolov3", num_classes=5, seed=3)
            .dataset("synthetic-coco", num_samples=6, num_classes=5, seed=2)
            .protection("ranger", layer_types=None)
            .scenario(
                injection_target="weights", rnd_bit_range=(23, 30), random_seed=9,
                model_name="yolov3", dataset_size=6,
            )
            .backend("sharded", workers=2, num_shards=3)
            .caching(golden_cache_mb=64, prefix_reuse=False)
            .execution(retries=1, shard_timeout=30.0, backoff=0.25, executor="fused")
            .input_shape(3, 64, 64)
            .shuffle(True)
            .output_dir("out/dir")
            .options(collect_applied_log=False)
            .build()
        )
        assert built == full_spec()

    def test_builder_returns_independent_specs(self):
        builder = Experiment.builder().name("a")
        first = builder.build()
        builder.name("b")
        assert first.name == "a"

    def test_builder_noarg_scenario_keeps_accumulated_config(self):
        builder = Experiment.builder().scenario(injection_target="weights", random_seed=7)
        builder.scenario()  # no-op, not a reset
        spec = builder.build()
        assert spec.scenario.injection_target == "weights"
        assert spec.scenario.random_seed == 7

    def test_fractional_integers_rejected(self):
        data = full_spec().as_dict()
        data["backend"] = {"name": "sharded", "workers": 2.5}
        with pytest.raises(SpecError, match="backend.workers must be an integer"):
            ExperimentSpec.from_dict(data)
        data["backend"] = {"name": "sharded", "workers": 2.0}  # int-valued float ok
        assert ExperimentSpec.from_dict(data).backend.workers == 2
        data["backend"] = {"name": "sharded", "workers": True}
        with pytest.raises(SpecError, match="backend.workers must be an integer"):
            ExperimentSpec.from_dict(data)

    def test_experiment_load_and_save(self, tmp_path):
        path = Experiment(full_spec()).save(tmp_path / "spec.yml")
        assert Experiment.load(path).spec == full_spec()
