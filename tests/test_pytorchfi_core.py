"""Unit tests for the FaultInjection core: profiling, neuron and weight faults."""

import numpy as np
import pytest

from repro import nn
from repro.pytorchfi import FaultInjection, injectable_layer_types, verify_layer
from repro.pytorchfi.core import NeuronFault, WeightFault, register_layer_type
from repro.pytorchfi.errormodels import BitFlipErrorModel, RandomValueErrorModel


class TestVerifyLayer:
    def test_registry_contains_paper_layer_types(self):
        assert {"conv2d", "conv3d", "fcc"} <= set(injectable_layer_types())

    def test_verify_layer_matches(self):
        assert verify_layer(nn.Conv2d(1, 1, 3), ["conv2d", "fcc"]) == "conv2d"
        assert verify_layer(nn.Linear(2, 2), ["conv2d", "fcc"]) == "fcc"

    def test_verify_layer_non_injectable(self):
        assert verify_layer(nn.ReLU(), ["conv2d", "fcc"]) is None

    def test_verify_layer_unknown_type_name(self):
        with pytest.raises(KeyError):
            verify_layer(nn.ReLU(), ["transformer"])

    def test_register_custom_layer_type(self):
        class CustomLayer(nn.Linear):
            pass

        register_layer_type("custom", CustomLayer)
        try:
            assert verify_layer(CustomLayer(2, 2), ["custom"]) == "custom"
        finally:
            injectable_layer_types()  # registry copy untouched
            from repro.pytorchfi import core

            core._INJECTABLE_LAYER_TYPES.pop("custom", None)

    def test_register_rejects_non_module(self):
        with pytest.raises(TypeError):
            register_layer_type("bad", int)


class TestProfiling:
    def test_layer_enumeration(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        assert fi.num_layers == 2
        assert fi.layers[0].layer_type == "conv2d"
        assert fi.layers[1].layer_type == "fcc"

    def test_output_shapes_recorded(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        assert fi.layers[0].output_shape == (2, 4, 32, 32)
        assert fi.layers[1].output_shape == (2, 10)

    def test_weight_shapes_recorded(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        assert fi.layers[0].weight_shape == (4, 3, 3, 3)
        assert fi.layers[1].weight_shape == (10, 4 * 8 * 8)

    def test_neuron_and_weight_counts(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        assert fi.layer_neuron_counts() == [4 * 32 * 32, 10]
        assert fi.layer_weight_counts() == [4 * 3 * 3 * 3, 10 * 256]

    def test_layer_type_filter(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32), layer_types=("fcc",))
        assert fi.num_layers == 1
        assert fi.layers[0].layer_type == "fcc"

    def test_model_without_injectable_layers_raises(self):
        with pytest.raises(ValueError):
            FaultInjection(nn.Sequential(nn.ReLU()), input_shape=(3, 8, 8))

    def test_skip_profiling_forward(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32), use_hooks_for_profiling=False)
        assert fi.layers[0].output_shape is None

    def test_invalid_layer_index(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        with pytest.raises(IndexError):
            fi.get_layer_info(99)

    def test_lenet_layer_count(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        assert fi.num_layers == 5  # 2 conv + 3 linear


class TestNeuronInjection:
    def test_original_model_untouched(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        golden = tiny_cnn(small_images).copy()
        fault = NeuronFault(batch=0, layer=1, channel=3, depth=-1, height=-1, width=-1, value=30)
        corrupted_model = fi.declare_neuron_fault_injection([fault])
        corrupted_model(small_images)
        np.testing.assert_array_equal(tiny_cnn(small_images), golden)

    def test_fault_changes_target_neuron_only(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        golden = tiny_cnn(small_images)
        fault = NeuronFault(batch=0, layer=1, channel=3, depth=-1, height=-1, width=-1, value=30)
        corrupted_model = fi.declare_neuron_fault_injection([fault])
        corrupted = corrupted_model(small_images)
        # The last layer is the output layer: only (0, 3) may differ.
        diff = np.abs(corrupted - golden)
        assert diff[0, 3] > 0
        diff[0, 3] = 0
        assert diff.max() == 0

    def test_applied_fault_record(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        fault = NeuronFault(batch=1, layer=0, channel=2, depth=-1, height=5, width=7, value=31)
        corrupted_model = fi.declare_neuron_fault_injection([fault])
        corrupted_model(small_images)
        assert len(fi.applied_faults) == 1
        record = fi.applied_faults[0]
        assert record.target == "neuron"
        assert record.layer == 0
        assert record.bit_position == 31
        assert record.corrupted_value == -record.original_value or (
            record.original_value == 0.0 and record.corrupted_value == 0.0
        )

    def test_conv_fault_corrupts_feature_map(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        golden = tiny_cnn(small_images)
        # A large positive replacement value survives ReLU and max pooling, so
        # it must propagate to the output (a bit flip at a negative neuron
        # could legitimately be masked by the ReLU).
        fault = NeuronFault(batch=0, layer=0, channel=1, depth=-1, height=4, width=4, value=1e6)
        corrupted_model = fi.declare_neuron_fault_injection(
            [fault], error_model=RandomValueErrorModel(-1, 1)
        )
        corrupted = corrupted_model(small_images)
        assert not np.allclose(golden, corrupted)

    def test_multiple_faults_per_inference(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        faults = [
            NeuronFault(batch=0, layer=1, channel=i, depth=-1, height=-1, width=-1, value=30)
            for i in range(3)
        ]
        corrupted_model = fi.declare_neuron_fault_injection(faults)
        corrupted_model(small_images)
        assert len(fi.applied_faults) == 3

    def test_value_error_model_uses_fault_value(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        fault = NeuronFault(batch=0, layer=1, channel=0, depth=-1, height=-1, width=-1, value=123.5)
        corrupted_model = fi.declare_neuron_fault_injection(
            [fault], error_model=RandomValueErrorModel(-1, 1)
        )
        corrupted = corrupted_model(small_images)
        assert corrupted[0, 0] == pytest.approx(123.5)

    def test_unknown_layer_raises(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        bad = NeuronFault(batch=0, layer=9, channel=0, depth=-1, height=-1, width=-1, value=1)
        with pytest.raises(IndexError):
            fi.declare_neuron_fault_injection([bad])

    def test_batch_out_of_range_raises(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, batch_size=1, input_shape=(3, 32, 32))
        bad = NeuronFault(batch=3, layer=0, channel=0, depth=-1, height=0, width=0, value=1)
        with pytest.raises(IndexError):
            fi.declare_neuron_fault_injection([bad])

    def test_neuron_injection_without_profiling_raises(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32), use_hooks_for_profiling=False)
        fault = NeuronFault(batch=0, layer=0, channel=0, depth=-1, height=0, width=0, value=1)
        with pytest.raises(RuntimeError):
            fi.declare_neuron_fault_injection([fault])

    def test_smaller_runtime_batch_skips_fault(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, batch_size=2, input_shape=(3, 32, 32))
        fault = NeuronFault(batch=1, layer=1, channel=0, depth=-1, height=-1, width=-1, value=30)
        corrupted_model = fi.declare_neuron_fault_injection([fault])
        single = np.zeros((1, 3, 32, 32), dtype=np.float32)
        corrupted_model(single)  # batch index 1 does not exist -> no corruption
        assert len(fi.applied_faults) == 0


class TestWeightInjection:
    def test_weight_fault_modifies_copy_only(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        original_weight = tiny_cnn.conv1.weight.data.copy()
        fault = WeightFault(layer=0, out_channel=1, in_channel=2, depth=-1, height=1, width=1, value=30)
        corrupted_model = fi.declare_weight_fault_injection([fault])
        np.testing.assert_array_equal(tiny_cnn.conv1.weight.data, original_weight)
        assert not np.array_equal(corrupted_model.conv1.weight.data, original_weight)

    def test_weight_fault_is_applied_immediately(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        fault = WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=31)
        fi.declare_weight_fault_injection([fault])
        # Applied record exists before any inference (weights are static).
        assert len(fi.applied_faults) == 1
        record = fi.applied_faults[0]
        assert record.target == "weight"
        assert record.corrupted_value == -record.original_value

    def test_linear_weight_fault(self, tiny_cnn, small_images):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        golden = tiny_cnn(small_images)
        fault = WeightFault(layer=1, out_channel=4, in_channel=10, depth=-1, height=-1, width=-1, value=30)
        corrupted_model = fi.declare_weight_fault_injection([fault])
        corrupted = corrupted_model(small_images)
        # Only output neuron 4 can change for a fault in row 4 of the weight matrix.
        diff = np.abs(corrupted - golden).max(axis=0)
        assert diff[4] > 0
        diff[4] = 0
        assert diff.max() == 0

    def test_exponent_bit_flip_produces_large_weight(self, lenet_model):
        fi = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        fault = WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=30)
        corrupted_model = fi.declare_weight_fault_injection([fault])
        corrupted_weight = corrupted_model.get_submodule(fi.layers[0].name).weight.data
        assert np.abs(corrupted_weight).max() > 1e30

    def test_unknown_layer_raises(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        bad = WeightFault(layer=5, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=1)
        with pytest.raises(IndexError):
            fi.declare_weight_fault_injection([bad])

    def test_reset_clears_log(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        fault = WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=3)
        fi.declare_weight_fault_injection([fault])
        fi.reset()
        assert fi.applied_faults == []

    def test_bitflip_replays_fault_value_as_position(self, tiny_cnn):
        fi = FaultInjection(tiny_cnn, input_shape=(3, 32, 32))
        fault = WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=0, width=0, value=17)
        fi.declare_weight_fault_injection([fault], error_model=BitFlipErrorModel(bit_range=(0, 31)))
        assert fi.applied_faults[0].bit_position == 17


class TestConv3dInjection:
    @pytest.fixture
    def conv3d_model(self):
        class Volume(nn.Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.conv = nn.Conv3d(1, 2, (1, 3, 3), padding=(0, 1, 1), rng=rng)
                self.flatten = nn.Flatten()
                self.fc = nn.Linear(2 * 2 * 8 * 8, 4, rng=rng)

            def forward(self, x):
                return self.fc(self.flatten(self.conv(x)))

        return Volume().eval()

    def test_conv3d_profiling(self, conv3d_model):
        fi = FaultInjection(conv3d_model, input_shape=(1, 2, 8, 8))
        assert fi.layers[0].layer_type == "conv3d"
        assert fi.layers[0].output_shape == (1, 2, 2, 8, 8)

    def test_conv3d_neuron_fault(self, conv3d_model):
        fi = FaultInjection(conv3d_model, input_shape=(1, 2, 8, 8))
        fault = NeuronFault(batch=0, layer=0, channel=1, depth=1, height=3, width=3, value=30)
        corrupted_model = fi.declare_neuron_fault_injection([fault])
        x = np.random.default_rng(1).normal(size=(1, 1, 2, 8, 8)).astype(np.float32)
        golden = conv3d_model(x)
        corrupted = corrupted_model(x)
        assert not np.allclose(golden, corrupted)

    def test_conv3d_weight_fault(self, conv3d_model):
        fi = FaultInjection(conv3d_model, input_shape=(1, 2, 8, 8))
        fault = WeightFault(layer=0, out_channel=1, in_channel=0, depth=0, height=2, width=2, value=30)
        corrupted_model = fi.declare_weight_fault_injection([fault])
        assert not np.array_equal(
            corrupted_model.get_submodule("conv").weight.data,
            conv3d_model.get_submodule("conv").weight.data,
        )
