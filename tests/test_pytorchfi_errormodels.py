"""Unit tests for the value-level error models."""

import numpy as np
import pytest

from repro.pytorchfi import (
    BitFlipErrorModel,
    RandomValueErrorModel,
    StuckAtErrorModel,
    build_error_model,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBitFlipErrorModel:
    def test_fixed_position_replays_exactly(self, rng):
        model = BitFlipErrorModel(bit_position=31)
        corrupted, info = model.corrupt(2.5, rng)
        assert corrupted == -2.5
        assert info["bit_position"] == 31
        assert info["flip_direction"] == "0->1"

    def test_sampled_position_within_range(self, rng):
        model = BitFlipErrorModel(bit_range=(23, 30))
        for _ in range(50):
            assert 23 <= model.sample_bit(rng) <= 30

    def test_corrupt_changes_value(self, rng):
        model = BitFlipErrorModel(bit_range=(0, 31))
        corrupted, _ = model.corrupt(1.0, rng)
        assert corrupted != 1.0

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            BitFlipErrorModel(bit_range=(10, 5))
        with pytest.raises(ValueError):
            BitFlipErrorModel(bit_range=(-1, 5))

    def test_describe_round_trips_through_builder(self):
        model = BitFlipErrorModel(bit_range=(23, 30), dtype="float16", bit_position=None)
        rebuilt = build_error_model(model.describe())
        assert isinstance(rebuilt, BitFlipErrorModel)
        assert rebuilt.bit_range == (23, 30)
        assert rebuilt.dtype == "float16"


class TestStuckAtErrorModel:
    def test_stuck_at_one_forces_bit(self, rng):
        model = StuckAtErrorModel(bit_position=31, stuck_value=1)
        corrupted, info = model.corrupt(4.0, rng)
        assert corrupted == -4.0
        assert info["flip_direction"] == "0->1"

    def test_stuck_at_value_already_set_is_noop(self, rng):
        model = StuckAtErrorModel(bit_position=31, stuck_value=1)
        corrupted, info = model.corrupt(-4.0, rng)
        assert corrupted == -4.0
        assert info["flip_direction"] == "1->1"

    def test_invalid_stuck_value(self):
        with pytest.raises(ValueError):
            StuckAtErrorModel(stuck_value=2)

    def test_builder(self):
        model = build_error_model({"name": "stuck_at", "bit_position": 30, "stuck_value": 0})
        assert isinstance(model, StuckAtErrorModel)
        assert model.stuck_value == 0


class TestRandomValueErrorModel:
    def test_value_within_range(self, rng):
        model = RandomValueErrorModel(min_value=-2.0, max_value=2.0)
        for _ in range(50):
            corrupted, info = model.corrupt(0.0, rng)
            assert -2.0 <= corrupted <= 2.0
            assert info["bit_position"] is None

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            RandomValueErrorModel(min_value=1.0, max_value=-1.0)

    def test_builder(self):
        model = build_error_model({"name": "random_value", "min_value": 0.0, "max_value": 5.0})
        assert isinstance(model, RandomValueErrorModel)
        assert model.max_value == 5.0


class TestBuilder:
    def test_default_is_bitflip(self):
        assert isinstance(build_error_model({}), BitFlipErrorModel)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_error_model({"name": "cosmic_ray"})
