"""Unit tests for the IEEE-754 bit manipulation primitives."""

import math

import numpy as np
import pytest

from repro.tensor import (
    BitFlipRecord,
    bit_width,
    bits_to_float,
    flip_bit,
    flip_bit_scalar,
    float_to_bits,
    format_bits,
    get_bit,
    set_bit,
)


class TestFloatBitsRoundTrip:
    def test_float32_round_trip(self):
        values = np.array([0.0, 1.0, -1.5, 3.14159, 1e-30, 1e30], dtype=np.float32)
        bits = float_to_bits(values, "float32")
        assert bits.dtype == np.uint32
        restored = bits_to_float(bits, "float32")
        np.testing.assert_array_equal(values, restored)

    def test_float16_round_trip(self):
        values = np.array([0.0, 1.0, -2.5, 0.333], dtype=np.float16)
        restored = bits_to_float(float_to_bits(values, "float16"), "float16")
        np.testing.assert_array_equal(values, restored)

    def test_scalar_input(self):
        bits = float_to_bits(1.0, "float32")
        assert int(bits) == 0x3F800000

    def test_known_pattern_minus_two(self):
        # -2.0 in IEEE-754 float32 is 0xC0000000.
        assert int(float_to_bits(-2.0, "float32")) == 0xC0000000


class TestGetSetBit:
    def test_get_sign_bit(self):
        assert int(get_bit(-1.0, 31, "float32")) == 1
        assert int(get_bit(1.0, 31, "float32")) == 0

    def test_get_exponent_bits_of_one(self):
        # 1.0 = exponent 127 = 0111_1111 in bits 23..30.
        assert int(get_bit(1.0, 30, "float32")) == 0
        for position in range(23, 30):
            assert int(get_bit(1.0, position, "float32")) == 1

    def test_set_bit_to_one(self):
        result = set_bit(0.0, 31, 1, "float32")
        assert float(result) == 0.0  # -0.0 compares equal to 0.0
        assert int(get_bit(result, 31, "float32")) == 1

    def test_set_bit_is_idempotent(self):
        once = set_bit(3.0, 30, 1, "float32")
        twice = set_bit(once, 30, 1, "float32")
        np.testing.assert_array_equal(once, twice)

    def test_set_bit_invalid_value(self):
        with pytest.raises(ValueError):
            set_bit(1.0, 5, 2, "float32")


class TestFlipBit:
    def test_flip_sign_bit_negates(self):
        flipped = flip_bit(np.array([1.0, -3.5], dtype=np.float32), 31, "float32")
        np.testing.assert_allclose(flipped, [-1.0, 3.5])

    def test_flip_msb_exponent_explodes_value(self):
        # Flipping exponent bit 30 of 1.0 gives 2^128-ish magnitude (3.4e38).
        flipped = float(flip_bit(1.0, 30, "float32"))
        assert flipped > 1e38

    def test_flip_mantissa_bit_small_change(self):
        flipped = float(flip_bit(1.0, 0, "float32"))
        assert flipped != 1.0
        assert abs(flipped - 1.0) < 1e-6

    def test_double_flip_restores_original(self):
        values = np.array([0.1, -7.25, 1e10], dtype=np.float32)
        for position in [0, 10, 23, 30, 31]:
            restored = flip_bit(flip_bit(values, position), position)
            np.testing.assert_array_equal(values, restored)

    def test_flip_does_not_modify_input(self):
        values = np.array([1.0, 2.0], dtype=np.float32)
        flip_bit(values, 30)
        np.testing.assert_array_equal(values, [1.0, 2.0])

    def test_invalid_bit_position_raises(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 32, "float32")
        with pytest.raises(ValueError):
            flip_bit(1.0, -1, "float32")

    def test_float16_flip(self):
        flipped = float(flip_bit(np.float16(1.0), 14, "float16"))
        assert flipped > 100  # exponent MSB flip


class TestFlipBitScalar:
    def test_record_fields(self):
        record = flip_bit_scalar(1.0, 31, "float32")
        assert isinstance(record, BitFlipRecord)
        assert record.original_value == 1.0
        assert record.corrupted_value == -1.0
        assert record.bit_position == 31
        assert record.flip_direction == "0->1"

    def test_direction_one_to_zero(self):
        record = flip_bit_scalar(-1.0, 31, "float32")
        assert record.flip_direction == "1->0"
        assert record.corrupted_value == 1.0

    def test_as_dict(self):
        record = flip_bit_scalar(2.0, 10, "float32")
        data = record.as_dict()
        assert set(data) == {"bit_position", "original_value", "corrupted_value", "flip_direction"}

    def test_nan_outcome_possible(self):
        # Setting all exponent bits of a value with some mantissa yields NaN.
        value = 1.5
        for position in range(23, 31):
            value = float(set_bit(value, position, 1))
        assert math.isnan(value)


class TestFormatting:
    def test_bit_width(self):
        assert bit_width("float32") == 32
        assert bit_width("float16") == 16
        assert bit_width("int8") == 8

    def test_format_bits_structure(self):
        formatted = format_bits(1.0, "float32")
        sign, exponent, mantissa = formatted.split("|")
        assert sign == "0"
        assert len(exponent) == 8
        assert len(mantissa) == 23
        assert exponent == "01111111"

    def test_format_bits_int(self):
        formatted = format_bits(3, "int8")
        assert "|" not in formatted
        assert len(formatted) == 8
