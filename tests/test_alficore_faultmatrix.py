"""Unit tests for fault matrix generation and persistence (Table I)."""

import numpy as np
import pytest

from repro.alficore import FaultMatrix, FaultMatrixGenerator, NEURON_ROWS, WEIGHT_ROWS, default_scenario
from repro.pytorchfi import FaultInjection
from repro.pytorchfi.core import UNSET


@pytest.fixture
def lenet_fi(lenet_model):
    return FaultInjection(lenet_model, input_shape=(3, 32, 32))


class TestFaultMatrixContainer:
    def test_row_labels(self):
        matrix = FaultMatrix(np.zeros((7, 3)), "neurons", {})
        assert matrix.rows == NEURON_ROWS
        matrix = FaultMatrix(np.zeros((7, 3)), "weights", {})
        assert matrix.rows == WEIGHT_ROWS

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            FaultMatrix(np.zeros((6, 3)), "neurons", {})

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            FaultMatrix(np.zeros((7, 3)), "biases", {})

    def test_column_access(self):
        matrix = FaultMatrix(np.arange(14).reshape(7, 2), "neurons", {})
        np.testing.assert_array_equal(matrix.column(1), [1, 3, 5, 7, 9, 11, 13])
        with pytest.raises(IndexError):
            matrix.column(2)

    def test_columns_submatrix(self):
        matrix = FaultMatrix(np.arange(21).reshape(7, 3), "neurons", {})
        sub = matrix.columns([0, 2])
        assert sub.shape == (7, 2)

    def test_conversion_guards(self):
        neurons = FaultMatrix(np.zeros((7, 2)), "neurons", {})
        weights = FaultMatrix(np.zeros((7, 2)), "weights", {})
        with pytest.raises(ValueError):
            neurons.to_weight_faults([0])
        with pytest.raises(ValueError):
            weights.to_neuron_faults([0])


class TestGeneration:
    def test_number_of_columns(self, lenet_fi):
        scenario = default_scenario(dataset_size=5, num_runs=2, max_faults_per_image=3)
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        assert matrix.num_faults == scenario.total_faults == 30
        assert matrix.matrix.shape == (7, 30)

    def test_neuron_coordinates_within_layer_shapes(self, lenet_fi):
        scenario = default_scenario(dataset_size=50, injection_target="neurons")
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        for column_index in range(matrix.num_faults):
            fault = matrix.to_neuron_faults([column_index])[0]
            info = lenet_fi.get_layer_info(fault.layer)
            shape = info.output_shape
            assert 0 <= fault.layer < lenet_fi.num_layers
            if len(shape) == 2:
                assert 0 <= fault.channel < shape[1]
                assert fault.height == UNSET and fault.width == UNSET
            else:
                assert 0 <= fault.channel < shape[1]
                assert 0 <= fault.height < shape[2]
                assert 0 <= fault.width < shape[3]

    def test_weight_coordinates_within_weight_shapes(self, lenet_fi):
        scenario = default_scenario(dataset_size=50, injection_target="weights")
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        for column_index in range(matrix.num_faults):
            fault = matrix.to_weight_faults([column_index])[0]
            shape = lenet_fi.get_layer_info(fault.layer).weight_shape
            assert 0 <= fault.out_channel < shape[0]
            assert 0 <= fault.in_channel < shape[1]
            if len(shape) == 4:
                assert 0 <= fault.height < shape[2]
                assert 0 <= fault.width < shape[3]

    def test_bitflip_values_within_bit_range(self, lenet_fi):
        scenario = default_scenario(dataset_size=40, rnd_value_type="bitflip", rnd_bit_range=(23, 30))
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        values = matrix.matrix[6, :]
        assert values.min() >= 23 and values.max() <= 30
        np.testing.assert_array_equal(values, values.astype(int))

    def test_number_values_within_range(self, lenet_fi):
        scenario = default_scenario(
            dataset_size=40, rnd_value_type="number", rnd_value_min=-0.5, rnd_value_max=0.5
        )
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        values = matrix.matrix[6, :]
        assert values.min() >= -0.5 and values.max() <= 0.5

    def test_layer_range_respected(self, lenet_fi):
        scenario = default_scenario(dataset_size=40, layer_range=(0, 1))
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        assert set(np.unique(matrix.matrix[1, :])) <= {0.0, 1.0}

    def test_layer_range_exceeding_model_raises(self, lenet_fi):
        scenario = default_scenario(layer_range=(0, 99))
        with pytest.raises(ValueError):
            FaultMatrixGenerator(lenet_fi, scenario)

    def test_same_seed_same_matrix(self, lenet_fi):
        scenario = default_scenario(dataset_size=10, random_seed=5)
        first = FaultMatrixGenerator(lenet_fi, scenario).generate()
        second = FaultMatrixGenerator(lenet_fi, scenario).generate()
        assert first == second

    def test_different_seed_different_matrix(self, lenet_fi):
        first = FaultMatrixGenerator(lenet_fi, default_scenario(dataset_size=10, random_seed=1)).generate()
        second = FaultMatrixGenerator(lenet_fi, default_scenario(dataset_size=10, random_seed=2)).generate()
        assert first != second

    def test_batch_row_for_per_image_policy(self, lenet_fi):
        scenario = default_scenario(dataset_size=6, batch_size=2, inj_policy="per_image")
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        batch_rows = matrix.matrix[0, :].astype(int)
        expected = [i % 2 for i in range(6)]
        np.testing.assert_array_equal(batch_rows, expected)

    def test_metadata_contains_scenario(self, lenet_fi):
        scenario = default_scenario(dataset_size=4, model_name="lenet")
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        assert matrix.metadata["model_name"] == "lenet"
        assert matrix.metadata["scenario"]["dataset_size"] == 4
        assert len(matrix.metadata["layer_names"]) == lenet_fi.num_layers

    def test_invalid_fault_count(self, lenet_fi):
        generator = FaultMatrixGenerator(lenet_fi, default_scenario())
        with pytest.raises(ValueError):
            generator.generate(0)


class TestPersistence:
    def test_save_load_round_trip(self, lenet_fi, tmp_path):
        scenario = default_scenario(dataset_size=8, injection_target="weights")
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        path = matrix.save(tmp_path / "faults.npz")
        loaded = FaultMatrix.load(path)
        assert loaded == matrix
        assert loaded.metadata["scenario"]["dataset_size"] == 8

    def test_load_without_suffix(self, lenet_fi, tmp_path):
        matrix = FaultMatrixGenerator(lenet_fi, default_scenario(dataset_size=3)).generate()
        matrix.save(tmp_path / "faults")
        loaded = FaultMatrix.load(tmp_path / "faults")
        assert loaded == matrix

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FaultMatrix.load(tmp_path / "nothing.npz")

    def test_reused_faults_reproduce_identical_corruption(self, lenet_model, lenet_fi, tmp_path):
        """The paper's key reuse property: the same stored fault set produces

        bit-identical corrupted weights in two separate experiments."""
        scenario = default_scenario(dataset_size=5, injection_target="weights")
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        path = matrix.save(tmp_path / "faults.npz")
        loaded = FaultMatrix.load(path)

        faults_a = matrix.to_weight_faults(range(matrix.num_faults))
        faults_b = loaded.to_weight_faults(range(loaded.num_faults))
        model_a = lenet_fi.declare_weight_fault_injection(faults_a)
        model_b = lenet_fi.declare_weight_fault_injection(faults_b)
        for (name_a, param_a), (name_b, param_b) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)


class TestVectorizedGeneration:
    """Satellite: vectorized generator vs the per-column reference path."""

    @pytest.mark.parametrize("target", ["neurons", "weights"])
    def test_vectorized_bit_identical_to_percolumn(self, lenet_fi, target):
        scenario = default_scenario(
            dataset_size=40, max_faults_per_image=3, injection_target=target, random_seed=31
        )
        vectorized = FaultMatrixGenerator(lenet_fi, scenario).generate()
        percolumn = FaultMatrixGenerator(lenet_fi, scenario).generate(method="percolumn")
        np.testing.assert_array_equal(vectorized.matrix, percolumn.matrix)

    @pytest.mark.parametrize("policy", ["per_image", "per_batch", "per_epoch"])
    def test_identity_holds_across_policies_and_batches(self, lenet_fi, policy):
        scenario = default_scenario(
            dataset_size=20,
            injection_target="neurons",
            inj_policy=policy,
            batch_size=4,
            random_seed=5,
        )
        vectorized = FaultMatrixGenerator(lenet_fi, scenario).generate(60)
        percolumn = FaultMatrixGenerator(lenet_fi, scenario).generate(60, method="percolumn")
        np.testing.assert_array_equal(vectorized.matrix, percolumn.matrix)

    def test_number_value_type_uses_reference_path(self, lenet_fi):
        scenario = default_scenario(
            dataset_size=10, injection_target="weights", rnd_value_type="number", random_seed=9
        )
        vectorized = FaultMatrixGenerator(lenet_fi, scenario).generate()
        percolumn = FaultMatrixGenerator(lenet_fi, scenario).generate(method="percolumn")
        np.testing.assert_array_equal(vectorized.matrix, percolumn.matrix)

    def test_unknown_method_rejected(self, lenet_fi):
        with pytest.raises(ValueError):
            FaultMatrixGenerator(lenet_fi, default_scenario(dataset_size=2)).generate(method="magic")

    @pytest.mark.parametrize("target", ["neurons", "weights"])
    def test_save_load_round_trip_per_target(self, lenet_fi, tmp_path, target):
        scenario = default_scenario(dataset_size=15, injection_target=target, random_seed=13)
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate()
        path = matrix.save(tmp_path / f"{target}_faults.npz")
        loaded = FaultMatrix.load(path)
        assert loaded == matrix
        assert loaded.injection_target == target
        np.testing.assert_array_equal(loaded.matrix, matrix.matrix)

    def test_partial_group_iteration_after_reload(self, lenet_model, lenet_fi, tmp_path):
        """A reloaded matrix whose width is not a multiple of the group size

        must still be consumed completely (final partial group included)."""
        from repro.alficore import ptfiwrap

        scenario = default_scenario(dataset_size=7, injection_target="weights", random_seed=17)
        matrix = FaultMatrixGenerator(lenet_fi, scenario).generate(7)
        path = matrix.save(tmp_path / "seven_faults.npz")

        replay = default_scenario(
            dataset_size=4,
            max_faults_per_image=3,
            injection_target="weights",
            fault_file=str(path),
            random_seed=17,
        )
        wrapper = ptfiwrap(lenet_model, scenario=replay)
        assert wrapper.num_fault_groups() == 3  # 3 + 3 + 1 (partial)
        with pytest.warns(RuntimeWarning, match="partial"):
            sessions = list(wrapper.get_fault_group_iter())
        assert len(sessions) == 3
        applied_counts = []
        for session in sessions:
            with session:
                applied_counts.append(len(session.applied_faults))
        assert applied_counts == [3, 3, 1]
