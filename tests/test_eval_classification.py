"""Unit tests for the classification KPIs (top-k, SDE/DUE rates)."""

import numpy as np
import pytest

from repro.eval import (
    FaultOutcome,
    classify_classification_outcome,
    evaluate_classification_campaign,
    outcome_rates,
    sde_rate,
    top_k_accuracy,
    top_k_predictions,
)


class TestTopK:
    def test_top_k_ordering(self):
        logits = np.array([[0.1, 3.0, 2.0, -1.0]])
        classes, probabilities = top_k_predictions(logits, k=3)
        np.testing.assert_array_equal(classes[0], [1, 2, 0])
        assert probabilities[0, 0] > probabilities[0, 1] > probabilities[0, 2]

    def test_probabilities_sum_below_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 10))
        _, probabilities = top_k_predictions(logits, k=10)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-6)

    def test_k_clipped_to_classes(self):
        classes, _ = top_k_predictions(np.zeros((2, 3)), k=10)
        assert classes.shape == (2, 3)

    def test_nan_logits_do_not_crash(self):
        logits = np.array([[np.nan, 1.0, 0.5]])
        classes, probabilities = top_k_predictions(logits, k=3)
        assert classes.shape == (1, 3)
        assert np.isfinite(probabilities[0, 0]) or probabilities[0, 0] == 0.0

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            top_k_predictions(np.zeros(5), k=1)

    def test_top1_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]])
        labels = [0, 1, 1]
        assert top_k_accuracy(logits, labels, k=1) == pytest.approx(2 / 3)

    def test_top5_accuracy_all_hit(self):
        logits = np.random.default_rng(0).normal(size=(10, 5))
        labels = np.random.default_rng(1).integers(0, 5, size=10)
        assert top_k_accuracy(logits, labels, k=5) == 1.0

    def test_accuracy_empty(self):
        assert top_k_accuracy(np.zeros((0, 3)), np.zeros(0), k=1) == 0.0

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), [1, 2, 3])


class TestOutcomeTaxonomy:
    def test_masked(self):
        assert classify_classification_outcome(3, 3) is FaultOutcome.MASKED

    def test_sde(self):
        assert classify_classification_outcome(3, 4) is FaultOutcome.SDE

    def test_due_takes_precedence(self):
        assert classify_classification_outcome(3, 4, nan_or_inf=True) is FaultOutcome.DUE

    def test_outcome_rates_sum_to_one(self):
        outcomes = [FaultOutcome.MASKED] * 5 + [FaultOutcome.SDE] * 3 + [FaultOutcome.DUE] * 2
        rates = outcome_rates(outcomes)
        assert rates["masked"] + rates["sde"] + rates["due"] == pytest.approx(1.0)
        assert rates["total"] == 10
        assert rates["sde"] == pytest.approx(0.3)

    def test_outcome_rates_empty(self):
        rates = outcome_rates([])
        assert rates["total"] == 0
        assert rates["sde"] == 0.0


class TestSdeRate:
    def test_identical_outputs_are_masked(self):
        logits = np.random.default_rng(0).normal(size=(8, 5))
        rates = sde_rate(logits, logits.copy())
        assert rates["masked"] == 1.0
        assert rates["sde"] == 0.0

    def test_flipped_top1_counts_as_sde(self):
        golden = np.array([[5.0, 0.0], [5.0, 0.0]])
        corrupted = np.array([[5.0, 0.0], [0.0, 5.0]])
        rates = sde_rate(golden, corrupted)
        assert rates["sde"] == pytest.approx(0.5)

    def test_nan_output_counts_as_due(self):
        golden = np.array([[5.0, 0.0]])
        corrupted = np.array([[np.nan, 0.0]])
        rates = sde_rate(golden, corrupted)
        assert rates["due"] == 1.0
        assert rates["sde"] == 0.0

    def test_external_due_flags_override(self):
        golden = np.array([[5.0, 0.0]])
        corrupted = np.array([[0.0, 5.0]])
        rates = sde_rate(golden, corrupted, due_flags=np.array([True]))
        assert rates["due"] == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sde_rate(np.zeros((2, 3)), np.zeros((3, 3)))


class TestCampaignEvaluation:
    def test_full_campaign_summary(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 5, size=20)
        golden = np.zeros((20, 5))
        golden[np.arange(20), labels] = 10.0
        corrupted = golden.copy()
        corrupted[:4, :] = 0.0
        corrupted[np.arange(4), (labels[:4] + 1) % 5] = 10.0  # 4 SDEs
        corrupted[4, :] = np.nan  # 1 DUE
        result = evaluate_classification_campaign(golden, corrupted, labels, model_name="demo")
        assert result.model_name == "demo"
        assert result.num_inferences == 20
        assert result.golden_top1_accuracy == 1.0
        assert result.sde_rate == pytest.approx(4 / 20)
        assert result.due_rate == pytest.approx(1 / 20)
        assert result.masked_rate == pytest.approx(15 / 20)
        assert len(result.outcomes) == 20

    def test_as_dict_is_json_friendly(self):
        import json

        golden = np.ones((3, 4))
        result = evaluate_classification_campaign(golden, golden, [0, 1, 2])
        json.dumps(result.as_dict())


class TestStableTopKOrder:
    """argpartition fast path must equal the stable full-argsort reference."""

    @staticmethod
    def _reference(logits, k):
        logits = np.asarray(logits, dtype=np.float64)
        shifted = logits - np.nanmax(logits, axis=1, keepdims=True)
        with np.errstate(invalid="ignore", over="ignore"):
            exp = np.exp(shifted)
            denom = np.nansum(exp, axis=1, keepdims=True)
            probabilities = np.where(denom > 0, exp / denom, 0.0)
        keys = np.where(np.isnan(probabilities), -np.inf, probabilities)
        return np.argsort(-keys, axis=1, kind="stable")[:, : min(k, logits.shape[1])]

    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_random_logits_match_stable_argsort(self, k):
        logits = np.random.default_rng(3).normal(size=(64, 10))
        classes, _ = top_k_predictions(logits, k=k)
        np.testing.assert_array_equal(classes, self._reference(logits, k))

    def test_tied_probabilities_keep_index_order(self):
        # Ties straddling the k-th position force the stable fallback.
        logits = np.array(
            [
                [1.0, 2.0, 2.0, 2.0, 0.0],
                [5.0, 5.0, 5.0, 5.0, 5.0],
                [0.0, 0.0, 1.0, 0.0, 0.0],
            ]
        )
        classes, _ = top_k_predictions(logits, k=2)
        np.testing.assert_array_equal(classes, self._reference(logits, 2))
        np.testing.assert_array_equal(classes[1], [0, 1])

    def test_nan_rows_sort_last_in_index_order(self):
        logits = np.array(
            [
                [np.nan, np.nan, np.nan, np.nan],
                [1.0, np.nan, 2.0, np.nan],
                [np.inf, 1.0, 2.0, -np.inf],
            ]
        )
        classes, _ = top_k_predictions(logits, k=3)
        np.testing.assert_array_equal(classes, self._reference(logits, 3))
        np.testing.assert_array_equal(classes[0], [0, 1, 2])

    def test_large_class_count_matches(self):
        logits = np.random.default_rng(9).normal(size=(8, 1000))
        classes, _ = top_k_predictions(logits, k=5)
        np.testing.assert_array_equal(classes, self._reference(logits, 5))

    def test_k_zero_returns_empty(self):
        logits = np.random.default_rng(4).normal(size=(3, 5))
        classes, probabilities = top_k_predictions(logits, k=0)
        assert classes.shape == (3, 0)
        assert probabilities.shape == (3, 0)
