"""Prefix-reuse faulty inference and the epoch-invariant golden cache.

The contract under test: suffix-only faulty forwards (and golden passes
served from the cache) are *bit-identical* to the plain full-forward path —
same stream-file bytes, same logits, same KPI summaries — for weight and
neuron error models, with and without a hardened resil lane, serial and
sharded.
"""

import numpy as np
import pytest

from repro.alficore import (
    CampaignResultWriter,
    CampaignRunner,
    GoldenCache,
    TestErrorModels_ImgClass,
    TestErrorModels_ObjDet,
    apply_protection,
    collect_activation_bounds,
    default_scenario,
)
from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.models import lenet5, resnet18
from repro.models.detection import yolov3_tiny
from repro.models.pretrained import fit_classifier_head
from repro.tensor.bitops import float_to_bits

TestErrorModels_ImgClass.__test__ = False
TestErrorModels_ObjDet.__test__ = False


@pytest.fixture(scope="module")
def fitted_model_and_dataset():
    dataset = SyntheticClassificationDataset(num_samples=10, num_classes=10, noise=0.2, seed=4)
    model = fit_classifier_head(lenet5(seed=2), dataset, 10)
    return model, dataset


def _stream_bytes(output_files, tags):
    return {tag: open(output_files[tag], "rb").read() for tag in tags}


class TestSuffixOnlyBitExactness:
    @pytest.mark.parametrize("target", ["weights", "neurons"])
    def test_streams_byte_identical_to_full_forward(
        self, fitted_model_and_dataset, tmp_path, target
    ):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target=target, rnd_bit_range=(23, 30), random_seed=21,
            num_runs=2, model_name="reuse",
        )

        def run(sub, reuse):
            writer = CampaignResultWriter(tmp_path / sub, campaign_name="reuse")
            return CampaignRunner(
                model, dataset, scenario=scenario, writer=writer, prefix_reuse=reuse
            ).run()

        full = run(f"{target}_full", False)
        reused = run(f"{target}_reuse", True)
        tags = ("golden_csv", "corrupted_csv", "applied_faults")
        assert _stream_bytes(full.output_files, tags) == _stream_bytes(reused.output_files, tags)
        full_kpis, reused_kpis = full.as_dict(), reused.as_dict()
        full_kpis.pop("output_files")
        reused_kpis.pop("output_files")
        assert full_kpis == reused_kpis

    @pytest.mark.parametrize("target", ["weights", "neurons"])
    def test_logits_bit_identical_per_error_model(self, fitted_model_and_dataset, target):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target=target, rnd_bit_range=(23, 30), random_seed=22
        )

        def run(reuse):
            return TestErrorModels_ImgClass(
                model=model, model_name="bits", dataset=dataset, scenario=scenario,
                prefix_reuse=reuse,
            ).test_rand_ImgClass_SBFs_inj(num_faults=2)

        full, reused = run(False), run(True)
        assert full.corrupted_logits.tobytes() == reused.corrupted_logits.tobytes()
        assert full.golden_logits.tobytes() == reused.golden_logits.tobytes()
        assert full.due_flags.tolist() == reused.due_flags.tolist()
        assert full.corrupted.as_dict() == reused.corrupted.as_dict()

    def test_residual_model_with_atomic_blocks(self, fitted_model_and_dataset):
        _, dataset = fitted_model_and_dataset
        model = fit_classifier_head(resnet18(num_classes=10, seed=3), dataset, 10)
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=23
        )
        full = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=False).run()
        reused = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=True).run()
        assert full.as_dict() == reused.as_dict()

    def test_weights_restored_bit_exactly_with_prefix_reuse(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        bits_before = {n: float_to_bits(p.data).copy() for n, p in model.named_parameters()}
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=24, num_runs=2
        )
        CampaignRunner(
            model, dataset, scenario=scenario, prefix_reuse=True, golden_cache=GoldenCache()
        ).run()
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(bits_before[name], float_to_bits(param.data))

    def test_resil_lane_bit_identical(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        calibration = np.stack([dataset[i][0] for i in range(len(dataset))])
        bounds = collect_activation_bounds(model, [calibration])
        hardened = apply_protection(model, bounds, "ranger")
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(30, 30), random_seed=25
        )

        def run(sub, reuse, cache):
            return TestErrorModels_ImgClass(
                model=model, resil_model=hardened, model_name="resil", dataset=dataset,
                scenario=scenario, output_dir=tmp_path / sub,
                prefix_reuse=reuse, golden_cache=GoldenCache() if cache else None,
            ).test_rand_ImgClass_SBFs_inj(num_faults=1, num_runs=2)

        full = run("full", False, False)
        reused = run("reuse", True, True)
        assert full.resil is not None and reused.resil is not None
        assert full.resil_logits.tobytes() == reused.resil_logits.tobytes()
        assert full.corrupted_logits.tobytes() == reused.corrupted_logits.tobytes()
        assert open(full.output_files["resil_csv"], "rb").read() == open(
            reused.output_files["resil_csv"], "rb").read()

    def test_registration_order_differs_from_execution_order(self):
        # Layer indices follow registration order; here the head is
        # registered before the body but executes last.  A group faulting
        # both layers must resume from the body's (earlier) segment, or the
        # patched body would never be re-executed.
        from repro import nn
        from repro.alficore.campaign import CampaignCore, ClassificationTask

        class OutOfOrderNet(nn.Module):
            def __init__(self, seed=0):
                super().__init__()
                rng = np.random.default_rng(seed)
                self.head = nn.Linear(32, 10, rng=rng)  # registered first, runs last
                self.flatten = nn.Flatten()
                self.body = nn.Linear(3 * 32 * 32, 32, rng=rng)

            def forward(self, x):
                return self.head(self.body(self.flatten(x)))

        dataset = SyntheticClassificationDataset(num_samples=8, num_classes=10, noise=0.2, seed=9)
        model = OutOfOrderNet().eval()
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=34, num_runs=2
        )
        core = CampaignCore(model, dataset, ClassificationTask(), scenario=scenario)
        images = np.stack([dataset[i][0] for i in range(2)])
        plan = core._plan_for(model, images)
        body_segment = plan.segment_for("body")
        head_segment = plan.segment_for("head")
        assert body_segment < head_segment  # execution order, not registration

        class FakeGroup:
            first_faulted_layer = 0  # the head, by registration index
            faulted_layers = [0, 1]  # head and body

        resume = core._resume_index(plan, plan, core.wrapper, FakeGroup())
        assert resume == body_segment

        full = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=False).run()
        reused = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=True).run()
        assert full.as_dict() == reused.as_dict()

    def test_detection_campaign_unchanged_by_prefix_reuse(self, tmp_path):
        dataset = CocoLikeDetectionDataset(num_samples=4, num_classes=5, seed=6)
        model = yolov3_tiny(num_classes=5, seed=0).eval()
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=26
        )

        def run(sub, reuse):
            return TestErrorModels_ObjDet(
                model=model, model_name="det", dataset=dataset, scenario=scenario,
                output_dir=tmp_path / sub, prefix_reuse=reuse,
            ).test_rand_ObjDet_SBFs_inj(num_faults=1)

        full, reused = run("full", False), run("reuse", True)
        tags = ("golden_json", "corrupted_json", "applied_faults")
        assert _stream_bytes(full.output_files, tags) == _stream_bytes(reused.output_files, tags)
        assert full.corrupted.as_dict() == reused.corrupted.as_dict()


class TestGoldenCache:
    def test_per_epoch_cache_on_vs_off_byte_identical_streams(
        self, fitted_model_and_dataset, tmp_path
    ):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=27,
            inj_policy="per_epoch", batch_size=4, num_runs=3, model_name="cache",
        )

        def run(sub, cache):
            writer = CampaignResultWriter(tmp_path / sub, campaign_name="cache")
            return CampaignRunner(
                model, dataset, scenario=scenario, writer=writer,
                prefix_reuse=True, golden_cache=cache,
            ).run()

        cache = GoldenCache()
        cold = run("off", None)
        warm = run("on", cache)
        tags = ("golden_csv", "corrupted_csv", "applied_faults")
        assert _stream_bytes(cold.output_files, tags) == _stream_bytes(warm.output_files, tags)
        # Epochs 2 and 3 must be served from the epoch-invariant entries.
        assert cache.hits > 0
        stats = cache.stats()
        assert stats["entries"] > 0 and stats["nbytes"] > 0

    def test_cache_reuse_across_campaigns_via_spillover(
        self, fitted_model_and_dataset, tmp_path
    ):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=28, num_runs=2
        )
        spill = tmp_path / "spill"
        baseline = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=True).run()
        first = CampaignRunner(
            model, dataset, scenario=scenario, prefix_reuse=True,
            golden_cache=GoldenCache(spill_dir=spill),
        ).run()
        # A fresh in-memory cache sharing the spill dir starts warm, as a
        # shard process reusing another shard's golden passes would.
        second_cache = GoldenCache(spill_dir=spill)
        second = CampaignRunner(
            model, dataset, scenario=scenario, prefix_reuse=True, golden_cache=second_cache
        ).run()
        assert second_cache.hits > 0
        assert baseline.as_dict() == first.as_dict() == second.as_dict()

    def test_stale_spillover_entries_never_match_changed_weights(
        self, fitted_model_and_dataset, tmp_path
    ):
        # Spillover directories outlive a campaign (e.g. reruns into the
        # same output dir): entries recorded for different weights must miss,
        # not be served as golden truth.
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=33, num_runs=2
        )
        spill = tmp_path / "spill"
        CampaignRunner(
            model, dataset, scenario=scenario, prefix_reuse=True,
            golden_cache=GoldenCache(spill_dir=spill),
        ).run()

        mutated = model.clone()
        first_param = next(iter(mutated.parameters()))
        first_param.data[...] = first_param.data * 1.5
        baseline = CampaignRunner(mutated, dataset, scenario=scenario, prefix_reuse=False).run()
        stale_cache = GoldenCache(spill_dir=spill)
        reused = CampaignRunner(
            mutated, dataset, scenario=scenario, prefix_reuse=True, golden_cache=stale_cache
        ).run()
        assert baseline.as_dict() == reused.as_dict()
        # The old entries were keyed under the old weight fingerprint.
        assert stale_cache.misses > 0

    def test_tiny_budget_evicts_but_stays_correct(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=29, num_runs=2
        )
        tiny = GoldenCache(byte_budget=1)  # evicts everything but the newest entry
        baseline = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=True).run()
        constrained = CampaignRunner(
            model, dataset, scenario=scenario, prefix_reuse=True, golden_cache=tiny
        ).run()
        assert len(tiny) <= 2
        assert baseline.as_dict() == constrained.as_dict()

    def test_neuron_campaign_with_cache_matches_baseline(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="neurons", random_seed=30, num_runs=2)
        baseline = CampaignRunner(model, dataset, scenario=scenario, prefix_reuse=False).run()
        cached = CampaignRunner(
            model, dataset, scenario=scenario, prefix_reuse=True, golden_cache=GoldenCache()
        ).run()
        assert baseline.as_dict() == cached.as_dict()

    def test_stale_spillover_entries_never_match_changed_dataset(
        self, fitted_model_and_dataset, tmp_path
    ):
        # Same ids, same length, different pixels: the per-batch image
        # digest in the cache key must prevent stale spillover hits.
        model, _ = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", rnd_bit_range=(23, 30), random_seed=35, num_runs=2
        )
        spill = tmp_path / "spill"
        old_dataset = SyntheticClassificationDataset(num_samples=8, num_classes=10, noise=0.2, seed=11)
        CampaignRunner(
            model, old_dataset, scenario=scenario, prefix_reuse=True,
            golden_cache=GoldenCache(spill_dir=spill),
        ).run()
        new_dataset = SyntheticClassificationDataset(num_samples=8, num_classes=10, noise=0.2, seed=12)
        baseline = CampaignRunner(model, new_dataset, scenario=scenario, prefix_reuse=False).run()
        reused = CampaignRunner(
            model, new_dataset, scenario=scenario, prefix_reuse=True,
            golden_cache=GoldenCache(spill_dir=spill),
        ).run()
        assert baseline.as_dict() == reused.as_dict()

    def test_single_epoch_campaign_drops_useless_in_memory_cache(
        self, fitted_model_and_dataset, tmp_path
    ):
        # num_runs=1 visits every batch once: an in-memory cache can never
        # hit and is dropped; a spill directory keeps it (cross-run reuse).
        from repro.alficore.campaign import CampaignCore, ClassificationTask

        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", random_seed=36, num_runs=1)
        dropped = CampaignCore(
            model, dataset, ClassificationTask(), scenario=scenario, golden_cache=GoldenCache()
        )
        assert dropped.golden_cache is None
        kept = CampaignCore(
            model, dataset, ClassificationTask(), scenario=scenario,
            golden_cache=GoldenCache(spill_dir=tmp_path / "spill"),
        )
        assert kept.golden_cache is not None

    def test_cache_rejects_invalid_budget(self):
        with pytest.raises(ValueError):
            GoldenCache(byte_budget=0)
