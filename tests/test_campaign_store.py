"""Unit tests for the content-addressed campaign store layer.

Covers the commit/lookup lifecycle, the demote-to-pending semantics for
every flavor of defective point directory, the read-only skip guarantee
(bytes + mtimes untouched), and the sweep manifest's crash-safe idiom.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import (
    Artifacts,
    CampaignStore,
    Experiment,
    StoreError,
    SweepManifest,
    run_sweep,
)
from repro.experiments.campaigns.store import canonical_spec_document, point_run_id


def sweep_builder(images=6, axes=None):
    return (
        Experiment.builder()
        .name("store-test")
        .model("lenet5", num_classes=10, seed=0)
        .dataset(
            "synthetic-classification",
            num_samples=images, num_classes=10, noise=0.25, seed=1,
        )
        .scenario(
            injection_target="weights", rnd_bit_range=(23, 30),
            random_seed=3, model_name="lenet5", dataset_size=images,
        )
        .sweep(axes=axes or {"scenario.layer_range": [[0, 0]]})
    )


@pytest.fixture(scope="module")
def committed_store(tmp_path_factory):
    """One executed single-point sweep, shared by the read-only tests."""
    store = CampaignStore(tmp_path_factory.mktemp("campaigns") / "store")
    result = run_sweep(sweep_builder().build(), store=store)
    assert result.executed == 1
    return store, result.outcomes[0].run_id


def _snapshot(directory: Path) -> dict[str, tuple[int, bytes]]:
    return {
        str(path.relative_to(directory)): (path.stat().st_mtime_ns, path.read_bytes())
        for path in sorted(directory.rglob("*"))
        if path.is_file()
    }


class TestLookup:
    def test_hit_returns_point_with_summary_and_files(self, committed_store):
        store, run_id = committed_store
        point = store.lookup(run_id)
        assert point is not None
        assert point.run_id == run_id
        assert "corrupted" in point.summary
        for path in point.output_files.values():
            assert Path(path).is_file()

    def test_missing_point_is_none(self, committed_store):
        store, _ = committed_store
        assert store.lookup("0" * 16) is None

    def test_completed_run_ids_lists_committed_points(self, committed_store):
        store, run_id = committed_store
        assert store.completed_run_ids() == [run_id]

    def test_lookup_is_read_only(self, committed_store):
        store, run_id = committed_store
        before = _snapshot(store.point_dir(run_id))
        assert store.lookup(run_id) is not None
        assert _snapshot(store.point_dir(run_id)) == before


class TestDemoteToPending:
    """Every defective point directory reads as 'not committed'."""

    @pytest.fixture()
    def store(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        result = run_sweep(sweep_builder().build(), store=store)
        return store, result.outcomes[0].run_id

    def test_truncated_point_json(self, store):
        store, run_id = store
        marker = store.point_dir(run_id) / "point.json"
        marker.write_text(marker.read_text()[: len(marker.read_text()) // 2])
        assert store.lookup(run_id) is None

    def test_digest_mismatch_forces_recompute(self, store):
        store, run_id = store
        marker = store.point_dir(run_id) / "point.json"
        document = json.loads(marker.read_text())
        # Tamper with the result-determining content but keep the address.
        document["canonical_spec"]["scenario"]["random_seed"] += 1
        marker.write_text(json.dumps(document))
        assert store.lookup(run_id) is None
        result = run_sweep(sweep_builder().build(), store=store)
        assert result.executed == 1  # recomputed, not served from the store

    def test_wrong_schema_version(self, store):
        store, run_id = store
        marker = store.point_dir(run_id) / "point.json"
        document = json.loads(marker.read_text())
        document["schema_version"] = 999
        marker.write_text(json.dumps(document))
        assert store.lookup(run_id) is None

    def test_missing_record_file(self, store):
        store, run_id = store
        point = store.lookup(run_id)
        os.unlink(next(iter(point.output_files.values())))
        assert store.lookup(run_id) is None

    def test_missing_state_pickle(self, store):
        store, run_id = store
        os.unlink(store.point_dir(run_id) / "point_state.pkl")
        assert store.lookup(run_id) is None

    def test_corrupt_state_pickle_fails_lazy_load_loudly(self, store):
        store, run_id = store
        (store.point_dir(run_id) / "point_state.pkl").write_bytes(b"not a pickle")
        point = store.lookup(run_id)  # the commit marker itself is intact
        assert point is not None
        with pytest.raises(StoreError, match="no readable state"):
            point.load_result()

    def test_demoted_point_is_recomputed_on_rerun(self, store):
        store, run_id = store
        (store.point_dir(run_id) / "point.json").write_text("{}")
        result = run_sweep(sweep_builder().build(), store=store)
        assert result.executed == 1
        assert store.lookup(run_id) is not None


class TestSkipSemantics:
    def test_rerun_executes_zero_points_and_touches_nothing(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        spec = sweep_builder(axes={"scenario.layer_range": [[0, 0], [1, 1]]}).build()
        first = run_sweep(spec, store=store)
        assert (first.executed, first.cached) == (2, 0)
        snapshots = {
            outcome.run_id: _snapshot(store.point_dir(outcome.run_id))
            for outcome in first.outcomes
        }
        second = run_sweep(spec, store=store)
        assert (second.executed, second.cached) == (0, 2)
        for outcome in second.outcomes:
            assert _snapshot(store.point_dir(outcome.run_id)) == snapshots[outcome.run_id]

    def test_different_weights_do_not_share_points(self, tmp_path):
        from repro.models import lenet5

        store = CampaignStore(tmp_path / "store")
        spec = sweep_builder().build()
        dataset_params = spec.dataset.params
        from repro.experiments import DATASETS

        dataset = DATASETS.get(spec.dataset.name)(**dataset_params)
        first = run_sweep(
            spec, Artifacts(model=lenet5(num_classes=10, seed=0).eval(), dataset=dataset),
            store=store,
        )
        second = run_sweep(
            spec, Artifacts(model=lenet5(num_classes=10, seed=7).eval(), dataset=dataset),
            store=store,
        )
        assert first.outcomes[0].run_id != second.outcomes[0].run_id
        assert second.executed == 1  # different fingerprint, no false hit


class TestRunIdAddressing:
    def test_execution_knobs_do_not_change_the_address(self):
        spec = sweep_builder().build()
        document = canonical_spec_document(spec)
        assert "backend" not in document
        assert "execution" not in document
        assert "caching" not in document
        assert "output_dir" not in document
        assert "name" not in document
        workers4 = spec.copy()
        workers4.backend.workers = 4
        workers4.backend.name = "sharded"
        assert canonical_spec_document(workers4) == document

    def test_run_id_is_short_digest(self):
        spec = sweep_builder().build()
        run_id = point_run_id(canonical_spec_document(spec), "f" * 16)
        assert len(run_id) == 16
        assert run_id != point_run_id(canonical_spec_document(spec), "0" * 16)


class TestSweepManifest:
    CONFIG = {"sweep": {"axes": {"scenario.layer_range": [[0, 0]]}}, "run_ids": ["ab"]}

    def test_fresh_save_load_round_trip(self, tmp_path):
        path = tmp_path / "sweep_manifest.json"
        manifest = SweepManifest.fresh(path, self.CONFIG)
        manifest.mark_completed(0, "abcd", cached=False)
        loaded = SweepManifest.load(path)
        assert loaded is not None
        assert loaded.is_completed(0)
        assert loaded.completed[0] == {"run_id": "abcd", "cached": False}
        assert loaded.matches(self.CONFIG)

    def test_tampered_manifest_is_unreadable(self, tmp_path):
        path = tmp_path / "sweep_manifest.json"
        SweepManifest.fresh(path, self.CONFIG)
        document = json.loads(path.read_text())
        document["config"]["run_ids"] = ["cd"]
        path.write_text(json.dumps(document))
        assert SweepManifest.load(path) is None

    def test_mark_pending_drops_entry(self, tmp_path):
        path = tmp_path / "sweep_manifest.json"
        manifest = SweepManifest.fresh(path, self.CONFIG)
        manifest.mark_completed(0, "abcd", cached=True)
        manifest.mark_pending(0)
        assert not SweepManifest.load(path).is_completed(0)
