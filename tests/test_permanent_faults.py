"""Tests for the permanent (stuck-at) fault model path."""

import numpy as np

from repro.alficore import default_scenario, ptfiwrap
from repro.alficore.wrapper import _error_model_from_scenario
from repro.pytorchfi.errormodels import BitFlipErrorModel, StuckAtErrorModel
from repro.tensor import get_bit


class TestErrorModelSelection:
    def test_transient_bitflip_scenario(self):
        scenario = default_scenario(fault_persistence="transient", rnd_value_type="bitflip")
        assert isinstance(_error_model_from_scenario(scenario), BitFlipErrorModel)

    def test_permanent_bitflip_scenario_becomes_stuck_at(self):
        scenario = default_scenario(fault_persistence="permanent", rnd_value_type="bitflip")
        model = _error_model_from_scenario(scenario)
        assert isinstance(model, StuckAtErrorModel)

    def test_explicit_stuck_at_scenario(self):
        scenario = default_scenario(rnd_value_type="stuck_at", stuck_at_value=0)
        model = _error_model_from_scenario(scenario)
        assert isinstance(model, StuckAtErrorModel)
        assert model.stuck_value == 0


class TestPermanentWeightFaults:
    def test_stuck_at_one_forces_bit_in_corrupted_weight(self, lenet_model):
        scenario = default_scenario(
            dataset_size=5,
            injection_target="weights",
            fault_persistence="permanent",
            rnd_value_type="bitflip",
            rnd_bit_range=(30, 30),
            stuck_at_value=1,
            random_seed=9,
        )
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        corrupted = next(wrapper.get_fimodel_iter())
        record = wrapper.applied_faults[0]
        # The targeted bit of the corrupted value must read 1 (stuck-at-1).
        assert int(get_bit(record.corrupted_value, record.bit_position)) == 1
        assert record.bit_position == 30

    def test_stuck_at_is_idempotent_across_repeated_application(self, lenet_model):
        """A permanent fault applied twice gives the same corrupted value."""
        scenario = default_scenario(
            dataset_size=2,
            injection_target="weights",
            rnd_value_type="stuck_at",
            rnd_bit_range=(28, 30),
            stuck_at_value=1,
            random_seed=10,
        )
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        first = wrapper.corrupted_model_for_group(0)
        second = wrapper.corrupted_model_for_group(0)
        for (_, a), (_, b) in zip(first.named_parameters(), second.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_stuck_at_zero_never_increases_magnitude(self, lenet_model):
        scenario = default_scenario(
            dataset_size=10,
            injection_target="weights",
            rnd_value_type="stuck_at",
            rnd_bit_range=(23, 30),
            stuck_at_value=0,
            random_seed=11,
        )
        wrapper = ptfiwrap(lenet_model, scenario=scenario)
        list(wrapper.get_fimodel_iter())
        for record in wrapper.applied_faults:
            assert abs(record.corrupted_value) <= abs(record.original_value) + 1e-12
