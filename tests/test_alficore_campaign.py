"""Integration tests for the clone-free streaming campaign engine."""

import json

import numpy as np
import pytest

from repro.alficore import CampaignRunner, CampaignResultWriter, default_scenario
from repro.alficore.campaign import CampaignSummary
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.tensor.bitops import float_to_bits


@pytest.fixture(scope="module")
def fitted_model_and_dataset():
    dataset = SyntheticClassificationDataset(num_samples=10, num_classes=10, noise=0.2, seed=5)
    model = fit_classifier_head(lenet5(seed=1), dataset, 10)
    return model, dataset


class TestCampaignRunner:
    def test_weight_campaign_restores_model_bit_exactly(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        bits_before = {n: float_to_bits(p.data).copy() for n, p in model.named_parameters()}
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=3)
        runner = CampaignRunner(model, dataset, scenario=scenario)
        summary = runner.run()
        assert summary.num_inferences == len(dataset)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(bits_before[name], float_to_bits(param.data))

    def test_rates_sum_to_one(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", random_seed=4)
        summary = CampaignRunner(model, dataset, scenario=scenario).run()
        assert summary.masked_rate + summary.sde_rate + summary.due_rate == pytest.approx(1.0)
        assert summary.golden_top1_accuracy >= 0.9
        assert sum(summary.outcome_counts.values()) == summary.num_inferences

    def test_neuron_campaign_applies_one_fault_per_inference(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="neurons", random_seed=6)
        runner = CampaignRunner(model, dataset, scenario=scenario)
        summary = runner.run()
        assert summary.num_fault_groups == len(dataset)
        assert summary.num_applied_faults == len(dataset)
        # Shared injector log stays empty: records are collected per group.
        assert runner.wrapper.fault_injection.applied_faults == []

    def test_streams_written_and_readable(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights", max_faults_per_image=2, random_seed=7, model_name="stream"
        )
        writer = CampaignResultWriter(tmp_path, campaign_name="stream")
        summary = CampaignRunner(model, dataset, scenario=scenario, writer=writer).run()
        for key in ("meta", "faults", "applied_faults", "golden_csv", "corrupted_csv", "kpis"):
            assert key in summary.output_files

        corrupted_rows = writer.read_classification_csv("corrupted")
        golden_rows = writer.read_classification_csv("golden")
        assert len(corrupted_rows) == len(golden_rows) == len(dataset)
        positions = json.loads(corrupted_rows[0]["fault_positions"])
        assert len(positions) == 2
        assert {"layer", "bit_position", "original_value", "corrupted_value"} <= set(positions[0])

        applied = json.loads((tmp_path / "stream_applied_faults.json").read_text())
        assert len(applied) == 2 * len(dataset)
        kpis = json.loads((tmp_path / "stream_summary_kpis.json").read_text())
        assert kpis["num_inferences"] == len(dataset)

    def test_matches_clone_based_campaign_outcomes(self, fitted_model_and_dataset):
        """The clone-free engine must reproduce the legacy campaign KPIs."""
        from repro.alficore import TestErrorModels_ImgClass

        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=8)
        legacy = TestErrorModels_ImgClass(
            model=model, model_name="legacy", dataset=dataset, scenario=scenario
        )
        legacy_out = legacy.test_rand_ImgClass_SBFs_inj(num_faults=1)
        summary = CampaignRunner(model, dataset, scenario=scenario).run()
        assert summary.num_inferences == legacy_out.corrupted.num_inferences
        assert summary.masked_rate == pytest.approx(legacy_out.corrupted.masked_rate)
        assert summary.sde_rate == pytest.approx(legacy_out.corrupted.sde_rate)
        assert summary.due_rate == pytest.approx(legacy_out.corrupted.due_rate)
        assert summary.corrupted_top1_accuracy == pytest.approx(
            legacy_out.corrupted.corrupted_top1_accuracy
        )

    @pytest.mark.parametrize("policy,expected_groups", [("per_batch", 6), ("per_epoch", 2)])
    def test_batch_and_epoch_policies(self, fitted_model_and_dataset, policy, expected_groups):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(
            injection_target="weights",
            inj_policy=policy,
            batch_size=4,
            num_runs=2,
            random_seed=9,
        )
        summary = CampaignRunner(model, dataset, scenario=scenario).run()
        assert summary.num_inferences == 2 * len(dataset)
        assert summary.num_fault_groups == expected_groups

    def test_per_image_forces_batch_size_one(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", batch_size=4, random_seed=10)
        runner = CampaignRunner(model, dataset, scenario=scenario)
        assert runner.scenario.batch_size == 1
        assert runner.scenario.dataset_size == len(dataset)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(lenet5(seed=0), [])

    def test_summary_as_dict_round_trips_json(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        summary = CampaignRunner(
            model, dataset, scenario=default_scenario(injection_target="weights", random_seed=11)
        ).run()
        blob = json.dumps(summary.as_dict())
        assert isinstance(json.loads(blob), dict)
        assert isinstance(summary, CampaignSummary)
