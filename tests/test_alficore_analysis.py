"""Unit tests for the campaign post-processing (analysis) module."""

import json

import pytest

from repro.alficore import (
    analyze_classification_campaign,
    analyze_detection_campaign,
    compare_campaigns,
    default_scenario,
)
from repro.alficore.results import CampaignResultWriter, ClassificationRecord, DetectionRecord
from repro.alficore.test_error_models_imgclass import TestErrorModels_ImgClass
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head

TestErrorModels_ImgClass.__test__ = False


def _write_synthetic_classification_campaign(tmp_path, name="camp"):
    """Hand-craft a small campaign directory with known outcomes."""
    writer = CampaignResultWriter(tmp_path, campaign_name=name)

    def record(image_id, top1, fault_bit, fault_layer, nan=False, tag="corrupted"):
        return ClassificationRecord(
            image_id=image_id,
            file_name=f"img_{image_id}.png",
            ground_truth=0,
            top5_classes=[top1, (top1 + 1) % 5, (top1 + 2) % 5, (top1 + 3) % 5, (top1 + 4) % 5],
            top5_probabilities=[0.6, 0.2, 0.1, 0.05, 0.05],
            fault_positions=[
                {"layer": fault_layer, "bit_position": fault_bit, "flip_direction": "0->1"}
            ],
            nan_detected=nan,
            model_tag=tag,
        )

    golden = [record(i, top1=0, fault_bit=0, fault_layer=0, tag="golden") for i in range(4)]
    corrupted = [
        record(0, top1=0, fault_bit=10, fault_layer=0),          # masked
        record(1, top1=1, fault_bit=30, fault_layer=1),          # SDE
        record(2, top1=0, fault_bit=30, fault_layer=1, nan=True),  # DUE
        record(3, top1=0, fault_bit=10, fault_layer=0),          # masked
    ]
    writer.write_classification_csv(golden, tag="golden")
    writer.write_classification_csv(corrupted, tag="corrupted")
    return writer


class TestClassificationAnalysis:
    def test_rates_from_known_outcomes(self, tmp_path):
        _write_synthetic_classification_campaign(tmp_path)
        analysis = analyze_classification_campaign(tmp_path, "camp")
        assert analysis.num_inferences == 4
        assert analysis.masked_rate == pytest.approx(0.5)
        assert analysis.sde_rate == pytest.approx(0.25)
        assert analysis.due_rate == pytest.approx(0.25)
        assert analysis.corrupted_image_ids == [1, 2]

    def test_per_bit_and_per_layer_breakdown(self, tmp_path):
        _write_synthetic_classification_campaign(tmp_path)
        analysis = analyze_classification_campaign(tmp_path, "camp")
        # Bit 10 faults were always masked; bit 30 faults always corrupted.
        assert analysis.sde_by_bit[10] == 0.0
        assert analysis.sde_by_bit[30] == 1.0
        assert analysis.sde_by_layer[0] == 0.0
        assert analysis.sde_by_layer[1] == 1.0

    def test_flip_direction_counts(self, tmp_path):
        _write_synthetic_classification_campaign(tmp_path)
        analysis = analyze_classification_campaign(tmp_path, "camp")
        assert analysis.flip_direction_counts == {"0->1": 4}

    def test_as_dict_serialisable(self, tmp_path):
        _write_synthetic_classification_campaign(tmp_path)
        analysis = analyze_classification_campaign(tmp_path, "camp")
        json.dumps(analysis.as_dict())

    def test_missing_campaign_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analyze_classification_campaign(tmp_path, "nothing")

    def test_analysis_of_real_campaign_matches_kpis(self, tmp_path):
        """Post-processing a real campaign must match the on-line KPIs."""
        dataset = SyntheticClassificationDataset(num_samples=8, num_classes=10, noise=0.2, seed=17)
        model = fit_classifier_head(lenet5(seed=3), dataset, 10)
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=31)
        runner = TestErrorModels_ImgClass(
            model=model, model_name="real", dataset=dataset, scenario=scenario, output_dir=tmp_path
        )
        output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1)
        analysis = analyze_classification_campaign(tmp_path, "real")
        assert analysis.num_inferences == output.corrupted.num_inferences
        assert analysis.sde_rate == pytest.approx(output.corrupted.sde_rate)
        assert analysis.due_rate == pytest.approx(output.corrupted.due_rate)


class TestDetectionAnalysis:
    def _write_detection_campaign(self, tmp_path, name="det"):
        writer = CampaignResultWriter(tmp_path, campaign_name=name)
        targets = [
            {"image_id": 0, "file_name": "a.png", "boxes": [[0, 0, 10, 10]], "labels": [1]},
            {"image_id": 1, "file_name": "b.png", "boxes": [[5, 5, 20, 20]], "labels": [2]},
        ]
        writer.write_ground_truth_json(targets)

        def det_record(image_id, boxes, scores, labels, nan=False, tag="corrupted", positions=None):
            return DetectionRecord(
                image_id=image_id,
                file_name=f"{image_id}.png",
                boxes=boxes,
                scores=scores,
                labels=labels,
                fault_positions=positions or [],
                nan_detected=nan,
                model_tag=tag,
            )

        golden = [
            det_record(0, [[0, 0, 10, 10]], [0.9], [1], tag="golden"),
            det_record(1, [[5, 5, 20, 20]], [0.9], [2], tag="golden"),
        ]
        corrupted = [
            # image 0: lost its true positive -> SDE
            det_record(0, [], [], [], positions=[{"layer": 2, "bit_position": 30, "flip_direction": "0->1"}]),
            # image 1: unchanged -> masked
            det_record(1, [[5, 5, 20, 20]], [0.9], [2], positions=[{"layer": 0, "bit_position": 5, "flip_direction": "1->0"}]),
        ]
        writer.write_detection_json(golden, tag="golden")
        writer.write_detection_json(corrupted, tag="corrupted")
        return writer

    def test_detection_rates(self, tmp_path):
        self._write_detection_campaign(tmp_path)
        analysis = analyze_detection_campaign(tmp_path, "det")
        assert analysis.num_inferences == 2
        assert analysis.sde_rate == pytest.approx(0.5)
        assert analysis.due_rate == 0.0
        assert analysis.corrupted_image_ids == [0]
        assert analysis.sde_by_bit[30] == 1.0
        assert analysis.sde_by_bit[5] == 0.0

    def test_missing_ground_truth_raises(self, tmp_path):
        writer = CampaignResultWriter(tmp_path, campaign_name="nogt")
        writer.write_detection_json([], tag="golden")
        writer.write_detection_json([], tag="corrupted")
        with pytest.raises(FileNotFoundError):
            analyze_detection_campaign(tmp_path, "nogt")


class TestCompareCampaigns:
    def test_comparison_rows(self, tmp_path):
        _write_synthetic_classification_campaign(tmp_path, name="a")
        _write_synthetic_classification_campaign(tmp_path, name="b")
        analyses = [
            analyze_classification_campaign(tmp_path, "a"),
            analyze_classification_campaign(tmp_path, "b"),
        ]
        rows = compare_campaigns(analyses)
        assert len(rows) == 2
        assert rows[0]["campaign"] == "a"
        assert rows[0]["most vulnerable bit"] == 30
        assert rows[0]["most vulnerable layer"] == 1
