"""True positives for registry-mutation: direct writes to legacy dicts."""

from repro.models import MODEL_REGISTRY
from repro.models.detection import DETECTOR_REGISTRY


def build(name):
    return object()


MODEL_REGISTRY["custom"] = build  # bypasses duplicate/did-you-mean checks

DETECTOR_REGISTRY.update({"other": build})

del MODEL_REGISTRY["custom"]
