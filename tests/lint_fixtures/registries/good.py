"""Clean registry usage: registration through the central API."""

from repro.experiments import register_model
from repro.models import MODEL_REGISTRY


@register_model("custom-lint-fixture")
def build(num_classes: int = 10, seed: int = 0):
    return object()


# Reading a legacy registry is fine; only mutation is flagged.
known = sorted(MODEL_REGISTRY)
factory = MODEL_REGISTRY.get("lenet5")
