"""Clean shard dispatch: supervised execution instead of bare pool batches."""

from repro.alficore.resilience import ExecutionPolicy, ShardSupervisor

SCALE = 2


def pure_shard_worker(job):
    return job.index * SCALE


def run_campaign(jobs):
    # Supervised dispatch: per-shard timeout, retry with capped backoff and
    # structured ShardError reporting instead of a fire-and-forget pool.map.
    supervisor = ShardSupervisor(
        jobs,
        pure_shard_worker,
        workers=4,
        policy=ExecutionPolicy(retries=2, shard_timeout=600.0),
    )
    return supervisor.run()


def run_single(pool, job):
    # Single-job submission is the supervisor's own building block — fine.
    return pool.apply_async(pure_shard_worker, (job,)).get()
