"""True positives for supervised-dispatch: fire-and-forget batch dispatch."""

from multiprocessing import Pool

SCALE = 2  # immutable module constant: worker-purity stays quiet


def pure_shard_worker(job):
    return job * SCALE


def run_campaign(jobs):
    # One killed or hung worker aborts the whole map: no retry, no timeout.
    with Pool(4) as pool:
        return pool.map(pure_shard_worker, jobs)


def run_campaign_lazily(jobs):
    with Pool(4) as pool:
        return list(pool.imap_unordered(pure_shard_worker, jobs))


def run_campaign_async(executor, jobs):
    return executor.starmap_async(pure_shard_worker, jobs)
