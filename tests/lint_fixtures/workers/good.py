"""Clean pool dispatch: pure, picklable, module-level workers."""

from functools import partial
from multiprocessing import Pool

SCALE = 2  # immutable module constant: safe to read from workers


def pure_worker(item):
    return item * SCALE


def scaled_worker(item, scale):
    return item * scale


def dispatch(items):
    with Pool(2) as pool:
        doubled = pool.map(pure_worker, items)
        scaled = pool.map(partial(scaled_worker, scale=3), items)
    return doubled, scaled
