"""True positives for worker-purity: unpicklable or state-reading workers."""

from multiprocessing import Pool

_CACHE: dict = {}


def stateful_worker(item):
    # Reads module-level mutable state: each worker process sees its own copy.
    return _CACHE.get(item, item)


def dispatch(items):
    with Pool(2) as pool:
        doubled = [pool.apply_async(lambda x: x * 2, (item,)) for item in items]
        cached = [pool.apply_async(stateful_worker, (item,)) for item in items]
    return [r.get() for r in doubled], [r.get() for r in cached]


def dispatch_closure(items, scale):
    def scaled(x):
        return x * scale  # closure over local state: not picklable

    with Pool(2) as pool:
        return [pool.apply_async(scaled, (item,)).get() for item in items]
