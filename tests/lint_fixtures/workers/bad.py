"""True positives for worker-purity: unpicklable or state-reading workers."""

from multiprocessing import Pool

_CACHE: dict = {}


def stateful_worker(item):
    # Reads module-level mutable state: each worker process sees its own copy.
    return _CACHE.get(item, item)


def dispatch(items):
    with Pool(2) as pool:
        doubled = pool.map(lambda x: x * 2, items)  # lambdas don't pickle
        cached = pool.map(stateful_worker, items)
    return doubled, cached


def dispatch_closure(items, scale):
    def scaled(x):
        return x * scale  # closure over local state: not picklable

    with Pool(2) as pool:
        return pool.map(scaled, items)
