"""True positives for rng-discipline: legacy globals and unseeded generators."""

import numpy as np
from numpy.random import default_rng

np.random.seed(1234)  # legacy global RNG state

values = np.random.rand(4)  # draws from the shared global stream

rng = default_rng()  # unseeded: every run draws differently

other = np.random.default_rng(None)  # literal None seed is still unseeded
