"""Clean RNG usage: seeded, locally owned generators only."""

import numpy as np
from numpy.random import default_rng

rng = default_rng(1234)
values = rng.normal(size=4)

other = np.random.default_rng(42)
draws = other.integers(0, 10, size=3)


def sample(seed: int):
    local = np.random.default_rng(seed)
    return local.random(2)
