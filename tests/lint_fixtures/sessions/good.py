"""Clean session usage: with-managed, explicitly restored, or handed off."""


def with_managed(fi, faults):
    with fi.weight_patch_session(faults):
        return fi.model.forward()


def explicitly_restored(fi, faults):
    session = fi.weight_patch_session(faults)
    try:
        return fi.model.forward()
    finally:
        session.restore()


def produced_for_caller(fi, faults):
    # Returning the session transfers the restore obligation to the caller.
    return fi.neuron_injection_session(faults)
