"""True positives for session-context: sessions left open without restore."""


def leaky_weight_session(fi, faults):
    session = fi.weight_patch_session(faults)
    out = fi.model.forward()
    return out  # session never restored: corrupted weights leak


def leaky_neuron_session(fi, faults):
    fi.neuron_injection_session(faults)  # handle dropped on the floor
    return fi.model.forward()
