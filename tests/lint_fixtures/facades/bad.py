"""True positives for deprecated-facade: importing the legacy shims."""

from repro.alficore import CampaignRunner, TestErrorModels_ImgClass
from repro.alficore.test_error_models_objdet import TestErrorModels_ObjDet

runner = CampaignRunner
imgclass = TestErrorModels_ImgClass
objdet = TestErrorModels_ObjDet
