"""Clean campaign construction: the declarative Experiment API."""

from repro.experiments import Experiment
from repro.experiments.runner import Artifacts, facade_run_scenario, facade_spec, run

__all__ = ["Artifacts", "Experiment", "facade_run_scenario", "facade_spec", "run"]
