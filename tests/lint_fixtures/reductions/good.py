"""Clean float reductions: ordered iterables only."""


def total_over_sorted(values: set) -> float:
    return sum(sorted(values))


def loop_accumulation(errors: list) -> float:
    acc = 0.0
    for value in errors:
        acc += value
    return acc


def membership_is_fine(values: set) -> int:
    return len(values)  # sets are fine when no float reduction runs over them
