"""True positives for float-reduction-order: accumulation over set iteration."""


def total_over_set(values: list) -> float:
    return sum({round(v, 6) for v in values})  # set iteration order is hash-dependent


def loop_accumulation(errors: list) -> float:
    acc = 0.0
    for value in set(errors):
        acc += value  # += over a set: order-sensitive float sum
    return acc
