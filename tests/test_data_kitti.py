"""Unit tests for the Kitti-style synthetic detection dataset."""

import numpy as np
import pytest

from repro.alficore import TestErrorModels_ObjDet, default_scenario
from repro.data import KITTI_CATEGORIES, AlfiDataLoaderWrapper, KittiLikeDetectionDataset
from repro.models.detection import yolov3_tiny

TestErrorModels_ObjDet.__test__ = False


class TestKittiLikeDataset:
    def test_item_structure(self):
        dataset = KittiLikeDetectionDataset(num_samples=4)
        image, target = dataset[0]
        assert image.shape == (3, 48, 96)
        assert target["boxes"].shape[1] == 4
        assert len(target["boxes"]) == len(target["labels"])
        assert target["file_name"].startswith("synthetic_kitti/")

    def test_wide_aspect_required(self):
        with pytest.raises(ValueError):
            KittiLikeDetectionDataset(image_size=(64, 64))

    def test_categories(self):
        dataset = KittiLikeDetectionDataset(num_samples=10)
        assert dataset.num_classes == 3
        assert dataset.category_names == KITTI_CATEGORIES
        for target in dataset.ground_truth():
            assert set(target["labels"].tolist()) <= {0, 1, 2}

    def test_boxes_inside_image_and_on_ground_plane(self):
        dataset = KittiLikeDetectionDataset(num_samples=12, image_size=(48, 96), seed=3)
        horizon = int(48 * 0.4)
        for target in dataset.ground_truth():
            boxes = target["boxes"]
            assert boxes[:, [0, 2]].min() >= 0 and boxes[:, [0, 2]].max() <= 96
            assert boxes[:, [1, 3]].min() >= 0 and boxes[:, [1, 3]].max() <= 48
            # Object bottoms sit below the horizon (on the road).
            assert (boxes[:, 3] > horizon).all()

    def test_perspective_far_objects_are_smaller(self):
        dataset = KittiLikeDetectionDataset(num_samples=40, seed=5)
        bottoms, heights = [], []
        for target in dataset.ground_truth():
            for box in target["boxes"]:
                bottoms.append(box[3])
                heights.append(box[3] - box[1])
        correlation = np.corrcoef(bottoms, heights)[0, 1]
        assert correlation > 0.5  # nearer (lower) objects are taller

    def test_deterministic(self):
        a = KittiLikeDetectionDataset(num_samples=3, seed=7)
        b = KittiLikeDetectionDataset(num_samples=3, seed=7)
        np.testing.assert_array_equal(a[2][0], b[2][0])
        np.testing.assert_array_equal(a[2][1]["boxes"], b[2][1]["boxes"])

    def test_objects_visible_against_background(self):
        dataset = KittiLikeDetectionDataset(num_samples=3, noise=0.01, seed=1)
        image, target = dataset[0]
        box = target["boxes"][0].astype(int)
        inside = image[:, box[1] : box[3], box[0] : box[2]].mean()
        assert inside > image.mean()

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            KittiLikeDetectionDataset(num_samples=2)[5]

    def test_works_with_alfi_loader_wrapper(self):
        dataset = KittiLikeDetectionDataset(num_samples=4)
        wrapper = AlfiDataLoaderWrapper(dataset, batch_size=2)
        record = next(iter(wrapper))[0]
        assert record.height == 48 and record.width == 96
        assert isinstance(record.target, dict)


class TestKittiCampaign:
    def test_detection_campaign_on_kitti_like_data(self):
        dataset = KittiLikeDetectionDataset(num_samples=4, seed=2)
        model = yolov3_tiny(num_classes=3, seed=0, image_size=(48, 96)).eval()
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=5)
        runner = TestErrorModels_ObjDet(
            model=model,
            model_name="yolo_kitti",
            dataset=dataset,
            scenario=scenario,
            input_shape=(3, 48, 96),
        )
        output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1)
        assert output.corrupted.num_images == 4
        assert 0.0 <= output.corrupted.ivmod.sde_rate <= 1.0
