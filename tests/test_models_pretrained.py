"""Unit tests for the analytic classifier-head fitting."""

import numpy as np
import pytest

from repro.data import SyntheticClassificationDataset
from repro.eval import top_k_accuracy
from repro.models import lenet5, mlp
from repro.models.pretrained import (
    extract_penultimate_features,
    fit_classifier_head,
    pretrained_classifier,
)


@pytest.fixture(scope="module")
def dataset():
    return SyntheticClassificationDataset(num_samples=60, num_classes=10, noise=0.25, seed=3)


class TestFeatureExtraction:
    def test_feature_shape_matches_final_layer_input(self, dataset):
        model = lenet5().eval()
        images = np.stack([dataset[i][0] for i in range(4)])
        features = extract_penultimate_features(model, images)
        assert features.shape == (4, 84)  # LeNet's last hidden layer width

    def test_model_without_linear_raises(self):
        from repro import nn

        conv_only = nn.Sequential(nn.Conv2d(3, 4, 3), nn.ReLU())
        with pytest.raises(ValueError):
            extract_penultimate_features(conv_only, np.zeros((1, 3, 8, 8), dtype=np.float32))


class TestFitClassifierHead:
    def test_fitted_model_has_high_train_accuracy(self, dataset):
        model = fit_classifier_head(lenet5(), dataset, 10, calibration_size=40)
        images = np.stack([dataset[i][0] for i in range(40)])
        labels = [dataset[i][1] for i in range(40)]
        assert top_k_accuracy(model(images), labels, k=1) >= 0.9

    def test_fitted_model_generalises_to_holdout(self, dataset):
        model = fit_classifier_head(lenet5(), dataset, 10, calibration_size=40)
        images = np.stack([dataset[i][0] for i in range(40, 60)])
        labels = [dataset[i][1] for i in range(40, 60)]
        assert top_k_accuracy(model(images), labels, k=1) >= 0.7

    def test_fit_improves_over_random_head(self, dataset):
        images = np.stack([dataset[i][0] for i in range(40, 60)])
        labels = [dataset[i][1] for i in range(40, 60)]
        random_model = lenet5().eval()
        random_accuracy = top_k_accuracy(random_model(images), labels, k=1)
        fitted = fit_classifier_head(lenet5(), dataset, 10, calibration_size=40)
        fitted_accuracy = top_k_accuracy(fitted(images), labels, k=1)
        assert fitted_accuracy > random_accuracy

    def test_wrong_num_classes_raises(self, dataset):
        with pytest.raises(ValueError):
            fit_classifier_head(lenet5(num_classes=10), dataset, num_classes=3)

    def test_empty_calibration_raises(self, dataset):
        with pytest.raises(ValueError):
            fit_classifier_head(lenet5(), dataset, 10, calibration_size=0)

    def test_pretrained_classifier_factory(self, dataset):
        model = pretrained_classifier(mlp, dataset, num_classes=10, calibration_size=40)
        images = np.stack([dataset[i][0] for i in range(40)])
        labels = [dataset[i][1] for i in range(40)]
        assert top_k_accuracy(model(images), labels, k=1) >= 0.9

    def test_fit_sets_eval_mode(self, dataset):
        model = fit_classifier_head(lenet5(), dataset, 10, calibration_size=10)
        assert all(not module.training for module in model.modules())
