"""Unit tests for the dtype registry."""

import numpy as np
import pytest

from repro.tensor import (
    SUPPORTED_DTYPES,
    dtype_info,
    exponent_bit_range,
    mantissa_bit_range,
    sign_bit,
)


class TestDtypeInfo:
    def test_lookup_by_name(self):
        info = dtype_info("float32")
        assert info.bits == 32
        assert info.exponent_bits == 8
        assert info.mantissa_bits == 23
        assert info.is_float

    def test_lookup_by_numpy_dtype(self):
        assert dtype_info(np.float16).name == "float16"
        assert dtype_info(np.dtype(np.float64)).name == "float64"

    def test_unknown_dtype_raises(self):
        with pytest.raises(KeyError):
            dtype_info("bfloat16")

    def test_int_view_width_matches(self):
        for info in SUPPORTED_DTYPES.values():
            assert info.int_view.itemsize * 8 == info.bits

    def test_float_field_widths_sum(self):
        for info in SUPPORTED_DTYPES.values():
            if info.is_float:
                assert 1 + info.exponent_bits + info.mantissa_bits == info.bits


class TestFieldRanges:
    def test_sign_bit_positions(self):
        assert sign_bit("float32") == 31
        assert sign_bit("float16") == 15
        assert sign_bit("float64") == 63

    def test_exponent_range_float32(self):
        assert exponent_bit_range("float32") == (23, 30)

    def test_exponent_range_float16(self):
        assert exponent_bit_range("float16") == (10, 14)

    def test_mantissa_range_float32(self):
        assert mantissa_bit_range("float32") == (0, 22)

    def test_int_types_have_no_exponent(self):
        with pytest.raises(ValueError):
            exponent_bit_range("int8")
        with pytest.raises(ValueError):
            mantissa_bit_range("int32")
