"""Shared fixtures for the test suite.

The fixtures keep models and datasets intentionally tiny so the full suite
runs in seconds while still exercising every code path of the fault
injection framework.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.alficore import default_scenario
from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.models import lenet5, mlp
from repro.models.detection import yolov3_tiny


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(42)


@pytest.fixture
def small_images(rng) -> np.ndarray:
    """A small batch of random images (2, 3, 32, 32)."""
    return rng.normal(size=(2, 3, 32, 32)).astype(np.float32)


@pytest.fixture
def tiny_cnn() -> nn.Module:
    """A minimal CNN with conv and linear layers (fast to run)."""

    class TinyCNN(nn.Module):
        def __init__(self):
            super().__init__()
            rng = np.random.default_rng(0)
            self.conv1 = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
            self.relu = nn.ReLU()
            self.pool = nn.MaxPool2d(4)
            self.flatten = nn.Flatten()
            self.fc = nn.Linear(4 * 8 * 8, 10, rng=rng)

        def forward(self, x):
            x = self.pool(self.relu(self.conv1(x)))
            return self.fc(self.flatten(x))

    return TinyCNN().eval()


@pytest.fixture
def lenet_model() -> nn.Module:
    """LeNet-5 instance with deterministic weights."""
    return lenet5(num_classes=10, seed=0).eval()


@pytest.fixture
def mlp_model() -> nn.Module:
    """Small MLP classifier."""
    return mlp(num_classes=10, seed=0).eval()


@pytest.fixture
def classification_dataset() -> SyntheticClassificationDataset:
    """Small synthetic classification dataset."""
    return SyntheticClassificationDataset(num_samples=12, num_classes=10, noise=0.2, seed=1)


@pytest.fixture
def detection_dataset() -> CocoLikeDetectionDataset:
    """Small synthetic CoCo-style detection dataset."""
    return CocoLikeDetectionDataset(num_samples=6, num_classes=5, seed=2)


@pytest.fixture
def detector_model():
    """Tiny YOLO-style detector."""
    return yolov3_tiny(num_classes=5, seed=0).eval()


@pytest.fixture
def neuron_scenario():
    """Default scenario targeting neurons, sized for the test datasets."""
    return default_scenario(dataset_size=12, injection_target="neurons", random_seed=7)


@pytest.fixture
def weight_scenario():
    """Default scenario targeting weights, sized for the test datasets."""
    return default_scenario(dataset_size=12, injection_target="weights", random_seed=7)
