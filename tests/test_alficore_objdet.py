"""Integration tests for the object-detection campaign runner."""

import json
from pathlib import Path

import pytest

from repro.alficore import TestErrorModels_ObjDet, default_scenario
from repro.data import CocoLikeDetectionDataset
from repro.models.detection import retinanet_lite, yolov3_tiny

# The class name starts with "Test" but is a campaign runner, not a test case.
TestErrorModels_ObjDet.__test__ = False


@pytest.fixture(scope="module")
def detection_setup():
    dataset = CocoLikeDetectionDataset(num_samples=6, num_classes=5, seed=3)
    model = yolov3_tiny(num_classes=5, seed=0).eval()
    return model, dataset


class TestObjDetCampaign:
    def test_weight_campaign_end_to_end(self, detection_setup, tmp_path):
        model, dataset = detection_setup
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=2)
        runner = TestErrorModels_ObjDet(
            model=model,
            model_name="yolo_weights",
            dataset=dataset,
            scenario=scenario,
            output_dir=tmp_path,
        )
        output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1, inj_policy="per_image")
        assert output.corrupted.num_images == len(dataset)
        assert 0.0 <= output.corrupted.ivmod.sde_rate <= 1.0
        assert 0.0 <= output.corrupted.ivmod.due_rate <= 1.0
        assert len(output.golden_predictions) == len(dataset)
        assert len(output.corrupted_predictions) == len(dataset)

    def test_neuron_campaign(self, detection_setup):
        model, dataset = detection_setup
        scenario = default_scenario(injection_target="neurons", random_seed=4)
        runner = TestErrorModels_ObjDet(
            model=model, model_name="yolo_neurons", dataset=dataset, scenario=scenario
        )
        output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1)
        assert output.corrupted.num_images == len(dataset)
        # The sessions log per group; the injector's shared log stays empty.
        assert len(runner.applied_faults) == len(dataset)
        assert runner.wrapper.fault_injection.applied_faults == []

    def test_output_files_written(self, detection_setup, tmp_path):
        model, dataset = detection_setup
        scenario = default_scenario(injection_target="weights", random_seed=5)
        runner = TestErrorModels_ObjDet(
            model=model, model_name="files", dataset=dataset, scenario=scenario, output_dir=tmp_path
        )
        output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1)
        for key in ("meta", "faults", "ground_truth", "golden_json", "corrupted_json", "kpis"):
            assert key in output.output_files
            assert Path(output.output_files[key]).exists()
        corrupted = json.loads(Path(output.output_files["corrupted_json"]).read_text())
        assert len(corrupted) == len(dataset)
        assert {"boxes", "scores", "labels", "fault_positions"} <= set(corrupted[0])

    def test_ground_truth_file_matches_dataset(self, detection_setup, tmp_path):
        model, dataset = detection_setup
        scenario = default_scenario(injection_target="weights", random_seed=6)
        runner = TestErrorModels_ObjDet(
            model=model, model_name="gt", dataset=dataset, scenario=scenario, output_dir=tmp_path
        )
        output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1)
        ground_truth = json.loads(Path(output.output_files["ground_truth"]).read_text())
        assert len(ground_truth) == len(dataset)
        assert ground_truth[0]["image_id"] == 0
        assert len(ground_truth[0]["boxes"][0]) == 4

    def test_resil_detector(self, detection_setup):
        model, dataset = detection_setup
        resil = retinanet_lite(num_classes=5, seed=0).eval()
        # A different detector of the same layer structure would not replay
        # faults meaningfully, so the hardened model here is simply a clone.
        resil = model.clone()
        scenario = default_scenario(injection_target="weights", random_seed=7)
        runner = TestErrorModels_ObjDet(
            model=model, resil_model=resil, model_name="resil", dataset=dataset, scenario=scenario
        )
        output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1)
        assert output.resil is not None
        assert output.resil_predictions is not None

    def test_num_classes_detection(self, detection_setup):
        model, dataset = detection_setup
        runner = TestErrorModels_ObjDet(model=model, dataset=dataset)
        assert runner.num_classes == 5

    def test_requires_dataset(self):
        with pytest.raises(ValueError):
            TestErrorModels_ObjDet(model=yolov3_tiny(), dataset=None)
