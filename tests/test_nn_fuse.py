"""Fused executor: program building, bit-exactness, the planned buffer arena."""

import numpy as np
import pytest

from repro import nn
from repro.models import MODEL_REGISTRY
from repro.nn import ForwardPlan
from repro.nn.fuse import (
    CallModuleNode,
    ChainNode,
    ConvActNode,
    FusedExecutor,
    SingleOpNode,
    SlotArena,
    build_program,
)
from repro.nn.ir import lower_segment


def _input(batch=2, seed=0):
    return np.random.default_rng(seed).normal(size=(batch, 3, 32, 32)).astype(np.float32)


def _items(*modules):
    return [(m, lower_segment(m, f"m{i}")) for i, m in enumerate(modules)]


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestBuildProgram:
    def test_conv_bias_relu_fuses_into_one_node(self):
        conv = nn.Conv2d(3, 4, 3, rng=_rng(0))
        relu = nn.ReLU()
        nodes = build_program(_items(conv, relu))
        assert len(nodes) == 1
        (node,) = nodes
        assert isinstance(node, ConvActNode)
        assert node.with_bias
        assert [op.kind for op in node.act_ops] == ["relu"]
        assert node.is_last

    def test_biasless_conv_keeps_chain_attached(self):
        conv = nn.Conv2d(3, 4, 3, bias=False, rng=_rng(1))
        nodes = build_program(_items(conv, nn.BatchNorm2d(4), nn.ReLU()))
        assert len(nodes) == 1
        assert isinstance(nodes[0], ConvActNode)
        assert not nodes[0].with_bias
        assert [op.kind for op in nodes[0].act_ops] == ["batchnorm2d", "relu"]

    def test_elementwise_run_becomes_single_chain(self):
        nodes = build_program(_items(nn.BatchNorm2d(4), nn.ReLU(), nn.Tanh()))
        assert len(nodes) == 1
        assert isinstance(nodes[0], ChainNode)
        assert [op.kind for op in nodes[0].ops] == ["batchnorm2d", "relu", "tanh"]

    def test_pooling_breaks_chains(self):
        nodes = build_program(_items(nn.ReLU(), nn.MaxPool2d(2), nn.ReLU()))
        assert [type(n) for n in nodes] == [ChainNode, SingleOpNode, ChainNode]
        assert nodes[-1].is_last and not nodes[0].is_last

    def test_opaque_segment_becomes_call_module_node(self):
        class Residual(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(8, 8, rng=_rng(2))

            def forward(self, x):
                return x + self.fc(x)

        block = Residual()
        nodes = build_program([(block, None)] + _items(nn.ReLU()))
        assert [type(n) for n in nodes] == [CallModuleNode, ChainNode]
        assert nodes[0].modules == [block]

    def test_module_boundaries_never_split_across_nodes(self):
        # Every module's ops land in exactly one node, so a hook-blocked
        # node can replay plain module calls bit-exactly.
        conv = nn.Conv2d(3, 4, 3, rng=_rng(3))
        modules = [conv, nn.ReLU(), nn.MaxPool2d(2), nn.Flatten()]
        nodes = build_program(_items(*modules))
        owners = [id(m) for node in nodes for m in node.modules]
        assert len(owners) == len(set(owners))
        assert set(owners) == {id(m) for m in modules}


class TestSlotArena:
    def test_views_reuse_backing_buffer(self):
        arena = SlotArena()
        a = arena.view(0, (2, 8))
        a.fill(7.0)
        b = arena.view(0, (4, 4))
        assert b.shape == (4, 4)
        assert b.tobytes() == a.tobytes()
        assert arena.nbytes == 64

    def test_buffers_grow_to_peak_only(self):
        arena = SlotArena()
        arena.view(0, (2, 2))
        assert arena.nbytes == 16
        arena.view(0, (8, 8))
        assert arena.nbytes == 256
        arena.view(0, (2, 2))
        assert arena.nbytes == 256
        arena.clear()
        assert arena.nbytes == 0

    def test_distinct_keys_get_distinct_buffers(self):
        arena = SlotArena()
        a = arena.view(0, (4,))
        b = arena.view(1, (4,))
        a.fill(1.0)
        b.fill(2.0)
        assert a.tobytes() != b.tobytes()


def _plans(model, x):
    interp = ForwardPlan.trace(model, x, executor="interpreter")
    fused = ForwardPlan.trace(model, x, executor="fused")
    assert interp.valid and interp.executor_name == "interpreter"
    assert fused.valid and fused.executor_name == "fused"
    return interp, fused


class TestOpPairFusion:
    """Per-op-pair units: each fused grouping is byte-identical to its modules."""

    @pytest.mark.parametrize(
        "tail",
        [
            [nn.ReLU()],
            [nn.Tanh()],
            [nn.Sigmoid()],
            [nn.LeakyReLU()],
            [nn.BatchNorm2d(4), nn.ReLU()],
            [nn.BatchNorm2d(4), nn.Tanh(), nn.ReLU()],
        ],
        ids=lambda tail: "+".join(type(m).__name__ for m in tail),
    )
    def test_conv_plus_tail_is_byte_identical(self, tail):
        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, rng=_rng(4)), *tail).eval()
        x = _input(seed=5)
        interp, fused = _plans(model, x)
        assert fused.resume(0, x).tobytes() == interp.resume(0, x).tobytes()

    @pytest.mark.parametrize(
        "pair",
        [
            [nn.ReLU(), nn.Tanh()],
            [nn.BatchNorm2d(3), nn.ReLU()],
            [nn.Sigmoid(), nn.ReLU()],
            [nn.LeakyReLU(), nn.BatchNorm2d(3)],
            [nn.Tanh(), nn.Tanh()],
        ],
        ids=lambda pair: "+".join(type(m).__name__ for m in pair),
    )
    def test_elementwise_pair_chain_is_byte_identical(self, pair):
        # A leading pool keeps the plan multi-segment and hands the chain an
        # externally-owned input (the stricter liveness case).
        model = nn.Sequential(nn.AvgPool2d(2), *pair).eval()
        x = _input(seed=6)
        interp, fused = _plans(model, x)
        assert fused.resume(0, x).tobytes() == interp.resume(0, x).tobytes()

    def test_linear_bias_relu_is_byte_identical(self):
        model = nn.Sequential(
            nn.Flatten(), nn.Linear(3 * 32 * 32, 16, rng=_rng(7)), nn.ReLU()
        ).eval()
        x = _input(seed=8)
        interp, fused = _plans(model, x)
        assert fused.resume(0, x).tobytes() == interp.resume(0, x).tobytes()


class TestZooByteEquality:
    """Property sweep: fused == interpreter == module on every example model."""

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_full_pass_and_every_suffix_entry(self, name):
        model = MODEL_REGISTRY[name](num_classes=10, seed=0).eval()
        x = _input(seed=9)
        module_plan = ForwardPlan.trace(model, x)
        interp, fused = _plans(model, x)
        expected = module_plan.resume(0, x)
        assert interp.resume(0, x).tobytes() == expected.tobytes()
        assert fused.resume(0, x).tobytes() == expected.tobytes()
        # Every resume(k, a_k) suffix entry point a campaign can hit.
        for k in range(len(module_plan.segments)):
            a_k = module_plan.run_prefix(x, k)
            want = module_plan.resume(k, a_k).tobytes()
            assert interp.resume(k, a_k).tobytes() == want, f"{name} interpreter k={k}"
            assert fused.resume(k, a_k).tobytes() == want, f"{name} fused k={k}"

    @pytest.mark.parametrize("name", ["lenet5", "elemnet"])
    def test_partial_batch_resume_matches(self, name):
        model = MODEL_REGISTRY[name](num_classes=10, seed=0).eval()
        x = _input(batch=4, seed=10)
        module_plan = ForwardPlan.trace(model, x)
        _, fused = _plans(model, x)
        sub = _input(batch=2, seed=11)
        assert fused.resume(0, sub).tobytes() == module_plan.resume(0, sub).tobytes()


class TestBufferPlan:
    def test_fused_footprint_is_peak_not_sum(self):
        from repro.models import elemnet

        model = elemnet(num_classes=10, seed=0).eval()
        x = _input(seed=12)
        interp, fused = _plans(model, x)
        interp_exec, fused_exec = interp._executor, fused._executor
        fused.resume(0, x)  # warm: compile program, grow arena to peak
        interp_exec.reset_stats()
        fused_exec.reset_stats()
        interp.resume(0, x)
        fused.resume(0, x)
        o_sum = interp_exec.alloc_bytes
        planned = fused_exec.alloc_bytes + fused_exec.arena.nbytes
        assert o_sum > 0 and planned > 0
        # O(peak) vs O(sum): the towers' per-op allocations all collapse
        # into arena slots, so the planned footprint must be a small
        # fraction of the interpreter's per-pass total.
        assert planned < o_sum / 3, (planned, o_sum)
        # Steady state: repeated passes allocate no new arena memory.
        arena_bytes = fused_exec.arena.nbytes
        fused.resume(0, x)
        assert fused_exec.arena.nbytes == arena_bytes

    def test_external_input_never_written_in_place(self):
        # resume() inputs can be golden-cache boundary activations; the
        # fused chain must write into its own buffer, never the caller's.
        model = nn.Sequential(nn.BatchNorm2d(3), nn.ReLU(), nn.Tanh()).eval()
        x = _input(seed=13)
        _, fused = _plans(model, x)
        snapshot = x.tobytes()
        out = fused.resume(0, x)
        assert x.tobytes() == snapshot
        assert out is not x

    def test_returned_values_escape_the_arena(self):
        # Two consecutive runs must not alias each other's outputs.
        model = nn.Sequential(nn.AvgPool2d(2), nn.ReLU(), nn.Tanh()).eval()
        x = _input(seed=14)
        _, fused = _plans(model, x)
        first = fused.resume(0, x)
        first_bytes = first.tobytes()
        second = fused.resume(0, _input(seed=15))
        assert second is not first
        assert first.tobytes() == first_bytes  # run 2 did not clobber run 1

    def test_suffix_programs_are_cached_per_range(self):
        model = nn.Sequential(nn.AvgPool2d(2), nn.ReLU(), nn.Tanh()).eval()
        x = _input(seed=16)
        _, fused = _plans(model, x)
        executor = fused._executor
        assert isinstance(executor, FusedExecutor)
        fused.resume(0, x)
        a1 = fused.run_prefix(x, 1)
        fused.resume(1, a1)
        fused.resume(1, a1)
        assert set(executor._programs) >= {(0, 3), (1, 3)}


class TestHookFallback:
    def test_blocked_node_falls_back_and_hooks_fire(self):
        conv = nn.Conv2d(3, 4, 3, rng=_rng(17))
        relu = nn.ReLU()
        model = nn.Sequential(conv, relu, nn.Flatten()).eval()
        x = _input(seed=18)
        interp, fused = _plans(model, x)
        seen = []
        handle = relu.register_forward_hook(lambda m, args, out: seen.append(out.copy()))
        try:
            out = fused.resume(0, x)
        finally:
            handle.remove()
        # The conv+relu node is blocked: it replays module calls, the hook
        # fires once, and the output is still exact.
        assert len(seen) == 1
        assert out.tobytes() == interp.resume(0, x).tobytes()

    def test_injected_weight_faults_are_observed(self):
        # Weight corruption between trace and execution must flow through
        # the fused kernels (they read module parameters live).
        model = nn.Sequential(nn.Conv2d(3, 4, 3, rng=_rng(19)), nn.ReLU()).eval()
        x = _input(seed=20)
        interp, fused = _plans(model, x)
        golden = fused.resume(0, x).tobytes()
        conv = model._modules["0"]
        original = conv.weight.data[0, 0, 0, 0]
        conv.weight.data[0, 0, 0, 0] = np.float32(1e6)
        try:
            faulty_fused = fused.resume(0, x).tobytes()
            faulty_interp = interp.resume(0, x).tobytes()
        finally:
            conv.weight.data[0, 0, 0, 0] = original
        assert faulty_fused != golden
        assert faulty_fused == faulty_interp
        assert fused.resume(0, x).tobytes() == golden
