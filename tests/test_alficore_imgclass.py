"""Integration tests for the classification campaign runner."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.alficore import TestErrorModels_ImgClass, default_scenario
from repro.alficore.protection import apply_protection, collect_activation_bounds
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head

# The class name starts with "Test" but is a campaign runner, not a test case.
TestErrorModels_ImgClass.__test__ = False


@pytest.fixture(scope="module")
def fitted_model_and_dataset():
    dataset = SyntheticClassificationDataset(num_samples=10, num_classes=10, noise=0.2, seed=5)
    model = fit_classifier_head(lenet5(seed=1), dataset, 10)
    return model, dataset


class TestClassificationCampaign:
    def test_weight_campaign_end_to_end(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=3)
        runner = TestErrorModels_ImgClass(
            model=model,
            model_name="lenet_weights",
            dataset=dataset,
            scenario=scenario,
            output_dir=tmp_path,
        )
        output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1, inj_policy="per_image")
        assert output.corrupted.num_inferences == len(dataset)
        assert output.corrupted.golden_top1_accuracy >= 0.9
        assert 0.0 <= output.corrupted.sde_rate <= 1.0
        assert output.corrupted.masked_rate + output.corrupted.sde_rate + output.corrupted.due_rate == pytest.approx(1.0)
        assert output.golden_logits.shape == output.corrupted_logits.shape

    def test_neuron_campaign(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="neurons", rnd_bit_range=(0, 31), random_seed=4)
        runner = TestErrorModels_ImgClass(
            model=model, model_name="lenet_neurons", dataset=dataset, scenario=scenario
        )
        output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1)
        assert output.corrupted.num_inferences == len(dataset)
        # Every inference must have applied exactly one neuron fault.  The
        # sessions log per group; the injector's shared log must stay empty.
        assert len(runner.applied_faults) == len(dataset)
        assert runner.wrapper.fault_injection.applied_faults == []

    def test_output_files_written(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", random_seed=5)
        runner = TestErrorModels_ImgClass(
            model=model, model_name="files", dataset=dataset, scenario=scenario, output_dir=tmp_path
        )
        output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1)
        for key in ("meta", "faults", "applied_faults", "golden_csv", "corrupted_csv", "kpis"):
            assert key in output.output_files
            assert Path(output.output_files[key]).exists()
        kpis = json.loads(Path(output.output_files["kpis"]).read_text())
        assert "corrupted" in kpis

    def test_corrupted_csv_contains_fault_positions(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", random_seed=6)
        runner = TestErrorModels_ImgClass(
            model=model, model_name="csvcheck", dataset=dataset, scenario=scenario, output_dir=tmp_path
        )
        runner.test_rand_ImgClass_SBFs_inj(num_faults=2)
        from repro.alficore.results import CampaignResultWriter

        rows = CampaignResultWriter(tmp_path, "csvcheck").read_classification_csv("corrupted")
        assert len(rows) == len(dataset)
        positions = json.loads(rows[0]["fault_positions"])
        assert len(positions) == 2
        assert {"layer", "bit_position", "original_value", "corrupted_value"} <= set(positions[0])

    def test_resil_model_evaluated_under_same_faults(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        calibration = np.stack([dataset[i][0] for i in range(len(dataset))])
        bounds = collect_activation_bounds(model, [calibration])
        hardened = apply_protection(model, bounds, "ranger")
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(30, 30), random_seed=7)
        runner = TestErrorModels_ImgClass(
            model=model, resil_model=hardened, model_name="resil", dataset=dataset, scenario=scenario
        )
        output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1)
        assert output.resil is not None
        assert output.resil_logits is not None
        # Hardened model must not be worse overall (SDE + DUE) than the
        # unprotected one under identical exponent-MSB faults.
        unprotected_total = output.corrupted.sde_rate + output.corrupted.due_rate
        protected_total = output.resil.sde_rate + output.resil.due_rate
        assert protected_total <= unprotected_total + 1e-9

    def test_fault_file_reuse_produces_identical_outcomes(self, fitted_model_and_dataset, tmp_path):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", rnd_bit_range=(23, 30), random_seed=8)
        first = TestErrorModels_ImgClass(
            model=model, model_name="first", dataset=dataset, scenario=scenario, output_dir=tmp_path
        )
        out_first = first.test_rand_ImgClass_SBFs_inj(num_faults=1)
        fault_file = out_first.output_files["faults"]

        second = TestErrorModels_ImgClass(
            model=model, model_name="second", dataset=dataset, scenario=scenario
        )
        out_second = second.test_rand_ImgClass_SBFs_inj(num_faults=1, fault_file=fault_file)
        np.testing.assert_allclose(out_first.corrupted_logits, out_second.corrupted_logits)

    def test_requires_dataset(self):
        with pytest.raises(ValueError):
            TestErrorModels_ImgClass(model=lenet5(), dataset=None)

    def test_num_runs_multiplies_inferences(self, fitted_model_and_dataset):
        model, dataset = fitted_model_and_dataset
        scenario = default_scenario(injection_target="weights", random_seed=9)
        runner = TestErrorModels_ImgClass(
            model=model, model_name="epochs", dataset=dataset, scenario=scenario
        )
        output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1, num_runs=2)
        assert output.corrupted.num_inferences == 2 * len(dataset)
