"""Tests for the repro-lint static-analysis subsystem.

Each built-in rule has a checked-in fixture pair under
``tests/lint_fixtures/<rule_key>/``: ``bad.py`` (must produce at least one
finding of that rule) and ``good.py`` (must lint clean).  On top of the
fixtures, this module covers suppression comments, baseline round-trips, the
rule registry (did-you-mean, enable/disable, custom rules) and the CLI /
``python -m repro.lint`` entry points — including the meta-test that the
repository's own source lints clean.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.registry import UnknownComponentError
from repro.lint import Finding, RULES, lint_paths, load_baseline, register_rule, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import scan_suppressions
from repro.lint.reporters import render_json, render_text

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: fixture directory -> rule name expected from its ``bad.py``
RULE_FIXTURES = {
    "rng": "rng-discipline",
    "sessions": "session-context",
    "reductions": "float-reduction-order",
    "registries": "registry-mutation",
    "facades": "deprecated-facade",
    "workers": "worker-purity",
    "dispatch": "supervised-dispatch",
}


# --------------------------------------------------------------------------- #
# per-rule fixtures
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("fixture,rule", sorted(RULE_FIXTURES.items()))
class TestRuleFixtures:
    def test_bad_fixture_is_flagged(self, fixture, rule):
        report = lint_paths([FIXTURES / fixture / "bad.py"])
        rules_found = {finding.rule for finding in report.findings}
        assert rules_found == {rule}, report.findings
        assert len(report.findings) >= 1

    def test_good_fixture_is_clean(self, fixture, rule):
        report = lint_paths([FIXTURES / fixture / "good.py"], enable=[rule])
        assert report.findings == []

    def test_rule_can_be_disabled(self, fixture, rule):
        report = lint_paths([FIXTURES / fixture / "bad.py"], disable=[rule])
        assert report.findings == []


def test_findings_carry_position_and_render():
    report = lint_paths([FIXTURES / "rng" / "bad.py"])
    finding = report.findings[0]
    assert finding.path.endswith("lint_fixtures/rng/bad.py")
    assert finding.line > 0
    assert f"[{finding.rule}]" in finding.render()
    assert Finding.from_dict(finding.as_dict()) == finding


# --------------------------------------------------------------------------- #
# suppression comments
# --------------------------------------------------------------------------- #
def test_line_suppression_comment(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(
        "import numpy as np\n"
        "a = np.random.rand(3)  # repro-lint: disable=rng-discipline\n"
        "b = np.random.rand(3)\n"
    )
    report = lint_paths([path])
    assert len(report.findings) == 1
    assert report.findings[0].line == 3
    assert report.suppressed == 1


def test_file_suppression_comment(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(
        "# repro-lint: disable-file=rng-discipline\n"
        "import numpy as np\n"
        "a = np.random.rand(3)\n"
        "b = np.random.rand(3)\n"
    )
    report = lint_paths([path])
    assert report.findings == []
    assert report.suppressed == 2


def test_all_wildcard_and_multi_rule_suppression(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(
        "import numpy as np\n"
        "a = np.random.rand(3)  # repro-lint: disable=all\n"
        "b = np.random.rand(3)  # repro-lint: disable=rng-discipline, worker-purity\n"
    )
    report = lint_paths([path])
    assert report.findings == []
    assert report.suppressed == 2


def test_hash_inside_string_is_not_a_suppression():
    marker = "# repro-lint: disable=rng-discipline"
    source = f"text = '{marker}'\n"
    suppressions = scan_suppressions(source)
    assert not suppressions.file_rules and not suppressions.line_rules


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def test_baseline_round_trip(tmp_path):
    report = lint_paths([FIXTURES / "rng" / "bad.py"])
    assert report.findings
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.findings)
    loaded = load_baseline(baseline_file)
    assert loaded == report.findings

    rerun = lint_paths([FIXTURES / "rng" / "bad.py"], baseline=loaded)
    assert rerun.findings == []
    assert rerun.baselined == len(report.findings)
    assert rerun.exit_code == 0


def test_baseline_matching_survives_line_drift(tmp_path):
    report = lint_paths([FIXTURES / "rng" / "bad.py"])
    shifted = [
        Finding(f.path, f.line + 40, f.col, f.rule, f.message) for f in report.findings
    ]
    rerun = lint_paths([FIXTURES / "rng" / "bad.py"], baseline=shifted)
    assert rerun.findings == []  # (rule, path, message) matching is line-free


def test_baseline_does_not_hide_new_findings(tmp_path):
    baseline = lint_paths([FIXTURES / "rng" / "bad.py"]).findings
    report = lint_paths(
        [FIXTURES / "rng" / "bad.py", FIXTURES / "facades" / "bad.py"], baseline=baseline
    )
    assert {finding.rule for finding in report.findings} == {"deprecated-facade"}
    assert report.exit_code == 1


# --------------------------------------------------------------------------- #
# rule registry
# --------------------------------------------------------------------------- #
def test_unknown_rule_gets_did_you_mean():
    with pytest.raises(UnknownComponentError, match="rng-discipline"):
        lint_paths([FIXTURES / "rng" / "good.py"], enable=["rng-dicipline"])


def test_custom_rule_registration():
    name = "todo-comment-lint-test"

    def checker(ctx):
        for lineno, line in enumerate(ctx.lines, start=1):
            if "TODO" in line:
                yield Finding(ctx.display_path, lineno, 1, name, "TODO found")

    register_rule(name, checker, description="test rule", default=False)
    try:
        # default=False: not part of a default run ...
        assert name not in lint_paths([FIXTURES / "rng" / "good.py"]).rules
        # ... but selectable explicitly.
        report = lint_paths([FIXTURES / "rng" / "good.py"], enable=[name])
        assert report.rules == [name]
    finally:
        RULES.unregister(name)


def test_parse_error_is_reported_as_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    report = lint_paths([path])
    assert len(report.findings) == 1
    assert report.findings[0].rule == "parse-error"
    assert report.exit_code == 1


# --------------------------------------------------------------------------- #
# reporters and CLI
# --------------------------------------------------------------------------- #
def test_json_reporter_round_trips(capsys):
    report = lint_paths([FIXTURES / "registries" / "bad.py"])
    import io

    stream = io.StringIO()
    render_json(report, stream)
    payload = json.loads(stream.getvalue())
    assert payload["summary"]["findings"] == len(report.findings)
    assert payload["findings"][0]["rule"] == "registry-mutation"

    stream = io.StringIO()
    render_text(report, stream)
    assert "[registry-mutation]" in stream.getvalue()


def test_cli_exit_codes_and_baseline_flow(tmp_path, capsys):
    bad = FIXTURES / "rng" / "bad.py"
    assert lint_main([str(bad), "--no-baseline"]) == 1
    capsys.readouterr()

    baseline_file = tmp_path / "baseline.json"
    assert lint_main([str(bad), "--write-baseline", "--baseline", str(baseline_file)]) == 0
    capsys.readouterr()
    assert lint_main([str(bad), "--baseline", str(baseline_file)]) == 0


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULE_FIXTURES.values():
        assert rule in out


def test_pytorchalfi_lint_subcommand(capsys):
    from repro.cli import main as cli_main

    code = cli_main(["lint", str(FIXTURES / "facades" / "bad.py"), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "[deprecated-facade]" in out


# --------------------------------------------------------------------------- #
# meta: the repository itself lints clean
# --------------------------------------------------------------------------- #
def test_repository_lints_clean():
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "examples", "benchmarks", "--no-baseline"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_checked_in_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    assert baseline == []
