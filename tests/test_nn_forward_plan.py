"""Forward-plan subsystem: linearisation, recording, bit-exact resume."""

import numpy as np
import pytest

from repro import nn
from repro.models import alexnet, lenet5, mlp, resnet18, vgg16
from repro.nn import ActivationArena, ForwardPlan


def _input(batch=2, seed=0):
    return np.random.default_rng(seed).normal(size=(batch, 3, 32, 32)).astype(np.float32)


@pytest.fixture(params=[mlp, lenet5, alexnet, vgg16, resnet18], ids=lambda f: f.__name__)
def model_and_plan(request):
    model = request.param(num_classes=10, seed=0).eval()
    x = _input()
    return model, ForwardPlan.trace(model, x), x


class TestLinearisation:
    def test_zoo_models_linearise_into_multiple_segments(self, model_and_plan):
        model, plan, _ = model_and_plan
        assert plan.valid
        assert plan.num_segments > 1
        # Every segment is a module of the model tree with a resolvable name.
        names = dict(model.named_modules())
        for segment, name in zip(plan.segments, plan.segment_names):
            assert names[name] is segment

    def test_residual_blocks_stay_atomic(self):
        model = resnet18(num_classes=10, seed=0).eval()
        plan = ForwardPlan.trace(model, _input())
        # Blocks branch internally (identity + conv path), so they must be
        # kept whole; the top-level stem/stage/pool/fc chain still flattens.
        assert "layer1.0" in plan.segment_names
        assert not any(name.startswith("layer1.0.") for name in plan.segment_names)

    def test_branchy_root_degenerates_to_single_segment(self):
        class Branchy(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(8, 8, rng=np.random.default_rng(0))
                self.b = nn.Linear(8, 8, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.a(x) + self.b(x)

        model = Branchy().eval()
        x = np.random.default_rng(2).normal(size=(3, 8)).astype(np.float32)
        plan = ForwardPlan.trace(model, x)
        assert not plan.valid
        assert plan.num_segments == 1
        # Degenerate plans still execute correctly as a full forward.
        np.testing.assert_array_equal(plan.resume(0, x), model(x))

    def test_root_mutating_child_output_in_place_is_invalidated(self):
        # The object-identity chain holds (the root returns the child's own
        # array), but the root's in-place post-processing is not part of any
        # segment — the replay validation must reject the plan.
        class MutatingRoot(nn.Module):
            def __init__(self):
                super().__init__()
                self.body = nn.Linear(8, 8, rng=np.random.default_rng(0))

            def forward(self, x):
                y = self.body(x)
                y += 1.0  # in place: id(y) is preserved
                return y

        model = MutatingRoot().eval()
        x = np.random.default_rng(1).normal(size=(2, 8)).astype(np.float32)
        plan = ForwardPlan.trace(model, x)
        assert not plan.valid

    def test_list_output_with_root_post_processing_is_invalidated(self):
        # Same trap for detection-style list outputs: the root returns the
        # head's own list object (so the identity chain holds) but mutates
        # its contents in place.  Without the structural replay comparison
        # the plan would silently drop the root's work.
        class ListHead(nn.Module):
            def __init__(self):
                super().__init__()
                self.lin = nn.Linear(8, 8, rng=np.random.default_rng(0))

            def forward(self, x):
                return [self.lin(x)]

        class ListMutatingRoot(nn.Module):
            def __init__(self):
                super().__init__()
                self.pre = nn.Linear(8, 8, rng=np.random.default_rng(1))
                self.head = ListHead()

            def forward(self, x):
                dets = self.head(self.pre(x))
                dets[0] *= 2.0
                return dets

        class ListChainRoot(ListMutatingRoot):
            def forward(self, x):
                return self.head(self.pre(x))

        x = np.random.default_rng(2).normal(size=(2, 8)).astype(np.float32)
        assert not ForwardPlan.trace(ListMutatingRoot().eval(), x).valid
        # A genuinely linear list-returning model stays valid: the replay
        # comparison recurses into the list's arrays instead of rejecting
        # non-ndarray outputs wholesale.
        clean = ForwardPlan.trace(ListChainRoot().eval(), x)
        assert clean.valid and clean.num_segments == 2

    def test_segment_for_maps_nested_modules_to_containing_segment(self):
        model = resnet18(num_classes=10, seed=0).eval()
        plan = ForwardPlan.trace(model, _input())
        block_index = plan.segment_names.index("layer2.1")
        assert plan.segment_for("layer2.1.conv2") == block_index
        assert plan.segment_for("layer2.1") == block_index
        assert plan.segment_for("not.a.module") is None


class TestResume:
    def test_resume_from_every_boundary_is_bit_exact(self, model_and_plan):
        model, plan, x = model_and_plan
        full = np.asarray(model(x))
        for k in range(plan.num_segments + 1):
            boundary = plan.run_prefix(x, k)
            resumed = np.asarray(plan.resume(k, boundary))
            assert resumed.tobytes() == full.tobytes(), f"resume at segment {k} diverged"

    def test_resume_with_partial_batch_shape(self, model_and_plan):
        model, plan, _ = model_and_plan
        x = _input(batch=1, seed=3)
        full = np.asarray(model(x))
        k = plan.num_segments // 2
        resumed = np.asarray(plan.resume(k, plan.run_prefix(x, k)))
        assert resumed.tobytes() == full.tobytes()

    def test_resume_index_bounds_checked(self, model_and_plan):
        _, plan, x = model_and_plan
        with pytest.raises(IndexError):
            plan.resume(plan.num_segments + 1, x)
        with pytest.raises(IndexError):
            plan.run_prefix(x, -1)


class TestRecording:
    def test_recording_checkpoints_match_prefix_runs(self):
        model = lenet5(seed=0).eval()
        x = _input(seed=4)
        plan = ForwardPlan.trace(model, x)
        output, checkpoints, marks = plan.run_recording(x, "all")
        assert marks is None
        assert set(checkpoints) == set(range(1, plan.num_segments))
        np.testing.assert_array_equal(np.asarray(output), np.asarray(model(x)))
        for k, value in checkpoints.items():
            np.testing.assert_array_equal(np.asarray(value), np.asarray(plan.run_prefix(x, k)))

    def test_selected_boundaries_only(self):
        model = lenet5(seed=0).eval()
        x = _input(seed=5)
        plan = ForwardPlan.trace(model, x)
        _, checkpoints, _ = plan.run_recording(x, [3])
        assert list(checkpoints) == [3]

    def test_arena_buffers_are_reused_across_recordings(self):
        model = lenet5(seed=0).eval()
        x = _input(seed=6)
        plan = ForwardPlan.trace(model, x)
        arena = ActivationArena()
        _, first, _ = plan.run_recording(x, "all", arena=arena)
        nbytes = arena.nbytes
        _, second, _ = plan.run_recording(x + 1.0, "all", arena=arena)
        assert arena.nbytes == nbytes  # same buffers, no growth
        for k in first:
            assert first[k] is second[k]

    def test_recorded_checkpoints_without_arena_are_owned_copies(self):
        model = mlp(seed=0).eval()
        x = _input(seed=7)
        plan = ForwardPlan.trace(model, x)
        _, first, _ = plan.run_recording(x, "all")
        snapshot = {k: v.copy() for k, v in first.items()}
        plan.run_recording(x * -2.0, "all")
        for k in first:
            np.testing.assert_array_equal(first[k], snapshot[k])

    def test_monitor_marks_cover_every_boundary(self):
        from repro.alficore.monitoring import InferenceMonitor

        model = lenet5(seed=0).eval()
        x = _input(seed=8)
        plan = ForwardPlan.trace(model, x)
        # Poison a mid-network weight so NaN events exist to attribute.
        conv2 = model.get_submodule("features.3")
        original = conv2.weight.data[0, 0, 0, 0]
        conv2.weight.data[0, 0, 0, 0] = np.nan
        monitor = InferenceMonitor(model)
        monitor.attach()
        try:
            monitor.reset()
            _, _, marks = plan.run_recording(x, [], monitor=monitor)
            result = monitor.collect()
        finally:
            monitor.detach()
            conv2.weight.data[0, 0, 0, 0] = original
        assert len(marks) == plan.num_segments + 1
        assert marks[0] == (0, 0, 0)
        assert marks[-1] == (len(result.nan_layers), len(result.inf_layers), 0)
        # Counts are monotone and the poisoned layer's events appear only
        # from its segment boundary onwards.
        poisoned = plan.segment_for("features.3")
        assert marks[poisoned][0] == 0
        assert marks[poisoned + 1][0] >= 1
        for before, after in zip(marks, marks[1:]):
            assert all(b <= a for b, a in zip(before, after))
