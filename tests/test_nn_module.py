"""Unit tests for the Module base class: registration, hooks, traversal."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


class TwoLayer(Module):
    """Minimal two-layer test network."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = nn.Linear(4, 8, rng=rng)
        self.act = nn.ReLU()
        self.fc2 = nn.Linear(8, 2, rng=rng)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_submodules_registered_via_setattr(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_children()]
        assert names == ["fc1", "act", "fc2"]

    def test_parameters_recursive(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(3)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_getattr_returns_parameter(self):
        layer = nn.Linear(3, 2)
        assert isinstance(layer.weight, Parameter)
        assert layer.weight.shape == (2, 3)

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            _ = TwoLayer().does_not_exist


class TestTraversal:
    def test_named_modules_includes_root(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert names[0] == ""
        assert "fc1" in names and "fc2" in names

    def test_get_submodule(self):
        model = TwoLayer()
        assert model.get_submodule("fc1") is model._modules["fc1"]
        assert model.get_submodule("") is model

    def test_get_submodule_nested(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 2)))
        inner = seq.get_submodule("1.0")
        assert isinstance(inner, nn.Linear)

    def test_get_submodule_unknown_raises(self):
        with pytest.raises(KeyError):
            TwoLayer().get_submodule("nope")


class TestForwardHooks:
    def test_hook_sees_output(self):
        model = TwoLayer()
        captured = {}

        def hook(module, inputs, output):
            captured["shape"] = output.shape
            return None

        model.fc1.register_forward_hook(hook)
        model(np.zeros((3, 4), dtype=np.float32))
        assert captured["shape"] == (3, 8)

    def test_hook_can_replace_output(self):
        model = TwoLayer()

        def hook(module, inputs, output):
            return np.zeros_like(output)

        model.fc1.register_forward_hook(hook)
        out = model(np.ones((1, 4), dtype=np.float32))
        # fc2(relu(0)) == fc2 bias only
        expected = model.fc2(np.zeros((1, 8), dtype=np.float32))
        np.testing.assert_allclose(out, expected)

    def test_hook_in_place_modification(self):
        model = TwoLayer()

        def hook(module, inputs, output):
            output[...] = 1.0
            return None

        model.fc1.register_forward_hook(hook)
        out = model(np.zeros((1, 4), dtype=np.float32))
        expected = model.fc2(np.ones((1, 8), dtype=np.float32))
        np.testing.assert_allclose(out, expected)

    def test_hook_removal(self):
        model = TwoLayer()
        calls = []
        handle = model.fc1.register_forward_hook(lambda m, i, o: calls.append(1))
        model(np.zeros((1, 4), dtype=np.float32))
        handle.remove()
        model(np.zeros((1, 4), dtype=np.float32))
        assert len(calls) == 1

    def test_hook_removal_idempotent(self):
        model = TwoLayer()
        handle = model.fc1.register_forward_hook(lambda m, i, o: None)
        handle.remove()
        handle.remove()  # must not raise

    def test_pre_hook_modifies_input(self):
        model = TwoLayer()

        def pre_hook(module, inputs):
            return (inputs[0] * 0.0,)

        model.fc1.register_forward_pre_hook(pre_hook)
        out = model(np.ones((1, 4), dtype=np.float32))
        expected = TwoLayer()(np.zeros((1, 4), dtype=np.float32))
        np.testing.assert_allclose(out, expected)

    def test_multiple_hooks_run_in_order(self):
        model = TwoLayer()
        order = []
        model.fc1.register_forward_hook(lambda m, i, o: order.append("first"))
        model.fc1.register_forward_hook(lambda m, i, o: order.append("second"))
        model(np.zeros((1, 4), dtype=np.float32))
        assert order == ["first", "second"]


class TestStateAndClone:
    def test_state_dict_round_trip(self):
        source = TwoLayer()
        target = TwoLayer()
        target.load_state_dict(source.state_dict())
        x = np.random.default_rng(1).normal(size=(2, 4)).astype(np.float32)
        np.testing.assert_allclose(source(x), target(x))

    def test_state_dict_returns_copies(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.allclose(model.fc1.weight.data, 99.0)

    def test_load_state_dict_unknown_key_raises(self):
        model = TwoLayer()
        with pytest.raises(KeyError):
            model.load_state_dict({"unknown.weight": np.zeros((1,))})

    def test_clone_is_independent(self):
        model = TwoLayer()
        clone = model.clone()
        clone.fc1.weight.data[...] = 0.0
        assert not np.allclose(model.fc1.weight.data, 0.0)

    def test_clone_drops_hooks(self):
        model = TwoLayer()
        calls = []
        model.fc1.register_forward_hook(lambda m, i, o: calls.append(1))
        clone = model.clone()
        clone(np.zeros((1, 4), dtype=np.float32))
        assert calls == []

    def test_clone_preserves_outputs(self):
        model = TwoLayer()
        clone = model.clone()
        x = np.random.default_rng(2).normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(model(x), clone(x))

    def test_train_eval_mode_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_parameter_copy_shape_mismatch(self):
        layer = nn.Linear(3, 2)
        with pytest.raises(ValueError):
            layer.weight.copy_(np.zeros((5, 5)))
