"""Smoke tests that run the example scripts end to end.

The examples are part of the public deliverable; these tests execute them in
a temporary working directory (so their output folders do not pollute the
repository) and check that they print the expected campaign summaries.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def run_example(script_name: str, tmp_path, monkeypatch, capsys) -> str:
    """Execute an example script as __main__ from a temporary cwd."""
    monkeypatch.chdir(tmp_path)
    script = EXAMPLES_DIR / script_name
    assert script.exists(), f"example script missing: {script}"
    # Examples import from the installed package; sys.argv must look clean.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, tmp_path, monkeypatch, capsys):
        output = run_example("quickstart.py", tmp_path, monkeypatch, capsys)
        assert "inferences      : 30" in output
        assert "masked/SDE/DUE" in output
        assert "first applied fault" in output
        assert (tmp_path / "quickstart_output" / "quickstart_corrupted_results.csv").exists()

    def test_quickstart_spec_file_matches_builder(self, tmp_path, monkeypatch, capsys):
        """The checked-in YAML spec is the same experiment as the builder one."""
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec.load(EXAMPLES_DIR / "specs" / "quickstart.yml")
        assert spec.model.name == "lenet5"
        assert spec.dataset.params["num_samples"] == 30
        assert spec.scenario.injection_target == "weights"
        spec.validate(registries=True)

    def test_layer_sweep(self, tmp_path, monkeypatch, capsys):
        output = run_example("layer_sweep.py", tmp_path, monkeypatch, capsys)
        assert "SDE+DUE per injected layer" in output
        assert "SDE+DUE per flipped bit position" in output
        # First run: every grid point executes through the campaign store.
        assert "layer grid: 8 executed, 0 cached" in output
        assert (
            tmp_path / "examples_output" / "layer_sweep_store" / "bits"
            / "layer-sweep_sweep_table.csv"
        ).exists()

    def test_layer_sweep_spec_file_expands(self):
        """The checked-in sweep spec declares the grid the example runs."""
        from repro.experiments import ExperimentSpec, expand

        spec = ExperimentSpec.load(EXAMPLES_DIR / "specs" / "layer_sweep.yml")
        assert spec.sweep is not None
        plan = expand(spec)
        assert len(plan) == 6  # 5 layer points + 1 explicit bit point
        assert plan.points[0].spec.scenario.layer_range == (0, 0)
        assert plan.points[5].overrides["scenario.rnd_bit_range"] == [30, 30]

    @pytest.mark.slow
    def test_classification_campaign(self, tmp_path, monkeypatch, capsys):
        output = run_example("classification_campaign.py", tmp_path, monkeypatch, capsys)
        assert "result files" in output
        assert (tmp_path / "examples_output" / "classification").exists()

    @pytest.mark.slow
    def test_object_detection_campaign(self, tmp_path, monkeypatch, capsys):
        output = run_example("object_detection_campaign.py", tmp_path, monkeypatch, capsys)
        assert "IVMOD_SDE" in output
        assert (tmp_path / "examples_output" / "detection").exists()

    def test_sharded_campaign(self, tmp_path, monkeypatch, capsys):
        output = run_example("sharded_campaign.py", tmp_path, monkeypatch, capsys)
        assert "Sharded campaign execution vs serial" in output
        assert "bit-identical to serial run: True" in output

    @pytest.mark.slow
    def test_fault_reuse_and_mitigation(self, tmp_path, monkeypatch, capsys):
        output = run_example("fault_reuse_and_mitigation.py", tmp_path, monkeypatch, capsys)
        assert "stored fault file" in output
        assert "three model variants" in output
