"""Unit tests for the Ranger / Clipper hardening layers."""

import numpy as np
import pytest

from repro import nn
from repro.alficore import apply_protection, collect_activation_bounds
from repro.alficore.protection import (
    ActivationBounds,
    Clipper,
    ProtectedLayer,
    Ranger,
    count_protected_layers,
)
from repro.pytorchfi import FaultInjection
from repro.pytorchfi.core import WeightFault


class TestGuardModules:
    def test_ranger_clamps(self):
        guard = Ranger(-1.0, 2.0)
        out = guard(np.array([-5.0, 0.5, 7.0], dtype=np.float32))
        np.testing.assert_allclose(out, [-1.0, 0.5, 2.0])

    def test_ranger_handles_nan_and_inf(self):
        guard = Ranger(-1.0, 2.0)
        out = guard(np.array([np.nan, np.inf, -np.inf], dtype=np.float32))
        np.testing.assert_allclose(out, [2.0, 2.0, -1.0])
        assert np.isfinite(out).all()

    def test_clipper_zeroes_out_of_range(self):
        guard = Clipper(-1.0, 2.0)
        out = guard(np.array([-5.0, 0.5, 7.0], dtype=np.float32))
        np.testing.assert_allclose(out, [0.0, 0.5, 0.0])

    def test_clipper_zeroes_nan_inf(self):
        guard = Clipper(-1.0, 2.0)
        out = guard(np.array([np.nan, np.inf], dtype=np.float32))
        np.testing.assert_allclose(out, [0.0, 0.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Ranger(2.0, 1.0)
        with pytest.raises(ValueError):
            Clipper(2.0, 1.0)


class TestBoundCollection:
    def test_bounds_cover_observed_activations(self, lenet_model, small_images):
        bounds = collect_activation_bounds(lenet_model, [small_images], margin=1.0)
        assert len(bounds.lower) == 5  # one entry per conv/linear layer
        for name in bounds.lower:
            assert bounds.lower[name] <= bounds.upper[name]

    def test_margin_widens_bounds(self, lenet_model, small_images):
        tight = collect_activation_bounds(lenet_model, [small_images], margin=1.0)
        wide = collect_activation_bounds(lenet_model, [small_images], margin=2.0)
        for name in tight.upper:
            if tight.upper[name] > 0:
                assert wide.upper[name] >= tight.upper[name]

    def test_invalid_margin(self, lenet_model, small_images):
        with pytest.raises(ValueError):
            collect_activation_bounds(lenet_model, [small_images], margin=0)

    def test_bound_for_unknown_layer_is_infinite(self):
        bounds = ActivationBounds(lower={}, upper={})
        low, high = bounds.bound_for("whatever")
        assert low == -np.inf and high == np.inf

    def test_global_bounds(self):
        bounds = ActivationBounds(lower={"a": -1.0, "b": -3.0}, upper={"a": 5.0, "b": 2.0})
        assert bounds.global_bounds() == (-3.0, 5.0)

    def test_as_dict(self):
        bounds = ActivationBounds(lower={"a": -1.0}, upper={"a": 1.0})
        assert bounds.as_dict() == {"lower": {"a": -1.0}, "upper": {"a": 1.0}}


class TestApplyProtection:
    def test_protected_layers_inserted(self, lenet_model, small_images):
        bounds = collect_activation_bounds(lenet_model, [small_images])
        protected = apply_protection(lenet_model, bounds, "ranger")
        assert count_protected_layers(protected) == 5
        assert count_protected_layers(lenet_model) == 0

    def test_protection_preserves_fault_free_output(self, lenet_model, small_images):
        bounds = collect_activation_bounds(lenet_model, [small_images], margin=1.05)
        for protection in ("ranger", "clipper"):
            protected = apply_protection(lenet_model, bounds, protection)
            np.testing.assert_allclose(
                protected(small_images), lenet_model(small_images), rtol=1e-4, atol=1e-4
            )

    def test_unknown_protection_raises(self, lenet_model, small_images):
        bounds = collect_activation_bounds(lenet_model, [small_images])
        with pytest.raises(KeyError):
            apply_protection(lenet_model, bounds, "shield")

    def test_protection_survives_clone(self, lenet_model, small_images):
        bounds = collect_activation_bounds(lenet_model, [small_images])
        protected = apply_protection(lenet_model, bounds, "ranger")
        cloned = protected.clone()
        assert count_protected_layers(cloned) == count_protected_layers(protected)

    def test_injectable_layer_order_preserved(self, lenet_model, small_images):
        """The same fault matrix must address the same layers in both models."""
        bounds = collect_activation_bounds(lenet_model, [small_images])
        protected = apply_protection(lenet_model, bounds, "ranger")
        fi_plain = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        fi_protected = FaultInjection(protected, input_shape=(3, 32, 32))
        assert fi_plain.num_layers == fi_protected.num_layers
        for info_a, info_b in zip(fi_plain.layers, fi_protected.layers):
            assert info_a.layer_type == info_b.layer_type
            assert info_a.weight_shape == info_b.weight_shape

    def test_ranger_suppresses_exponent_weight_fault(self, lenet_model, small_images):
        """A bit-30 weight flip produces a huge activation; Ranger contains it."""
        bounds = collect_activation_bounds(lenet_model, [small_images])
        protected = apply_protection(lenet_model, bounds, "ranger")
        fault = WeightFault(layer=0, out_channel=0, in_channel=0, depth=-1, height=2, width=2, value=30)

        fi_plain = FaultInjection(lenet_model, input_shape=(3, 32, 32))
        corrupted_plain = fi_plain.declare_weight_fault_injection([fault])
        fi_protected = FaultInjection(protected, input_shape=(3, 32, 32))
        corrupted_protected = fi_protected.declare_weight_fault_injection([fault])

        golden = lenet_model(small_images)
        plain_out = corrupted_plain(small_images)
        protected_out = corrupted_protected(small_images)

        plain_error = np.abs(plain_out - golden).max()
        protected_error = np.abs(protected_out - golden).max()
        assert protected_error < plain_error
        assert np.isfinite(protected_out).all()

    def test_protected_layer_wrapper_forward(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
        wrapper = ProtectedLayer(layer, Ranger(-0.5, 0.5))
        out = wrapper(np.ones((1, 2), dtype=np.float32) * 100)
        assert np.abs(out).max() <= 0.5
