"""Unit tests for the weight initialisers and the default batch collation."""

import numpy as np
import pytest

from repro.data.dataset import default_collate
from repro.nn import init


class TestInitialisers:
    def test_kaiming_uniform_bounds(self):
        rng = init.make_rng(0)
        fan_in = 64
        values = init.kaiming_uniform((1000,), fan_in, rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / fan_in)
        assert values.dtype == np.float32
        assert np.abs(values).max() <= bound + 1e-6
        assert values.std() > 0

    def test_kaiming_invalid_fan_in(self):
        with pytest.raises(ValueError):
            init.kaiming_uniform((4,), 0, init.make_rng(0))

    def test_xavier_uniform_bounds(self):
        rng = init.make_rng(1)
        values = init.xavier_uniform((500,), 30, 70, rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(values).max() <= bound + 1e-6

    def test_xavier_invalid_fans(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((4,), 0, 4, init.make_rng(0))

    def test_uniform_bias_bounds(self):
        values = init.uniform_bias((200,), 25, init.make_rng(2))
        assert np.abs(values).max() <= 1.0 / 5.0 + 1e-6

    def test_uniform_bias_zero_fan_in(self):
        np.testing.assert_array_equal(init.uniform_bias((3,), 0, init.make_rng(0)), 0.0)

    def test_zeros_and_ones(self):
        np.testing.assert_array_equal(init.zeros((2, 2)), 0.0)
        np.testing.assert_array_equal(init.ones((2, 2)), 1.0)

    def test_same_seed_reproducible(self):
        a = init.kaiming_uniform((10,), 4, init.make_rng(5))
        b = init.kaiming_uniform((10,), 4, init.make_rng(5))
        np.testing.assert_array_equal(a, b)


class TestDefaultCollate:
    def test_stacks_arrays(self):
        batch = [np.ones((2, 2)), np.zeros((2, 2))]
        out = default_collate(batch)
        assert out.shape == (2, 2, 2)

    def test_collates_tuples_elementwise(self):
        batch = [(np.ones(3), 1), (np.zeros(3), 2)]
        images, labels = default_collate(batch)
        assert images.shape == (2, 3)
        np.testing.assert_array_equal(labels, [1, 2])

    def test_collates_dicts_keywise(self):
        batch = [{"x": 1.0, "y": np.ones(2)}, {"x": 2.0, "y": np.zeros(2)}]
        out = default_collate(batch)
        np.testing.assert_array_equal(out["x"], [1.0, 2.0])
        assert out["y"].shape == (2, 2)

    def test_scalars_become_arrays(self):
        np.testing.assert_array_equal(default_collate([1, 2, 3]), [1, 2, 3])

    def test_other_types_returned_as_list(self):
        assert default_collate(["a", "b"]) == ["a", "b"]
