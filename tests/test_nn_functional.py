"""Unit tests for the functional operations (conv, pooling, activations)."""

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, weight, bias, stride, padding):
    """Straightforward quadruple-loop reference convolution."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    x_padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w), dtype=np.float64)
    for ni in range(n):
        for oc in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x_padded[ni, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                    out[ni, oc, i, j] = np.sum(patch * weight[oc])
            if bias is not None:
                out[ni, oc] += bias[oc]
    return out.astype(np.float32)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [((1, 1), (0, 0)), ((2, 2), (1, 1)), ((1, 2), (2, 0))])
    def test_matches_naive_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 9)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=(4,)).astype(np.float32)
        expected = naive_conv2d(x, weight, bias, stride, padding)
        actual = F.conv2d(x, weight, bias, stride, padding)
        np.testing.assert_allclose(actual, expected, rtol=1e-4, atol=1e-5)

    def test_no_bias(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        weight = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        expected = naive_conv2d(x, weight, None, (1, 1), (0, 0))
        np.testing.assert_allclose(F.conv2d(x, weight), expected, rtol=1e-4, atol=1e-5)

    def test_output_shape(self):
        x = np.zeros((2, 3, 32, 32), dtype=np.float32)
        weight = np.zeros((8, 3, 3, 3), dtype=np.float32)
        out = F.conv2d(x, weight, stride=2, padding=1)
        assert out.shape == (2, 8, 16, 16)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 3, 8, 8)), np.zeros((4, 2, 3, 3)))

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((3, 8, 8)), np.zeros((4, 3, 3, 3)))

    def test_too_large_kernel_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 1, 4, 4)), np.zeros((1, 1, 6, 6)))

    def test_identity_kernel(self):
        x = np.random.default_rng(2).normal(size=(1, 1, 6, 6)).astype(np.float32)
        weight = np.zeros((1, 1, 1, 1), dtype=np.float32)
        weight[0, 0, 0, 0] = 1.0
        np.testing.assert_allclose(F.conv2d(x, weight), x)


class TestConv3d:
    def test_reduces_to_summed_conv2d(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 3, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(4, 2, 1, 3, 3)).astype(np.float32)
        out3d = F.conv3d(x, weight)
        # kd=1 means each depth slice is an independent conv2d.
        for d in range(3):
            expected = F.conv2d(x[:, :, d], weight[:, :, 0])
            np.testing.assert_allclose(out3d[:, :, d], expected, rtol=1e-4, atol=1e-5)

    def test_output_shape(self):
        x = np.zeros((2, 3, 4, 8, 8), dtype=np.float32)
        weight = np.zeros((5, 3, 2, 3, 3), dtype=np.float32)
        out = F.conv3d(x, weight, padding=(0, 1, 1))
        assert out.shape == (2, 5, 3, 8, 8)

    def test_bias_added(self):
        x = np.zeros((1, 1, 2, 4, 4), dtype=np.float32)
        weight = np.zeros((2, 1, 1, 3, 3), dtype=np.float32)
        bias = np.array([1.5, -2.0], dtype=np.float32)
        out = F.conv3d(x, weight, bias)
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)


class TestLinear:
    def test_matches_matmul(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 7)).astype(np.float32)
        weight = rng.normal(size=(3, 7)).astype(np.float32)
        bias = rng.normal(size=(3,)).astype(np.float32)
        np.testing.assert_allclose(F.linear(x, weight, bias), x @ weight.T + bias, rtol=1e-5)

    def test_feature_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.linear(np.zeros((2, 5)), np.zeros((3, 4)))


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        out = F.leaky_relu(np.array([-10.0, 5.0], dtype=np.float32), 0.1)
        np.testing.assert_allclose(out, [-1.0, 5.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-20, 20, 41).astype(np.float32)
        s = F.sigmoid(x)
        assert np.all(s >= 0) and np.all(s <= 1)
        np.testing.assert_allclose(s + F.sigmoid(-x), 1.0, atol=1e-6)

    def test_sigmoid_extreme_values_no_overflow(self):
        out = F.sigmoid(np.array([-1e30, 1e30], dtype=np.float32))
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 9)).astype(np.float32)
        np.testing.assert_allclose(F.softmax(x, axis=1).sum(axis=1), 1.0, rtol=1e-5)

    def test_softmax_stability_large_values(self):
        out = F.softmax(np.array([[1e30, 0.0]], dtype=np.float64))
        assert np.isfinite(out).all()

    def test_log_softmax_consistency(self):
        x = np.random.default_rng(6).normal(size=(3, 5)).astype(np.float32)
        np.testing.assert_allclose(np.exp(F.log_softmax(x)), F.softmax(x), rtol=1e-4)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32)
        assert F.cross_entropy(logits, np.array([0, 1])) < 1e-3


class TestPooling:
    def test_max_pool_basic(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(x, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_basic(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_stride_one(self):
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        out = F.max_pool2d(x, 2, stride=1)
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[4, 5], [7, 8]])

    def test_max_pool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 2, 2), dtype=np.float32)
        out = F.max_pool2d(x, 2, stride=2, padding=1)
        # Padding must not introduce zeros that beat the real (negative) values.
        assert out.max() == -1.0

    def test_adaptive_avg_pool_to_one(self):
        x = np.random.default_rng(7).normal(size=(2, 3, 7, 5)).astype(np.float32)
        out = F.adaptive_avg_pool2d(x, 1)
        np.testing.assert_allclose(out[:, :, 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)

    def test_adaptive_avg_pool_identity(self):
        x = np.random.default_rng(8).normal(size=(1, 2, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(F.adaptive_avg_pool2d(x, 4), x, rtol=1e-6)

    def test_upsample_nearest(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        out = F.upsample_nearest(x, 2)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_array_equal(out[0, 0, :2, :2], [[1, 1], [1, 1]])
        np.testing.assert_array_equal(out[0, 0, 2:, 2:], [[4, 4], [4, 4]])


class TestNormalisationAndShaping:
    def test_batch_norm_normalises(self):
        x = np.random.default_rng(9).normal(loc=5.0, scale=3.0, size=(4, 2, 8, 8)).astype(np.float32)
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        out = F.batch_norm2d(x, mean, var)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_batch_norm_affine(self):
        x = np.ones((1, 2, 2, 2), dtype=np.float32)
        out = F.batch_norm2d(x, np.zeros(2), np.ones(2), weight=np.array([2.0, 3.0]), bias=np.array([1.0, -1.0]))
        np.testing.assert_allclose(out[0, 0], 2 * 1 / np.sqrt(1 + 1e-5) + 1, rtol=1e-5)

    def test_flatten(self):
        x = np.zeros((2, 3, 4, 5))
        assert F.flatten(x).shape == (2, 60)
        assert F.flatten(x, start_dim=2).shape == (2, 3, 20)


class TestPool2dVectorized:
    """The sliding-window pooling must match the naive window-loop oracle."""

    @pytest.mark.parametrize("mode", ["max", "avg"])
    @pytest.mark.parametrize(
        "kernel,stride,padding",
        [(2, None, 0), (3, 1, 0), (3, 2, 1), ((2, 3), (1, 2), (0, 1)), (4, 3, 2)],
    )
    def test_matches_reference_loop(self, mode, kernel, stride, padding):
        x = np.random.default_rng(42).normal(size=(2, 3, 11, 13)).astype(np.float32)
        fast = F._pool2d(x, kernel, stride, padding, mode)
        slow = F._pool2d_reference(x, kernel, stride, padding, mode)
        np.testing.assert_array_equal(fast, slow)

    @pytest.mark.parametrize("mode", ["max", "avg"])
    def test_matches_reference_with_nonfinite_values(self, mode):
        x = np.random.default_rng(7).normal(size=(1, 2, 8, 8)).astype(np.float32)
        x[0, 0, 2, 3] = np.inf
        x[0, 1, 5, 5] = -np.inf
        fast = F._pool2d(x, 2, 2, 0, mode)
        slow = F._pool2d_reference(x, 2, 2, 0, mode)
        np.testing.assert_array_equal(fast, slow)

    def test_reference_and_fast_reject_non_4d(self):
        with pytest.raises(ValueError):
            F._pool2d(np.zeros((2, 3, 4)), 2, None, 0, "max")
        with pytest.raises(ValueError):
            F._pool2d_reference(np.zeros((2, 3, 4)), 2, None, 0, "max")
