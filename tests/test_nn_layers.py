"""Unit tests for the layer modules and containers."""

import numpy as np
import pytest

from repro import nn


class TestConvLayers:
    def test_conv2d_shapes_and_params(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer.weight.shape == (8, 3, 3, 3)
        assert layer.bias.shape == (8,)
        out = layer(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_conv2d_no_bias(self):
        layer = nn.Conv2d(1, 1, 3, bias=False)
        assert layer.bias is None
        assert [name for name, _ in layer.named_parameters()] == ["weight"]

    def test_conv2d_deterministic_with_same_rng_seed(self):
        a = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        b = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_conv2d_invalid_channels(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 4, 3)

    def test_conv3d_forward(self):
        layer = nn.Conv3d(2, 4, (1, 3, 3), padding=(0, 1, 1))
        out = layer(np.zeros((1, 2, 3, 8, 8), dtype=np.float32))
        assert out.shape == (1, 4, 3, 8, 8)

    def test_linear_forward(self):
        layer = nn.Linear(6, 4)
        out = layer(np.ones((3, 6), dtype=np.float32))
        assert out.shape == (3, 4)

    def test_linear_invalid_features(self):
        with pytest.raises(ValueError):
            nn.Linear(5, 0)


class TestSimpleLayers:
    def test_batchnorm_default_is_identity_like(self):
        bn = nn.BatchNorm2d(3)
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(bn(x), x, rtol=1e-3, atol=1e-3)

    def test_relu_layer(self):
        assert nn.ReLU()(np.array([-2.0, 3.0])).min() == 0.0

    def test_leaky_relu_layer(self):
        out = nn.LeakyReLU(0.2)(np.array([-1.0], dtype=np.float32))
        np.testing.assert_allclose(out, [-0.2])

    def test_softmax_layer(self):
        out = nn.Softmax(axis=1)(np.zeros((2, 4), dtype=np.float32))
        np.testing.assert_allclose(out, 0.25)

    def test_maxpool_layer(self):
        out = nn.MaxPool2d(2)(np.zeros((1, 1, 8, 8), dtype=np.float32))
        assert out.shape == (1, 1, 4, 4)

    def test_adaptive_pool_layer(self):
        out = nn.AdaptiveAvgPool2d(2)(np.zeros((1, 3, 9, 9), dtype=np.float32))
        assert out.shape == (1, 3, 2, 2)

    def test_upsample_layer(self):
        out = nn.Upsample(3)(np.zeros((1, 2, 4, 4), dtype=np.float32))
        assert out.shape == (1, 2, 12, 12)

    def test_flatten_layer(self):
        out = nn.Flatten()(np.zeros((2, 3, 4, 4)))
        assert out.shape == (2, 48)

    def test_identity_layer(self):
        x = np.arange(5)
        assert nn.Identity()(x) is x

    def test_dropout_eval_is_identity(self):
        dropout = nn.Dropout(0.9)
        dropout.eval()
        x = np.ones((4, 4), dtype=np.float32)
        np.testing.assert_array_equal(dropout(x), x)

    def test_dropout_train_zeroes_values(self):
        dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
        dropout.train()
        out = dropout(np.ones((100, 100), dtype=np.float32))
        assert (out == 0).mean() > 0.3

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_sigmoid_tanh_layers(self):
        x = np.array([0.0], dtype=np.float32)
        np.testing.assert_allclose(nn.Sigmoid()(x), [0.5])
        np.testing.assert_allclose(nn.Tanh()(x), [0.0])


class TestContainers:
    def test_sequential_forward(self):
        seq = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(0)), nn.ReLU(), nn.Linear(8, 2, rng=np.random.default_rng(1)))
        out = seq(np.zeros((3, 4), dtype=np.float32))
        assert out.shape == (3, 2)

    def test_sequential_indexing_and_len(self):
        seq = nn.Sequential(nn.ReLU(), nn.Flatten())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert isinstance(seq[-1], nn.Flatten)

    def test_sequential_append(self):
        seq = nn.Sequential(nn.ReLU())
        seq.append(nn.Flatten())
        assert len(seq) == 2

    def test_sequential_rejects_non_module(self):
        with pytest.raises(TypeError):
            nn.Sequential(nn.ReLU(), "not a module")

    def test_module_list_registration(self):
        heads = nn.ModuleList([nn.Linear(4, 2), nn.Linear(4, 2)])
        assert len(heads) == 2
        assert len(list(heads.parameters())) == 4

    def test_module_list_iteration(self):
        heads = nn.ModuleList([nn.ReLU(), nn.Flatten()])
        types = [type(m) for m in heads]
        assert types == [nn.ReLU, nn.Flatten]

    def test_module_list_rejects_non_module(self):
        with pytest.raises(TypeError):
            nn.ModuleList([42])
