"""Tests for the central component registries and their error paths."""

import pytest

from repro.cli import build_parser
from repro.experiments import (
    DATASETS,
    DuplicateComponentError,
    ERROR_MODELS,
    MODELS,
    PROTECTIONS,
    Registry,
    TASKS,
    UnknownComponentError,
    register_error_model,
    register_model,
)


class TestRegistryBasics:
    def test_builtins_are_registered(self):
        assert {"lenet5", "alexnet", "vgg16", "resnet50"} <= set(MODELS)
        assert {"yolov3", "retinanet", "faster_rcnn"} <= set(MODELS)
        assert {"synthetic-classification", "synthetic-coco"} <= set(DATASETS)
        assert {"bitflip", "number", "stuck_at"} <= set(ERROR_MODELS)
        assert {"ranger", "clipper"} <= set(PROTECTIONS)
        assert {"classification", "detection"} <= set(TASKS)

    def test_sorted_iteration_and_len(self):
        registry = Registry("thing")
        registry.register("b", lambda: 2)
        registry.register("a", lambda: 1)
        assert sorted(registry) == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "c" not in registry

    def test_metadata_filtering(self):
        classifiers = MODELS.names(kind="classifier")
        detectors = MODELS.names(kind="detector")
        assert "lenet5" in classifiers and "lenet5" not in detectors
        assert "yolov3" in detectors and "yolov3" not in classifiers
        assert classifiers == sorted(classifiers)


class TestErrorPaths:
    def test_duplicate_registration_raises(self):
        registry = Registry("gizmo")
        registry.register("x", lambda: 1)
        with pytest.raises(DuplicateComponentError, match="already registered"):
            registry.register("x", lambda: 2)
        # override=True replaces instead
        registry.register("x", lambda: 3, override=True)
        assert registry.get("x")() == 3

    def test_duplicate_builtin_model_raises(self):
        with pytest.raises(DuplicateComponentError):
            register_model("lenet5", lambda: None)

    def test_unknown_name_has_did_you_mean(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            MODELS.get("lenet")
        message = str(excinfo.value)
        assert "did you mean" in message
        assert "lenet5" in message

    def test_unknown_name_without_close_match_lists_registered(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            TASKS.get("zzzzz")
        assert "registered:" in str(excinfo.value)

    def test_register_task_instantiates_classes(self):
        from repro.experiments import ExperimentTask, register_task

        @register_task("unit-test-task")
        class UnitTestTask(ExperimentTask):
            name = "unit-test-task"

        try:
            plugin = TASKS.get("unit-test-task")
            assert isinstance(plugin, UnitTestTask)  # instance, not the class
        finally:
            TASKS.unregister("unit-test-task")

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("made", flavor="sweet")
        def make():
            return 42

        assert registry.get("made") is make
        assert registry.metadata("made") == {"flavor": "sweet"}
        registry.unregister("made")
        assert "made" not in registry


class TestCliChoicesStaySynced:
    """``sorted(registry)`` drives CLI ``choices`` — help text self-syncs."""

    @staticmethod
    def _option_choices(command: str, option: str):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, getattr(__import__("argparse"), "_SubParsersAction"))
        )
        sub = subparsers.choices[command]
        action = next(a for a in sub._actions if option in a.option_strings)
        return list(action.choices)

    def test_imgclass_model_choices_match_registry(self):
        assert self._option_choices("run-imgclass", "--model") == MODELS.names(kind="classifier")

    def test_objdet_model_choices_match_registry(self):
        assert self._option_choices("run-objdet", "--model") == MODELS.names(kind="detector")

    def test_protection_choices_match_registry(self):
        assert self._option_choices("run-imgclass", "--protection") == [
            "none", *PROTECTIONS.names()
        ]

    def test_value_type_choices_match_registry(self):
        assert self._option_choices("run-imgclass", "--value-type") == sorted(ERROR_MODELS)

    def test_late_legacy_registry_addition_is_absorbed(self):
        from repro.models import MODEL_REGISTRY, lenet5

        MODEL_REGISTRY["unit-test-legacy"] = lenet5
        try:
            from repro.experiments import ExperimentSpec

            spec = ExperimentSpec()
            spec.model.name = "unit-test-legacy"
            spec.validate(registries=True)  # re-syncs the legacy snapshot
            assert "unit-test-legacy" in MODELS
        finally:
            MODEL_REGISTRY.pop("unit-test-legacy", None)
            MODELS.unregister("unit-test-legacy")

    def test_newly_registered_model_appears_in_choices(self):
        from repro.models import lenet5

        register_model("unit-test-classifier", lenet5, kind="classifier")
        try:
            assert "unit-test-classifier" in self._option_choices("run-imgclass", "--model")
        finally:
            MODELS.unregister("unit-test-classifier")


class TestCustomErrorModelRegistration:
    def test_registered_value_type_is_legal_in_scenarios(self):
        from repro.alficore.scenario import default_scenario
        from repro.pytorchfi.errormodels import RandomValueErrorModel

        from repro.experiments import unregister_error_model

        register_error_model(
            "unit-test-zero", lambda scenario: RandomValueErrorModel(0.0, 0.0)
        )
        try:
            scenario = default_scenario(rnd_value_type="unit-test-zero")
            assert scenario.rnd_value_type == "unit-test-zero"
            model = ERROR_MODELS.get("unit-test-zero")(scenario)
            assert isinstance(model, RandomValueErrorModel)
        finally:
            unregister_error_model("unit-test-zero")
        # The whitelist entry is gone with the registration.
        with pytest.raises(ValueError, match="rnd_value_type"):
            default_scenario(rnd_value_type="unit-test-zero")

    def test_failed_duplicate_registration_does_not_whitelist(self):
        with pytest.raises(DuplicateComponentError):
            register_error_model("bitflip", lambda scenario: None)
        # Built-in value types are unaffected; and no stray extra entry
        # appears for a name that failed to register.
        from repro.alficore.scenario import known_value_types

        assert known_value_types().count("bitflip") == 1
