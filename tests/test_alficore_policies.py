"""Unit tests for the injection policies (per_image / per_batch / per_epoch)."""

import pytest

from repro.alficore import InjectionPolicy, default_scenario, fault_column_for_step, faults_required
from repro.alficore.policies import groups_in_campaign


class TestPolicyParsing:
    def test_from_string(self):
        assert InjectionPolicy.from_string("per_image") is InjectionPolicy.PER_IMAGE
        assert InjectionPolicy.from_string("per_batch") is InjectionPolicy.PER_BATCH
        assert InjectionPolicy.from_string("per_epoch") is InjectionPolicy.PER_EPOCH

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            InjectionPolicy.from_string("per_neuron")


class TestGroupCounts:
    def test_per_image_groups(self):
        scenario = default_scenario(dataset_size=10, num_runs=3, inj_policy="per_image")
        assert groups_in_campaign(scenario) == 30

    def test_per_batch_groups(self):
        scenario = default_scenario(dataset_size=10, num_runs=2, batch_size=4, inj_policy="per_batch")
        assert groups_in_campaign(scenario) == 3 * 2  # ceil(10/4) batches per epoch

    def test_per_epoch_groups(self):
        scenario = default_scenario(dataset_size=10, num_runs=5, inj_policy="per_epoch")
        assert groups_in_campaign(scenario) == 5

    def test_faults_required_scales_with_faults_per_image(self):
        scenario = default_scenario(dataset_size=10, num_runs=2, max_faults_per_image=3)
        assert faults_required(scenario) == 60

    def test_faults_required_per_epoch_is_smaller(self):
        per_image = default_scenario(dataset_size=10, num_runs=2, inj_policy="per_image")
        per_epoch = default_scenario(dataset_size=10, num_runs=2, inj_policy="per_epoch")
        assert faults_required(per_epoch) < faults_required(per_image)


class TestColumnMapping:
    def test_per_image_mapping(self):
        scenario = default_scenario(dataset_size=4, max_faults_per_image=2, inj_policy="per_image")
        assert fault_column_for_step(scenario, epoch=0, batch_index=0, image_index=0) == [0, 1]
        assert fault_column_for_step(scenario, epoch=0, batch_index=0, image_index=3) == [6, 7]
        assert fault_column_for_step(scenario, epoch=1, batch_index=0, image_index=0) == [8, 9]

    def test_per_batch_mapping(self):
        scenario = default_scenario(
            dataset_size=6, batch_size=3, max_faults_per_image=1, inj_policy="per_batch"
        )
        assert fault_column_for_step(scenario, 0, 0, 0) == [0]
        assert fault_column_for_step(scenario, 0, 0, 2) == [0]  # same batch, same fault
        assert fault_column_for_step(scenario, 0, 1, 3) == [1]
        assert fault_column_for_step(scenario, 1, 0, 0) == [2]

    def test_per_epoch_mapping(self):
        scenario = default_scenario(dataset_size=5, inj_policy="per_epoch", max_faults_per_image=2)
        assert fault_column_for_step(scenario, 0, 0, 0) == [0, 1]
        assert fault_column_for_step(scenario, 0, 1, 4) == [0, 1]
        assert fault_column_for_step(scenario, 2, 0, 0) == [4, 5]

    def test_all_columns_covered_per_image(self):
        scenario = default_scenario(dataset_size=3, num_runs=2, max_faults_per_image=2)
        seen = []
        for epoch in range(2):
            for image in range(3):
                seen.extend(fault_column_for_step(scenario, epoch, image, image))
        assert sorted(seen) == list(range(faults_required(scenario)))

    def test_invalid_indices(self):
        scenario = default_scenario(dataset_size=4)
        with pytest.raises(ValueError):
            fault_column_for_step(scenario, -1, 0, 0)
        with pytest.raises(ValueError):
            fault_column_for_step(scenario, 0, 0, 10)
        with pytest.raises(ValueError):
            fault_column_for_step(
                default_scenario(dataset_size=4, batch_size=2, inj_policy="per_batch"), 0, 5, 0
            )
