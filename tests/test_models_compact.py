"""Unit tests for grouped convolutions and the compact architectures."""

import numpy as np
import pytest

from repro import nn
from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.models import build_model, mobilenet_lite, squeezenet_lite
from repro.models.pretrained import fit_classifier_head
from repro.nn import functional as F
from repro.pytorchfi import FaultInjection


class TestGroupedConv:
    def test_groups_one_matches_default(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 4, 8, 8)).astype(np.float32)
        weight = rng.normal(size=(6, 4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            F.conv2d(x, weight, groups=1), F.conv2d(x, weight), rtol=1e-6
        )

    def test_grouped_equals_blockwise_dense(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(8, 2, 3, 3)).astype(np.float32)  # 2 groups of 2 channels
        grouped = F.conv2d(x, weight, groups=2, padding=1)
        first = F.conv2d(x[:, :2], weight[:4], padding=1)
        second = F.conv2d(x[:, 2:], weight[4:], padding=1)
        np.testing.assert_allclose(grouped, np.concatenate([first, second], axis=1), rtol=1e-5)

    def test_depthwise_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 3, 5, 5)).astype(np.float32)
        weight = rng.normal(size=(3, 1, 3, 3)).astype(np.float32)
        depthwise = F.conv2d(x, weight, groups=3, padding=1)
        for channel in range(3):
            expected = F.conv2d(x[:, channel : channel + 1], weight[channel : channel + 1], padding=1)
            np.testing.assert_allclose(depthwise[:, channel : channel + 1], expected, rtol=1e-5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 4, 5, 5)), np.zeros((4, 4, 3, 3)), groups=2)

    def test_output_channels_not_divisible_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 4, 5, 5)), np.zeros((5, 2, 3, 3)), groups=2)

    def test_conv2d_layer_with_groups(self):
        layer = nn.Conv2d(8, 8, 3, padding=1, groups=8, rng=np.random.default_rng(0))
        assert layer.weight.shape == (8, 1, 3, 3)
        out = layer(np.zeros((1, 8, 6, 6), dtype=np.float32))
        assert out.shape == (1, 8, 6, 6)

    def test_conv2d_layer_invalid_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(6, 8, 3, groups=4)


class TestCompactModels:
    @pytest.fixture(scope="class")
    def batch(self):
        return np.random.default_rng(3).normal(size=(2, 3, 32, 32)).astype(np.float32)

    def test_mobilenet_forward(self, batch):
        model = mobilenet_lite(num_classes=7).eval()
        out = model(batch)
        assert out.shape == (2, 7)
        assert np.isfinite(out).all()

    def test_squeezenet_forward(self, batch):
        model = squeezenet_lite(num_classes=7).eval()
        out = model(batch)
        assert out.shape == (2, 7)
        assert np.isfinite(out).all()

    def test_registry_entries(self, batch):
        for name in ("mobilenet", "squeezenet"):
            model = build_model(name, num_classes=5).eval()
            assert model(batch).shape == (2, 5)

    def test_mobilenet_uses_depthwise_convs(self):
        model = mobilenet_lite()
        grouped = [
            module
            for _, module in model.named_modules()
            if isinstance(module, nn.Conv2d) and module.groups > 1
        ]
        assert len(grouped) >= 6

    def test_squeezenet_has_no_linear_layers(self):
        model = squeezenet_lite()
        assert not any(isinstance(module, nn.Linear) for _, module in model.named_modules())

    def test_compact_models_are_injectable(self, batch):
        for factory in (mobilenet_lite, squeezenet_lite):
            model = factory(num_classes=10).eval()
            fi = FaultInjection(model, input_shape=(3, 32, 32))
            assert fi.num_layers >= 8
            assert all(info.output_shape is not None for info in fi.layers)

    def test_mobilenet_fault_campaign(self, batch):
        model = mobilenet_lite(num_classes=10).eval()
        scenario = default_scenario(dataset_size=3, injection_target="weights", random_seed=4)
        wrapper = ptfiwrap(model, scenario=scenario)
        corrupted = next(wrapper.get_fimodel_iter())
        assert corrupted(batch).shape == (2, 10)
        assert len(wrapper.applied_faults) == 1

    def test_squeezenet_head_can_be_fitted_via_conv(self):
        """SqueezeNet has no Linear head, so analytic fitting must fail cleanly."""
        dataset = SyntheticClassificationDataset(num_samples=6, num_classes=10, seed=2)
        with pytest.raises(ValueError):
            fit_classifier_head(squeezenet_lite(num_classes=10), dataset, 10)
