"""Unit tests for the result persistence layer (meta / fault / output files)."""

import csv
import json

import numpy as np
import pytest
import yaml

from repro.alficore import CampaignResultWriter, FaultMatrix, default_scenario, load_fault_file
from repro.alficore.results import ClassificationRecord, DetectionRecord


@pytest.fixture
def writer(tmp_path):
    return CampaignResultWriter(tmp_path, campaign_name="unit")


@pytest.fixture
def sample_classification_records():
    return [
        ClassificationRecord(
            image_id=i,
            file_name=f"img_{i}.png",
            ground_truth=i % 3,
            top5_classes=[0, 1, 2, 3, 4],
            top5_probabilities=[0.5, 0.2, 0.15, 0.1, 0.05],
            fault_positions=[{"layer": 1, "bit_position": 30}],
            nan_detected=(i == 2),
        )
        for i in range(3)
    ]


class TestMetaFiles:
    def test_meta_yaml_round_trips(self, writer):
        scenario = default_scenario(dataset_size=5, model_name="vgg16")
        path = writer.write_meta(scenario, extra={"note": "unit-test", "count": np.int64(3)})
        with open(path) as handle:
            document = yaml.safe_load(handle)
        assert document["scenario"]["dataset_size"] == 5
        assert document["run_info"]["note"] == "unit-test"
        assert document["run_info"]["count"] == 3
        assert document["campaign_name"] == "unit"


class TestFaultFiles:
    def test_fault_matrix_written_and_reloadable(self, writer):
        matrix = FaultMatrix(np.arange(14).reshape(7, 2).astype(float), "neurons", {"x": 1})
        path = writer.write_fault_matrix(matrix)
        assert load_fault_file(path) == matrix

    def test_applied_faults_json(self, writer):
        applied = [{"layer": 0, "original_value": np.float32(1.5), "bit_position": 30}]
        path = writer.write_applied_faults(applied)
        data = json.loads(path.read_text())
        assert data[0]["original_value"] == pytest.approx(1.5)


class TestClassificationCsv:
    def test_csv_columns(self, writer, sample_classification_records):
        path = writer.write_classification_csv(sample_classification_records, tag="corrupted")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        expected_columns = {
            "image_id",
            "file_name",
            "ground_truth",
            "model_tag",
            "nan_detected",
            "inf_detected",
            "fault_positions",
        } | {f"top{i}_class" for i in range(1, 6)} | {f"top{i}_prob" for i in range(1, 6)}
        assert expected_columns <= set(rows[0])

    def test_fault_positions_embedded_as_json(self, writer, sample_classification_records):
        writer.write_classification_csv(sample_classification_records)
        rows = writer.read_classification_csv()
        positions = json.loads(rows[0]["fault_positions"])
        assert positions[0]["bit_position"] == 30

    def test_empty_records_produce_empty_file(self, writer, tmp_path):
        path = writer.write_classification_csv([], tag="golden")
        assert path.exists()
        assert path.read_text() == ""

    def test_read_missing_tag_raises(self, writer):
        with pytest.raises(FileNotFoundError):
            writer.read_classification_csv(tag="nothing")


class TestDetectionJson:
    def test_detection_json_round_trip(self, writer):
        records = [
            DetectionRecord(
                image_id=0,
                file_name="img.png",
                boxes=[[0.0, 0.0, 5.0, 5.0]],
                scores=[0.9],
                labels=[2],
                nan_detected=False,
            )
        ]
        writer.write_detection_json(records, tag="corrupted")
        loaded = writer.read_detection_json(tag="corrupted")
        assert loaded[0]["labels"] == [2]
        assert loaded[0]["model_tag"] == "corrupted"

    def test_ground_truth_json(self, writer):
        targets = [{"image_id": 0, "boxes": np.zeros((1, 4)), "labels": np.array([1])}]
        path = writer.write_ground_truth_json(targets)
        data = json.loads(path.read_text())
        assert data[0]["labels"] == [1]

    def test_kpi_summary_json(self, writer):
        path = writer.write_kpi_summary({"sde": np.float64(0.12), "nested": {"due": 0.01}})
        data = json.loads(path.read_text())
        assert data["sde"] == pytest.approx(0.12)
        assert data["nested"]["due"] == pytest.approx(0.01)

    def test_read_missing_detection_tag(self, writer):
        with pytest.raises(FileNotFoundError):
            writer.read_detection_json(tag="missing")


class TestStreamingWriters:
    def test_streamed_csv_matches_batch_writer(self, writer, sample_classification_records, tmp_path):
        batch_path = writer.write_classification_csv(sample_classification_records, tag="batch")
        with writer.stream_classification(tag="streamed") as stream:
            for record in sample_classification_records:
                stream.write(record)
        assert stream.num_records == len(sample_classification_records)
        streamed_rows = writer.read_classification_csv("streamed")
        batch_rows = writer.read_classification_csv("batch")
        assert streamed_rows == batch_rows
        assert batch_path.read_text().splitlines()[0] == \
            (writer.output_dir / "unit_streamed_results.csv").read_text().splitlines()[0]

    def test_streamed_csv_empty_produces_empty_file(self, writer):
        with writer.stream_classification(tag="nothing"):
            pass
        path = writer.output_dir / "unit_nothing_results.csv"
        assert path.exists()
        assert path.read_text() == ""

    def test_streamed_detection_json_readable(self, writer):
        records = [
            DetectionRecord(
                image_id=i,
                file_name=f"img_{i}.png",
                boxes=[[0.0, 0.0, 1.0, 1.0]],
                scores=[0.5],
                labels=[1],
            )
            for i in range(3)
        ]
        with writer.stream_detection(tag="streamed") as stream:
            for record in records:
                stream.write(record)
        loaded = writer.read_detection_json("streamed")
        assert len(loaded) == 3
        assert loaded[0]["image_id"] == 0

    def test_streamed_empty_json_is_valid(self, writer):
        with writer.stream_applied_faults():
            pass
        path = writer.output_dir / "unit_applied_faults.json"
        assert json.loads(path.read_text()) == []

    def test_streamed_applied_faults_handles_numpy_types(self, writer):
        with writer.stream_applied_faults() as stream:
            stream.write({"layer": np.int64(3), "original_value": np.float32(0.25)})
        loaded = json.loads((writer.output_dir / "unit_applied_faults.json").read_text())
        assert loaded == [{"layer": 3, "original_value": 0.25}]
