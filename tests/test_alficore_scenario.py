"""Unit tests for the scenario configuration (default.yml schema)."""

from pathlib import Path

import pytest

from repro.alficore import ScenarioConfig, default_scenario, load_scenario, save_scenario


class TestValidation:
    def test_defaults_are_valid(self):
        config = ScenarioConfig()
        assert config.total_faults == 10

    def test_total_faults_formula(self):
        config = ScenarioConfig(dataset_size=7, num_runs=3, max_faults_per_image=2)
        assert config.total_faults == 7 * 3 * 2
        assert config.number_of_inferences == 21

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dataset_size", 0),
            ("num_runs", -1),
            ("max_faults_per_image", 0),
            ("batch_size", 0),
            ("injection_target", "activations"),
            ("inj_policy", "per_pixel"),
            ("fault_persistence", "flaky"),
            ("rnd_value_type", "gamma_ray"),
            ("quantization", "bfloat16"),
            ("stuck_at_value", 2),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ScenarioConfig(**{field: value})

    def test_bit_range_must_fit_dtype(self):
        with pytest.raises(ValueError):
            ScenarioConfig(quantization="float16", rnd_bit_range=(0, 31))
        ScenarioConfig(quantization="float16", rnd_bit_range=(0, 15))  # valid

    def test_bit_range_ordering(self):
        with pytest.raises(ValueError):
            ScenarioConfig(rnd_bit_range=(20, 10))

    def test_value_range_ordering(self):
        with pytest.raises(ValueError):
            ScenarioConfig(rnd_value_type="number", rnd_value_min=2.0, rnd_value_max=1.0)

    def test_layer_types_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig(layer_types=("conv2d", "attention"))
        with pytest.raises(ValueError):
            ScenarioConfig(layer_types=())

    def test_layer_range_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig(layer_range=(5, 2))
        config = ScenarioConfig(layer_range=(0, 3))
        assert config.layer_range == (0, 3)


class TestConversion:
    def test_as_dict_round_trip(self):
        config = ScenarioConfig(
            dataset_size=20,
            injection_target="weights",
            rnd_bit_range=(23, 30),
            layer_range=(1, 4),
            layer_types=("conv2d",),
        )
        rebuilt = ScenarioConfig.from_dict(config.as_dict())
        assert rebuilt == config

    def test_from_dict_unknown_key_raises(self):
        with pytest.raises(KeyError):
            ScenarioConfig.from_dict({"dataset_size": 5, "warp_drive": True})

    def test_copy_with_overrides(self):
        config = default_scenario()
        modified = config.copy(dataset_size=99, injection_target="weights")
        assert modified.dataset_size == 99
        assert modified.injection_target == "weights"
        assert config.dataset_size == 10  # original unchanged

    def test_copy_revalidates(self):
        config = default_scenario()
        with pytest.raises(ValueError):
            config.copy(dataset_size=-5)

    def test_default_scenario_with_overrides(self):
        config = default_scenario(num_runs=4)
        assert config.num_runs == 4


class TestSchemaVersion:
    def test_as_dict_carries_schema_version(self):
        from repro.alficore.scenario import SCENARIO_SCHEMA_VERSION

        assert default_scenario().as_dict()["schema_version"] == SCENARIO_SCHEMA_VERSION

    def test_newer_schema_version_rejected(self):
        from repro.alficore.scenario import SCENARIO_SCHEMA_VERSION

        data = default_scenario().as_dict()
        data["schema_version"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than the supported"):
            ScenarioConfig.from_dict(data)

    def test_legacy_document_without_version_loads(self):
        data = default_scenario().as_dict()
        data.pop("schema_version")
        assert ScenarioConfig.from_dict(data) == default_scenario()

    def test_save_load_round_trip_covers_every_field(self, tmp_path: Path):
        """Every dataclass field survives a yml round-trip (non-default values)."""
        import dataclasses

        config = ScenarioConfig(
            dataset_size=17,
            num_runs=3,
            max_faults_per_image=2,
            batch_size=4,
            injection_target="weights",
            inj_policy="per_batch",
            fault_persistence="permanent",
            rnd_value_type="stuck_at",
            rnd_bit_range=(3, 9),
            rnd_value_min=-0.5,
            rnd_value_max=0.5,
            quantization="float32",
            stuck_at_value=0,
            layer_types=("conv2d", "fcc"),
            layer_range=(1, 5),
            weighted_layer_selection=False,
            model_name="resnet18",
            dataset_name="synthetic",
            random_seed=99,
            fault_file=tmp_path / "faults.npz",
        )
        loaded = load_scenario(save_scenario(config, tmp_path / "scenario.yml"))
        for fld in dataclasses.fields(ScenarioConfig):
            assert getattr(loaded, fld.name) == getattr(config, fld.name), fld.name
        # No field silently kept its default: the round-trip test must touch
        # every field with a non-default value.
        defaults = default_scenario()
        same_as_default = [
            fld.name
            for fld in dataclasses.fields(ScenarioConfig)
            if getattr(config, fld.name) == getattr(defaults, fld.name)
        ]
        assert same_as_default == ["quantization"], same_as_default

    def test_unknown_keys_error_is_actionable(self):
        with pytest.raises(KeyError, match="unknown scenario keys.*warp_drive"):
            ScenarioConfig.from_dict({"dataset_size": 5, "warp_drive": True})

    def test_fault_file_normalized_to_path(self):
        config = default_scenario(fault_file="some/faults.npz")
        assert config.fault_file == Path("some/faults.npz")
        assert default_scenario(fault_file="").fault_file is None
        assert default_scenario(fault_file=None).fault_file is None
        assert isinstance(config.as_dict()["fault_file"], str)


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path: Path):
        config = ScenarioConfig(
            dataset_size=15,
            injection_target="weights",
            rnd_bit_range=(23, 30),
            model_name="vgg16",
        )
        path = save_scenario(config, tmp_path / "scenario.yml")
        assert path.exists()
        loaded = load_scenario(path)
        assert loaded == config

    def test_saved_file_is_commented_yaml(self, tmp_path: Path):
        path = save_scenario(default_scenario(), tmp_path / "scenario.yml")
        text = path.read_text()
        assert text.startswith("#")
        assert "dataset_size" in text

    def test_load_missing_file(self, tmp_path: Path):
        with pytest.raises(FileNotFoundError):
            load_scenario(tmp_path / "missing.yml")

    def test_load_non_mapping_file(self, tmp_path: Path):
        path = tmp_path / "broken.yml"
        path.write_text("- just\n- a\n- list\n")
        with pytest.raises(ValueError):
            load_scenario(path)

    def test_repo_default_yml_is_loadable(self):
        repo_default = Path(__file__).resolve().parents[1] / "scenarios" / "default.yml"
        if not repo_default.exists():
            pytest.skip("repository scenarios/default.yml not present")
        config = load_scenario(repo_default)
        assert config.rnd_value_type == "bitflip"
        assert config.layer_types == ("conv2d", "conv3d", "fcc")
