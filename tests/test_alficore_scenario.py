"""Unit tests for the scenario configuration (default.yml schema)."""

from pathlib import Path

import pytest

from repro.alficore import ScenarioConfig, default_scenario, load_scenario, save_scenario


class TestValidation:
    def test_defaults_are_valid(self):
        config = ScenarioConfig()
        assert config.total_faults == 10

    def test_total_faults_formula(self):
        config = ScenarioConfig(dataset_size=7, num_runs=3, max_faults_per_image=2)
        assert config.total_faults == 7 * 3 * 2
        assert config.number_of_inferences == 21

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dataset_size", 0),
            ("num_runs", -1),
            ("max_faults_per_image", 0),
            ("batch_size", 0),
            ("injection_target", "activations"),
            ("inj_policy", "per_pixel"),
            ("fault_persistence", "flaky"),
            ("rnd_value_type", "gamma_ray"),
            ("quantization", "bfloat16"),
            ("stuck_at_value", 2),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ScenarioConfig(**{field: value})

    def test_bit_range_must_fit_dtype(self):
        with pytest.raises(ValueError):
            ScenarioConfig(quantization="float16", rnd_bit_range=(0, 31))
        ScenarioConfig(quantization="float16", rnd_bit_range=(0, 15))  # valid

    def test_bit_range_ordering(self):
        with pytest.raises(ValueError):
            ScenarioConfig(rnd_bit_range=(20, 10))

    def test_value_range_ordering(self):
        with pytest.raises(ValueError):
            ScenarioConfig(rnd_value_type="number", rnd_value_min=2.0, rnd_value_max=1.0)

    def test_layer_types_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig(layer_types=("conv2d", "attention"))
        with pytest.raises(ValueError):
            ScenarioConfig(layer_types=())

    def test_layer_range_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig(layer_range=(5, 2))
        config = ScenarioConfig(layer_range=(0, 3))
        assert config.layer_range == (0, 3)


class TestConversion:
    def test_as_dict_round_trip(self):
        config = ScenarioConfig(
            dataset_size=20,
            injection_target="weights",
            rnd_bit_range=(23, 30),
            layer_range=(1, 4),
            layer_types=("conv2d",),
        )
        rebuilt = ScenarioConfig.from_dict(config.as_dict())
        assert rebuilt == config

    def test_from_dict_unknown_key_raises(self):
        with pytest.raises(KeyError):
            ScenarioConfig.from_dict({"dataset_size": 5, "warp_drive": True})

    def test_copy_with_overrides(self):
        config = default_scenario()
        modified = config.copy(dataset_size=99, injection_target="weights")
        assert modified.dataset_size == 99
        assert modified.injection_target == "weights"
        assert config.dataset_size == 10  # original unchanged

    def test_copy_revalidates(self):
        config = default_scenario()
        with pytest.raises(ValueError):
            config.copy(dataset_size=-5)

    def test_default_scenario_with_overrides(self):
        config = default_scenario(num_runs=4)
        assert config.num_runs == 4


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path: Path):
        config = ScenarioConfig(
            dataset_size=15,
            injection_target="weights",
            rnd_bit_range=(23, 30),
            model_name="vgg16",
        )
        path = save_scenario(config, tmp_path / "scenario.yml")
        assert path.exists()
        loaded = load_scenario(path)
        assert loaded == config

    def test_saved_file_is_commented_yaml(self, tmp_path: Path):
        path = save_scenario(default_scenario(), tmp_path / "scenario.yml")
        text = path.read_text()
        assert text.startswith("#")
        assert "dataset_size" in text

    def test_load_missing_file(self, tmp_path: Path):
        with pytest.raises(FileNotFoundError):
            load_scenario(tmp_path / "missing.yml")

    def test_load_non_mapping_file(self, tmp_path: Path):
        path = tmp_path / "broken.yml"
        path.write_text("- just\n- a\n- list\n")
        with pytest.raises(ValueError):
            load_scenario(path)

    def test_repo_default_yml_is_loadable(self):
        repo_default = Path(__file__).resolve().parents[1] / "scenarios" / "default.yml"
        if not repo_default.exists():
            pytest.skip("repository scenarios/default.yml not present")
        config = load_scenario(repo_default)
        assert config.rnd_value_type == "bitflip"
        assert config.layer_types == ("conv2d", "conv3d", "fcc")
