"""Sharded parallel campaign execution through the Experiment API.

Runs the same declarative spec twice — once on the ``serial`` backend and
once partitioned into shards on the ``sharded`` backend — and verifies that
the merged sharded output is *bit-identical* to the serial run: byte-equal
record files and equal KPI summaries.  Every fault corruption is pre-drawn
in the shared fault matrix and the loader's epoch permutations depend only
on ``(seed, epoch)``, so each shard can deterministically re-derive its
exact slice of the work.

Run with:  python examples/sharded_campaign.py
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.experiments import Experiment
from repro.visualization import comparison_table

OUTPUT_DIR = Path("examples_output/sharded")


def build_spec(sub: str, backend: str, workers: int, num_shards: int | None):
    return (
        Experiment.builder()
        .name("sharded")
        .model("lenet5", num_classes=10, seed=0)
        .dataset("synthetic-classification", num_samples=24, num_classes=10, noise=0.25, seed=3)
        .scenario(
            injection_target="weights",
            rnd_bit_range=(23, 30),
            random_seed=42,
            model_name="sharded",
        )
        .backend(backend, workers=workers, num_shards=num_shards)
        .output_dir(OUTPUT_DIR / sub)
        .build()
    )


def main() -> None:
    workers = min(2, os.cpu_count() or 1)

    def run_spec(spec):
        start = time.perf_counter()
        result = Experiment(spec).run()
        return time.perf_counter() - start, result

    serial_seconds, serial = run_spec(build_spec("serial", "serial", 1, None))
    sharded_seconds, sharded = run_spec(build_spec("sharded", "sharded", workers, 3))

    identical = all(
        Path(serial.output_files[tag]).read_bytes() == Path(sharded.output_files[tag]).read_bytes()
        for tag in ("golden_csv", "corrupted_csv", "applied_faults")
    )
    rows = []
    for label, seconds, result in (
        ("serial", serial_seconds, serial),
        (f"sharded (3 shards, {workers} workers)", sharded_seconds, sharded),
    ):
        kpis = result.summary["corrupted"]
        rows.append(
            {"run": label, "seconds": seconds, "SDE": kpis["sde_rate"], "DUE": kpis["due_rate"]}
        )
    print(comparison_table(rows, ["run", "seconds", "SDE", "DUE"],
                           title="Sharded campaign execution vs serial"))
    print(f"\nmerged record files bit-identical to serial run: {identical}")
    print("per-shard record files kept under:", OUTPUT_DIR / "sharded" / "shards")


if __name__ == "__main__":
    main()
