"""Sharded parallel campaign execution.

Runs the same weight fault injection campaign twice — serially and
partitioned into shards through ``ShardedCampaignExecutor`` (via
``CampaignRunner(workers=..., num_shards=...)``) — and verifies that the
merged sharded output is *bit-identical* to the serial run: byte-equal
record files and equal KPI summaries.  Every fault corruption is pre-drawn
in the shared fault matrix and the loader's epoch permutations depend only
on ``(seed, epoch)``, so each shard can deterministically re-derive its
exact slice of the work.

Run with:  python examples/sharded_campaign.py
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.alficore import CampaignResultWriter, CampaignRunner, default_scenario
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

OUTPUT_DIR = Path("examples_output/sharded")


def main() -> None:
    dataset = SyntheticClassificationDataset(num_samples=24, num_classes=10, noise=0.25, seed=3)
    model = fit_classifier_head(lenet5(seed=0), dataset, 10)
    scenario = default_scenario(
        injection_target="weights",
        rnd_bit_range=(23, 30),
        random_seed=42,
        model_name="sharded",
    )
    workers = min(2, os.cpu_count() or 1)

    def run(sub: str, n_workers: int, n_shards: int):
        writer = CampaignResultWriter(OUTPUT_DIR / sub, campaign_name="sharded")
        runner = CampaignRunner(
            model, dataset, scenario=scenario, writer=writer,
            workers=n_workers, num_shards=n_shards,
        )
        start = time.perf_counter()
        summary = runner.run()
        return time.perf_counter() - start, summary

    serial_seconds, serial = run("serial", 1, 1)
    sharded_seconds, sharded = run("sharded", workers, 3)

    identical = all(
        Path(serial.output_files[tag]).read_bytes() == Path(sharded.output_files[tag]).read_bytes()
        for tag in ("golden_csv", "corrupted_csv", "applied_faults")
    )
    print(
        comparison_table(
            [
                {"run": "serial", "seconds": serial_seconds, "SDE": serial.sde_rate, "DUE": serial.due_rate},
                {
                    "run": f"sharded (3 shards, {workers} workers)",
                    "seconds": sharded_seconds,
                    "SDE": sharded.sde_rate,
                    "DUE": sharded.due_rate,
                },
            ],
            ["run", "seconds", "SDE", "DUE"],
            title="Sharded campaign execution vs serial",
        )
    )
    print(f"\nmerged record files bit-identical to serial run: {identical}")
    print("per-shard record files kept under:", OUTPUT_DIR / "sharded" / "shards")


if __name__ == "__main__":
    main()
