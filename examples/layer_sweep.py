"""Iterative experiments: layer sweep and bit-position sweep (Section V-D).

The paper's iterative pattern — move the fault injection focus layer by
layer (or bit by bit) and re-run — becomes a loop over declarative specs:
each step copies the base spec with a mutated scenario (``layer_range`` or
``rnd_bit_range``) and calls the one ``run`` entry point.  The fitted model
and the dataset are built once and passed to every step as
:class:`~repro.experiments.Artifacts`, so the steps only differ in their
scenario — no wrapper plumbing, no manual reconfiguration.

Run with:  python examples/layer_sweep.py
"""

from __future__ import annotations

from repro.experiments import Artifacts, DATASETS, Experiment, MODELS, run
from repro.models.pretrained import fit_classifier_head
from repro.pytorchfi import FaultInjection
from repro.visualization import sde_per_bit_chart, sde_per_layer_chart

IMAGES = 20


def base_spec():
    return (
        Experiment.builder()
        .name("layer-sweep")
        .model("alexnet", num_classes=10, seed=5)
        .dataset("synthetic-classification", num_samples=IMAGES, num_classes=10, noise=0.25, seed=3)
        .scenario(
            injection_target="neurons",
            rnd_value_type="bitflip",
            rnd_bit_range=(30, 31),
            random_seed=11,
            model_name="alexnet",
            dataset_size=IMAGES,
        )
        .build()
    )


def sweep(base, artifacts, scenario_overrides_per_step: dict) -> dict[int, float]:
    """Run one spec per step; score each step by its SDE+DUE rate."""
    results: dict[int, float] = {}
    for step, overrides in scenario_overrides_per_step.items():
        spec = base.copy(scenario=base.scenario.copy(**overrides))
        kpis = run(spec, artifacts=artifacts).summary["corrupted"]
        results[step] = kpis["sde_rate"] + kpis["due_rate"]
    return results


def main() -> None:
    base = base_spec()

    # Build the dataset and the fitted model once; every sweep step reuses
    # them through Artifacts instead of re-resolving the registries.
    dataset = DATASETS.get(base.dataset.name)(**base.dataset.params)
    model = fit_classifier_head(MODELS.get(base.model.name)(**base.model.params), dataset, 10)
    artifacts = Artifacts(model=model, dataset=dataset)

    # Profile the model once (no campaign, no fault generation) to learn its
    # injectable layer count / names.
    injector = FaultInjection(model, layer_types=base.scenario.layer_types)
    layer_names = {info.index: info.name for info in injector.layers}

    # --- sweep 1: move the fault injection focus layer by layer ------------
    per_layer = sweep(
        base, artifacts,
        {layer: {"layer_range": (layer, layer)} for layer in range(injector.num_layers)},
    )
    print(sde_per_layer_chart(per_layer, "SDE+DUE per injected layer (AlexNet)", layer_names))

    # --- sweep 2: move the flipped bit position ----------------------------
    per_bit = sweep(
        base, artifacts,
        {bit: {"layer_range": None, "rnd_bit_range": (bit, bit)}
         for bit in (0, 10, 20, 23, 26, 28, 30, 31)},
    )
    print()
    print(sde_per_bit_chart(per_bit, "SDE+DUE per flipped bit position (AlexNet neurons)"))


if __name__ == "__main__":
    main()
