"""Iterative experiments: layer sweep and bit-position sweep (Section V-D).

Shows the run-time scenario mutation pattern of the paper: the scenario is
fetched with ``wrapper.get_scenario()``, the layer window (or bit range) is
moved, and the scenario is written back with ``wrapper.set_scenario()`` which
regenerates the fault set — no manual reconfiguration between the steps of
the sweep.

Run with:  python examples/layer_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate
from repro.models import alexnet
from repro.models.pretrained import fit_classifier_head
from repro.visualization import sde_per_bit_chart, sde_per_layer_chart

IMAGES = 20


def run_sweep(wrapper, images, golden, configure) -> dict[int, float]:
    """Run one sweep: ``configure(scenario, step)`` mutates the scenario per step."""
    results: dict[int, float] = {}
    for step in configure.steps:
        scenario = wrapper.get_scenario()
        configure(scenario, step)
        wrapper.set_scenario(scenario)
        # Clone-free fault group sessions: one reusable hooked model per
        # sweep step instead of a fresh model deep copy per image.
        group_iter = wrapper.get_fault_group_iter()
        corrupted = []
        for index in range(len(images)):
            with next(group_iter) as group:
                corrupted.append(group.model(images[index : index + 1])[0])
        group_iter.close()
        rates = sde_rate(golden, np.stack(corrupted))
        results[step] = rates["sde"] + rates["due"]
    return results


def main() -> None:
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=3)
    model = fit_classifier_head(alexnet(num_classes=10, seed=5), dataset, num_classes=10)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    golden = model(images)

    wrapper = ptfiwrap(
        model,
        scenario=default_scenario(
            dataset_size=IMAGES,
            injection_target="neurons",
            rnd_value_type="bitflip",
            rnd_bit_range=(30, 31),
            random_seed=11,
            batch_size=1,
        ),
    )

    # --- sweep 1: move the fault injection focus layer by layer ------------
    class LayerStep:
        steps = range(wrapper.fault_injection.num_layers)

        def __call__(self, scenario, layer):
            scenario.layer_range = (layer, layer)

    per_layer = run_sweep(wrapper, images, golden, LayerStep())
    layer_names = {info.index: info.name for info in wrapper.fault_injection.layers}
    print(sde_per_layer_chart(per_layer, "SDE+DUE per injected layer (AlexNet)", layer_names))

    # --- sweep 2: move the flipped bit position ----------------------------
    class BitStep:
        steps = (0, 10, 20, 23, 26, 28, 30, 31)

        def __call__(self, scenario, bit):
            scenario.layer_range = None
            scenario.rnd_bit_range = (bit, bit)

    per_bit = run_sweep(wrapper, images, golden, BitStep())
    print()
    print(sde_per_bit_chart(per_bit, "SDE+DUE per flipped bit position (AlexNet neurons)"))


if __name__ == "__main__":
    main()
