"""Iterative experiments as declarative sweep grids (Section V-D).

The paper's iterative pattern — move the fault injection focus layer by
layer (or bit by bit) and re-run — used to be a hand-written loop over
``spec.copy(scenario=...)``.  It is now one declarative ``sweep:`` grid per
question: the builder's ``.sweep()`` declares an axis over a scenario
field, :func:`~repro.experiments.run_sweep` expands it into concrete child
specs, executes every point through the content-addressed campaign store
(a re-run of this script skips all completed points) and aggregates the
per-point KPIs into one comparison table.  The fitted model and the dataset
are built once and shared by every point via
:class:`~repro.experiments.Artifacts`.

Run with:  python examples/layer_sweep.py
"""

from __future__ import annotations

from repro.experiments import Artifacts, DATASETS, Experiment, MODELS, run_sweep
from repro.models.pretrained import fit_classifier_head
from repro.pytorchfi import FaultInjection
from repro.visualization import sde_per_bit_chart, sde_per_layer_chart

IMAGES = 20
BIT_POSITIONS = (0, 10, 20, 23, 26, 28, 30, 31)
STORE = "examples_output/layer_sweep_store"


def base_builder():
    return (
        Experiment.builder()
        .name("layer-sweep")
        .model("alexnet", num_classes=10, seed=5)
        .dataset("synthetic-classification", num_samples=IMAGES, num_classes=10, noise=0.25, seed=3)
        .scenario(
            injection_target="neurons",
            rnd_value_type="bitflip",
            rnd_bit_range=(30, 31),
            random_seed=11,
            model_name="alexnet",
            dataset_size=IMAGES,
        )
    )


def sde_due(outcome) -> float:
    """Score one grid point by its SDE+DUE rate."""
    kpis = outcome.summary["corrupted"]
    return kpis["sde_rate"] + kpis["due_rate"]


def main() -> None:
    base = base_builder().build()

    # Build the dataset and the fitted model once; every grid point reuses
    # them through Artifacts instead of re-resolving the registries.
    dataset = DATASETS.get(base.dataset.name)(**base.dataset.params)
    model = fit_classifier_head(MODELS.get(base.model.name)(**base.model.params), dataset, 10)
    artifacts = Artifacts(model=model, dataset=dataset)

    # Profile the model once (no campaign, no fault generation) to learn its
    # injectable layer count / names.
    injector = FaultInjection(model, layer_types=base.scenario.layer_types)
    layer_names = {info.index: info.name for info in injector.layers}

    # --- sweep 1: move the fault injection focus layer by layer ------------
    layer_grid = (
        base_builder()
        .sweep(
            axes={
                "scenario.layer_range": [
                    [layer, layer] for layer in range(injector.num_layers)
                ]
            },
            store=f"{STORE}/layers",
        )
        .build()
    )
    layers = run_sweep(layer_grid, artifacts)
    per_layer = {
        outcome.point.overrides["scenario.layer_range"][0]: sde_due(outcome)
        for outcome in layers.outcomes
    }
    print(sde_per_layer_chart(per_layer, "SDE+DUE per injected layer (AlexNet)", layer_names))
    print(f"layer grid: {layers.executed} executed, {layers.cached} cached")

    # --- sweep 2: move the flipped bit position ----------------------------
    bit_grid = (
        base_builder()
        .sweep(
            axes={"scenario.rnd_bit_range": [[bit, bit] for bit in BIT_POSITIONS]},
            store=f"{STORE}/bits",
        )
        .build()
    )
    bits = run_sweep(bit_grid, artifacts)
    per_bit = {
        outcome.point.overrides["scenario.rnd_bit_range"][0]: sde_due(outcome)
        for outcome in bits.outcomes
    }
    print()
    print(sde_per_bit_chart(per_bit, "SDE+DUE per flipped bit position (AlexNet neurons)"))
    print(f"bit grid: {bits.executed} executed, {bits.cached} cached")
    print(f"comparison tables under {STORE}/")


if __name__ == "__main__":
    main()
