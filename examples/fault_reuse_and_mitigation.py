"""Fault persistence and mitigation comparison.

Demonstrates the reuse workflow the paper emphasises: a fault set is
generated once, stored as a binary file, and then replayed against three
variants of the same network — the unprotected baseline, a Ranger-hardened
copy and a Clipper-hardened copy — so the mitigation comparison is based on
bit-identical fault locations and values.

Run with:  python examples/fault_reuse_and_mitigation.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.alficore import (
    FaultMatrix,
    apply_protection,
    collect_activation_bounds,
    default_scenario,
    ptfiwrap,
)
from repro.data import SyntheticClassificationDataset
from repro.eval import sde_rate
from repro.models import resnet18
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

OUTPUT_DIR = Path("examples_output/fault_reuse")
IMAGES = 30


def evaluate_variant(name: str, model, fault_matrix, scenario, images, golden) -> dict:
    """Replay the stored fault set against one model variant."""
    wrapper = ptfiwrap(model, scenario=scenario)
    wrapper.set_fault_matrix(fault_matrix)
    fault_iter = wrapper.get_fimodel_iter()
    corrupted = []
    for index in range(len(images)):
        corrupted_model = next(fault_iter)
        corrupted.append(corrupted_model(images[index : index + 1])[0])
    own_golden = model(images) if name != "unprotected" else golden
    rates = sde_rate(own_golden, np.stack(corrupted))
    return {"variant": name, "masked": rates["masked"], "SDE": rates["sde"], "DUE": rates["due"]}


def main() -> None:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    dataset = SyntheticClassificationDataset(num_samples=IMAGES, num_classes=10, noise=0.25, seed=21)
    model = fit_classifier_head(resnet18(num_classes=10, seed=4), dataset, num_classes=10)
    images = np.stack([dataset[i][0] for i in range(IMAGES)])
    golden = model(images)

    scenario = default_scenario(
        dataset_size=IMAGES,
        injection_target="weights",
        rnd_value_type="bitflip",
        rnd_bit_range=(23, 30),
        random_seed=5,
        batch_size=1,
        model_name="resnet18",
    )

    # Generate the fault set once and persist it.
    baseline_wrapper = ptfiwrap(model, scenario=scenario)
    fault_path = baseline_wrapper.save_fault_matrix(OUTPUT_DIR / "resnet18_faults.npz")
    print(f"stored fault file: {fault_path} ({baseline_wrapper.get_fault_matrix().num_faults} faults)")

    # Harden two copies with different range supervision strategies.
    bounds = collect_activation_bounds(model, [images])
    ranger_model = apply_protection(model, bounds, "ranger")
    clipper_model = apply_protection(model, bounds, "clipper")

    # Replay the identical faults against all three variants.
    fault_matrix = FaultMatrix.load(fault_path)
    rows = [
        evaluate_variant("unprotected", model, fault_matrix, scenario, images, golden),
        evaluate_variant("ranger", ranger_model, fault_matrix, scenario, images, golden),
        evaluate_variant("clipper", clipper_model, fault_matrix, scenario, images, golden),
    ]
    print()
    print(
        comparison_table(
            rows,
            ["variant", "masked", "SDE", "DUE"],
            title=f"Identical {fault_matrix.num_faults} weight faults replayed against three model variants",
        )
    )


if __name__ == "__main__":
    main()
