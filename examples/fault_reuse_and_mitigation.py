"""Fault persistence and mitigation comparison through the Experiment API.

Demonstrates the reuse workflow the paper emphasises: a fault set is
generated once (first spec run, which persists the binary fault file), and
then replayed against three variants of the same network — the unprotected
baseline, a Ranger-hardened copy and a Clipper-hardened copy — by pointing
each follow-up spec's ``scenario.fault_file`` at the stored matrix.  The
mitigation comparison is therefore based on bit-identical fault locations
and values, and switching the protection is one line in the spec.

Run with:  python examples/fault_reuse_and_mitigation.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import Artifacts, ComponentSpec, DATASETS, Experiment, MODELS, run
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table

OUTPUT_DIR = Path("examples_output/fault_reuse")
IMAGES = 30


def base_spec():
    return (
        Experiment.builder()
        .name("fault-reuse")
        .model("resnet18", num_classes=10, seed=4)
        .dataset("synthetic-classification", num_samples=IMAGES, num_classes=10, noise=0.25, seed=21)
        .scenario(
            injection_target="weights",
            rnd_value_type="bitflip",
            rnd_bit_range=(23, 30),
            random_seed=5,
            model_name="resnet18",
            dataset_size=IMAGES,
        )
        .build()
    )


def main() -> None:
    base = base_spec()

    # Build the dataset and the fitted baseline once; every replay reuses
    # them through Artifacts (so the stored faults always match the model).
    dataset = DATASETS.get(base.dataset.name)(**base.dataset.params)
    model = fit_classifier_head(MODELS.get(base.model.name)(**base.model.params), dataset, 10)
    artifacts = Artifacts(model=model, dataset=dataset)

    # Generate the fault set once and persist it (plus the other result files).
    first = run(base.copy(output_dir=OUTPUT_DIR / "baseline"), artifacts=artifacts)
    fault_path = first.output_files["faults"]
    print(f"stored fault file: {fault_path} "
          f"({first.wrapper.get_fault_matrix().num_faults} faults)")

    # Replay the identical faults; each variant only changes the protection.
    replay = base.copy(scenario=base.scenario.copy(fault_file=fault_path))
    rows = [
        {
            "variant": "unprotected",
            "masked": first.summary["corrupted"]["masked_rate"],
            "SDE": first.summary["corrupted"]["sde_rate"],
            "DUE": first.summary["corrupted"]["due_rate"],
        }
    ]
    for protection in ("ranger", "clipper"):
        result = run(replay.copy(protection=ComponentSpec(protection)), artifacts=artifacts)
        kpis = result.summary["resil"]
        rows.append(
            {
                "variant": protection,
                "masked": kpis["masked_rate"],
                "SDE": kpis["sde_rate"],
                "DUE": kpis["due_rate"],
            }
        )
    print()
    print(
        comparison_table(
            rows,
            ["variant", "masked", "SDE", "DUE"],
            title=(
                f"Identical {first.wrapper.get_fault_matrix().num_faults} weight faults "
                "replayed against three model variants"
            ),
        )
    )


if __name__ == "__main__":
    main()
