"""High-level classification campaign with mitigation (Fig. 2a workflow).

Declares the whole Fig. 2a experiment — a VGG-16-style classifier, weight
faults restricted to float32 exponent bits, a Ranger-hardened "resil"
variant evaluated under the exact same faults — as one
:class:`~repro.experiments.ExperimentSpec` and runs it through the unified
``run`` entry point.  The full result file set (scenario meta yml, binary
fault file, golden/corrupted/resil CSV, KPI JSON) lands in
``examples_output/classification/``.

Run with:  python examples/classification_campaign.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import Experiment
from repro.tensor import exponent_bit_range
from repro.visualization import bar_chart

OUTPUT_DIR = Path("examples_output/classification")


def main() -> None:
    result = (
        Experiment.builder()
        .name("vgg16-exponent-bits")
        .model("vgg16", num_classes=10, seed=2)
        .dataset("synthetic-classification", num_samples=40, num_classes=10, noise=0.25, seed=7)
        .protection("ranger")
        .scenario(
            injection_target="weights",
            rnd_value_type="bitflip",
            rnd_bit_range=exponent_bit_range("float32"),  # exponent bits only, as in Fig. 2a
            random_seed=42,
            model_name="vgg16",
            dataset_name="synthetic-imagenet",
        )
        .output_dir(OUTPUT_DIR)
        .run()
    )

    corrupted = result.results["corrupted"]
    resil = result.results["resil"]
    print(
        bar_chart(
            {
                "vgg16 SDE (no protection)": corrupted.sde_rate,
                "vgg16 DUE (no protection)": corrupted.due_rate,
                "vgg16 SDE (Ranger)": resil.sde_rate,
                "vgg16 DUE (Ranger)": resil.due_rate,
            },
            title="Weight fault injection on exponent bits (1 fault per image)",
            max_value=max(corrupted.sde_rate + corrupted.due_rate, 0.1),
        )
    )
    print(f"\ngolden top-1 accuracy: {corrupted.golden_top1_accuracy:.2f}")
    print("result files:")
    for kind, path in result.output_files.items():
        print(f"  {kind:15s} {path}")


if __name__ == "__main__":
    main()
