"""High-level classification campaign with mitigation (Fig. 2a workflow).

Uses ``TestErrorModels_ImgClass`` to run a weight fault injection campaign on
a VGG-16-style classifier restricted to float32 exponent bits, evaluates a
Ranger-hardened variant under the exact same faults, and writes the full set
of result files (scenario meta yml, binary fault file, golden/corrupted/resil
CSV, KPI JSON) into ``examples_output/classification/``.

Run with:  python examples/classification_campaign.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.alficore import (
    TestErrorModels_ImgClass,
    apply_protection,
    collect_activation_bounds,
    default_scenario,
)
from repro.data import SyntheticClassificationDataset
from repro.models import vgg16
from repro.models.pretrained import fit_classifier_head
from repro.tensor import exponent_bit_range
from repro.visualization import bar_chart

OUTPUT_DIR = Path("examples_output/classification")


def main() -> None:
    dataset = SyntheticClassificationDataset(num_samples=40, num_classes=10, noise=0.25, seed=7)
    model = fit_classifier_head(vgg16(num_classes=10, seed=2), dataset, num_classes=10)

    # Harden a copy with Ranger activation range supervision, calibrated on
    # the fault-free activations of the test set.
    calibration = np.stack([dataset[i][0] for i in range(len(dataset))])
    bounds = collect_activation_bounds(model, [calibration])
    hardened = apply_protection(model, bounds, protection="ranger")

    scenario = default_scenario(
        injection_target="weights",
        rnd_value_type="bitflip",
        rnd_bit_range=exponent_bit_range("float32"),  # exponent bits only, as in Fig. 2a
        random_seed=42,
        model_name="vgg16",
        dataset_name="synthetic-imagenet",
    )

    runner = TestErrorModels_ImgClass(
        model=model,
        resil_model=hardened,
        model_name="vgg16",
        dataset=dataset,
        scenario=scenario,
        output_dir=OUTPUT_DIR,
    )
    output = runner.test_rand_ImgClass_SBFs_inj(num_faults=1, inj_policy="per_image")

    print(
        bar_chart(
            {
                "vgg16 SDE (no protection)": output.corrupted.sde_rate,
                "vgg16 DUE (no protection)": output.corrupted.due_rate,
                "vgg16 SDE (Ranger)": output.resil.sde_rate,
                "vgg16 DUE (Ranger)": output.resil.due_rate,
            },
            title="Weight fault injection on exponent bits (1 fault per image)",
            max_value=max(output.corrupted.sde_rate + output.corrupted.due_rate, 0.1),
        )
    )
    print(f"\ngolden top-1 accuracy: {output.corrupted.golden_top1_accuracy:.2f}")
    print("result files:")
    for kind, path in output.output_files.items():
        print(f"  {kind:15s} {path}")


if __name__ == "__main__":
    main()
