"""Quickstart: the clone-free campaign engine.

Wraps a pre-trained classifier and runs a complete fault-injection campaign
with :class:`~repro.alficore.campaign.CampaignRunner`: golden and faulty
inference run in lock-step over the dataset, but no model copy is ever made —
each fault group's weight corruptions are patched *in place* on the original
model and the exact original bit patterns are restored after every group
(neuron campaigns reuse a single hooked model instead).  Per-inference result
records are streamed to disk as they are produced, so memory stays bounded by
the batch size no matter how large the campaign is.

The lower-level Listing-1 loop is still available via
``ptfiwrap.get_fault_group_iter()`` (see ``repro/alficore/wrapper.py``).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.alficore import CampaignResultWriter, CampaignRunner, default_scenario
from repro.data import SyntheticClassificationDataset
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.tensor.bitops import float_to_bits
from repro.visualization import comparison_table


def main() -> None:
    # 1. An existing application: a pre-trained model and a dataset.
    dataset = SyntheticClassificationDataset(num_samples=30, num_classes=10, noise=0.25, seed=1)
    model = fit_classifier_head(lenet5(seed=0), dataset, num_classes=10)

    # 2. Define the fault injection campaign (normally read from scenarios/default.yml).
    scenario = default_scenario(
        injection_target="weights",      # patch weights in place, restore bit-exactly
        rnd_value_type="bitflip",
        rnd_bit_range=(0, 31),            # any float32 bit
        max_faults_per_image=1,
        inj_policy="per_image",
        random_seed=1234,
        model_name="quickstart",
    )

    # 3. Build the campaign runner: profiles the model, pre-generates the
    #    complete fault matrix (vectorized, bit-reproducible per seed) and
    #    prepares streaming result writers.
    writer = CampaignResultWriter("quickstart_output", campaign_name="quickstart")
    runner = CampaignRunner(model, dataset, scenario=scenario, writer=writer)
    print(f"injectable layers : {runner.wrapper.fault_injection.num_layers}")
    print(f"pre-generated faults: {runner.wrapper.get_fault_matrix().num_faults}")

    # Snapshot the weight bit patterns to demonstrate the restore guarantee.
    bits_before = {name: float_to_bits(p.data).copy() for name, p in model.named_parameters()}

    # 4. Run: golden + corrupted inference per image, NaN/Inf monitoring,
    #    masked/SDE/DUE classification, records streamed to disk.
    summary = runner.run()

    # 5. The original model is bit-exactly restored after every fault group.
    restored = all(
        np.array_equal(bits_before[name], float_to_bits(p.data))
        for name, p in model.named_parameters()
    )
    print(f"model bit-exactly restored: {restored}")

    print()
    print(
        comparison_table(
            [
                {
                    "model": summary.model_name,
                    "inferences": summary.num_inferences,
                    "golden top-1": summary.golden_top1_accuracy,
                    "masked": summary.masked_rate,
                    "SDE": summary.sde_rate,
                    "DUE": summary.due_rate,
                }
            ],
            ["model", "inferences", "golden top-1", "masked", "SDE", "DUE"],
            title="Quickstart campaign (single weight bit flips, one per image, clone-free)",
        )
    )

    # 6. The applied faults were streamed to disk (location, bit, flip
    #    direction, original/corrupted value) — no in-memory accumulation.
    applied = json.loads(Path(summary.output_files["applied_faults"]).read_text())
    print("\nfirst three applied faults:")
    for record in applied[:3]:
        print(f"  {record}")


if __name__ == "__main__":
    main()
