"""Quickstart: one declarative spec, one entry point.

A complete fault-injection campaign — model, dataset, fault scenario,
protection, backend — is one :class:`~repro.experiments.ExperimentSpec`.
Build it fluently (below), or load the identical YAML document
(``examples/specs/quickstart.yml``) and run it with
``python -m repro.cli run examples/specs/quickstart.yml``.

Run with:  python examples/quickstart.py
"""

from repro.experiments import Experiment


def main() -> None:
    result = (
        Experiment.builder()
        .name("quickstart")
        .model("lenet5", num_classes=10, seed=0)
        .dataset("synthetic-classification", num_samples=30, num_classes=10, noise=0.25, seed=1)
        .scenario(injection_target="weights", rnd_bit_range=(0, 31), random_seed=1234,
                  model_name="quickstart")
        .output_dir("quickstart_output")
        .run()
    )

    kpis = result.summary["corrupted"]
    print(f"inferences      : {kpis['num_inferences']}")
    print(f"golden top-1    : {kpis['golden_top1_accuracy']:.4f}")
    print(f"masked/SDE/DUE  : {kpis['masked_rate']:.2f} / {kpis['sde_rate']:.2f} / {kpis['due_rate']:.2f}")
    print("result files    :", ", ".join(sorted(result.output_files)))
    print("first applied fault:", next(result.iter_records("applied_faults")))


if __name__ == "__main__":
    main()
