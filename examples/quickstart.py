"""Quickstart: low-level PyTorchALFI integration (Listing 1 of the paper).

Wraps a pre-trained classifier with ``ptfiwrap``, iterates over the dataset
while pulling a freshly fault-injected model for every image, and compares
the corrupted outputs against the fault-free (golden) run.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.alficore import default_scenario, ptfiwrap
from repro.data import SyntheticClassificationDataset
from repro.eval import evaluate_classification_campaign
from repro.models import lenet5
from repro.models.pretrained import fit_classifier_head
from repro.visualization import comparison_table


def main() -> None:
    # 1. An existing application: a pre-trained model and a dataset.
    dataset = SyntheticClassificationDataset(num_samples=30, num_classes=10, noise=0.25, seed=1)
    model = fit_classifier_head(lenet5(seed=0), dataset, num_classes=10)

    # 2. Define the fault injection campaign (normally read from scenarios/default.yml).
    scenario = default_scenario(
        dataset_size=len(dataset),
        injection_target="neurons",      # corrupt activations through forward hooks
        rnd_value_type="bitflip",
        rnd_bit_range=(0, 31),            # any float32 bit
        max_faults_per_image=1,
        inj_policy="per_image",
        random_seed=1234,
        batch_size=1,
    )

    # 3. Wrap the model: this profiles the layers and pre-generates all faults.
    wrapper = ptfiwrap(model=model, scenario=scenario)
    print(f"injectable layers : {wrapper.fault_injection.num_layers}")
    print(f"pre-generated faults: {wrapper.get_fault_matrix().num_faults}")

    # 4. Listing-1 loop: golden and corrupted inference side by side.
    fault_iter = wrapper.get_fimodel_iter()
    golden_logits, corrupted_logits, labels = [], [], []
    for index in range(len(dataset)):
        image, label = dataset[index]
        batch = image[None, ...]
        corrupted_model = next(fault_iter)

        golden_logits.append(model(batch)[0])
        corrupted_logits.append(corrupted_model(batch)[0])
        labels.append(label)

    # 5. KPI generation.
    result = evaluate_classification_campaign(
        np.stack(golden_logits), np.stack(corrupted_logits), np.asarray(labels), model_name="lenet5"
    )
    print()
    print(
        comparison_table(
            [
                {
                    "model": result.model_name,
                    "inferences": result.num_inferences,
                    "golden top-1": result.golden_top1_accuracy,
                    "masked": result.masked_rate,
                    "SDE": result.sde_rate,
                    "DUE": result.due_rate,
                }
            ],
            ["model", "inferences", "golden top-1", "masked", "SDE", "DUE"],
            title="Quickstart campaign (single neuron bit flips, one per image)",
        )
    )

    # 6. The applied faults (location, bit, flip direction, original/corrupted value).
    print("\nfirst three applied faults:")
    for record in wrapper.applied_faults[:3]:
        print(f"  {record.as_dict()}")


if __name__ == "__main__":
    main()
