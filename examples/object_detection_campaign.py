"""High-level object detection campaign (Fig. 2b workflow).

Runs a weight fault injection campaign on a YOLO-style detector over a
synthetic CoCo-format dataset with ``TestErrorModels_ObjDet``, reports the
IVMOD_SDE / IVMOD_DUE vulnerability metrics and CoCo-style mAP, and writes
the three detection result file sets (ground truth + meta, per-image result
JSON, KPI JSON) into ``examples_output/detection/``.

Run with:  python examples/object_detection_campaign.py
"""

from __future__ import annotations

from pathlib import Path

from repro.alficore import TestErrorModels_ObjDet, default_scenario
from repro.data import CocoLikeDetectionDataset, coco_annotations_to_json
from repro.models.detection import yolov3_tiny
from repro.tensor import exponent_bit_range
from repro.visualization import comparison_table

OUTPUT_DIR = Path("examples_output/detection")


def main() -> None:
    dataset = CocoLikeDetectionDataset(num_samples=20, num_classes=5, seed=9)
    model = yolov3_tiny(num_classes=5, seed=1).eval()

    # The dataset also exports standard CoCo-schema annotations.
    annotations = coco_annotations_to_json(dataset)
    print(
        f"dataset: {len(annotations['images'])} images, "
        f"{len(annotations['annotations'])} objects, "
        f"{len(annotations['categories'])} categories"
    )

    scenario = default_scenario(
        injection_target="weights",
        rnd_value_type="bitflip",
        rnd_bit_range=exponent_bit_range("float32"),
        random_seed=77,
        model_name="yolov3",
        dataset_name="synthetic-coco",
    )
    runner = TestErrorModels_ObjDet(
        model=model,
        model_name="yolov3",
        dataset=dataset,
        scenario=scenario,
        output_dir=OUTPUT_DIR,
    )
    output = runner.test_rand_ObjDet_SBFs_inj(num_faults=1, inj_policy="per_image")

    ivmod = output.corrupted.ivmod
    print()
    print(
        comparison_table(
            [
                {
                    "detector": "yolov3",
                    "IVMOD_SDE": ivmod.sde_rate,
                    "IVMOD_DUE": ivmod.due_rate,
                    "images w/ lost TPs": ivmod.tp_lost_images,
                    "images w/ added FPs": ivmod.fp_added_images,
                    "golden mAP@0.5": output.corrupted.golden_map["mAP"],
                    "corrupted mAP@0.5": output.corrupted.corrupted_map["mAP"],
                }
            ],
            [
                "detector",
                "IVMOD_SDE",
                "IVMOD_DUE",
                "images w/ lost TPs",
                "images w/ added FPs",
                "golden mAP@0.5",
                "corrupted mAP@0.5",
            ],
            title="Object detection vulnerability under single weight faults",
        )
    )
    print("\nresult files:")
    for kind, path in output.output_files.items():
        print(f"  {kind:15s} {path}")


if __name__ == "__main__":
    main()
