"""High-level object detection campaign (Fig. 2b workflow).

Declares a weight fault injection campaign on a YOLO-style detector over a
synthetic CoCo-format dataset as an :class:`~repro.experiments.ExperimentSpec`
(task ``detection``), reports the IVMOD_SDE / IVMOD_DUE vulnerability
metrics and CoCo-style mAP, and writes the three detection result file sets
(ground truth + meta, per-image result JSON, KPI JSON) into
``examples_output/detection/``.

Run with:  python examples/object_detection_campaign.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import Experiment
from repro.tensor import exponent_bit_range
from repro.visualization import comparison_table

OUTPUT_DIR = Path("examples_output/detection")


def main() -> None:
    result = (
        Experiment.builder()
        .name("yolov3-detection")
        .task("detection")
        .model("yolov3", num_classes=5, seed=1)
        .dataset("synthetic-coco", num_samples=20, num_classes=5, seed=9)
        .scenario(
            injection_target="weights",
            rnd_value_type="bitflip",
            rnd_bit_range=exponent_bit_range("float32"),
            random_seed=77,
            model_name="yolov3",
            dataset_name="synthetic-coco",
        )
        .output_dir(OUTPUT_DIR)
        .run()
    )

    corrupted = result.results["corrupted"]
    ivmod = corrupted.ivmod
    print(
        comparison_table(
            [
                {
                    "detector": "yolov3",
                    "IVMOD_SDE": ivmod.sde_rate,
                    "IVMOD_DUE": ivmod.due_rate,
                    "images w/ lost TPs": ivmod.tp_lost_images,
                    "images w/ added FPs": ivmod.fp_added_images,
                    "golden mAP@0.5": corrupted.golden_map["mAP"],
                    "corrupted mAP@0.5": corrupted.corrupted_map["mAP"],
                }
            ],
            [
                "detector",
                "IVMOD_SDE",
                "IVMOD_DUE",
                "images w/ lost TPs",
                "images w/ added FPs",
                "golden mAP@0.5",
                "corrupted mAP@0.5",
            ],
            title="Object detection vulnerability under single weight faults",
        )
    )
    print("\nresult files:")
    for kind, path in result.output_files.items():
        print(f"  {kind:15s} {path}")


if __name__ == "__main__":
    main()
