"""Fault outcome taxonomy (masked / SDE / DUE).

Every fault-injected inference is classified against the fault-free (golden)
run of the same input:

* **masked** — the corrupted output is functionally identical to the golden
  output (the network's inherent redundancy tolerated the fault);
* **SDE** (silent data error) — the output changed in a user-visible way
  (e.g. the top-1 class differs) without any detectable trace;
* **DUE** (detected and uncorrectable error) — the inference produced NaN or
  Inf values, i.e. the corruption is detectable but the result is unusable.

The same taxonomy underlies both the classification SDE rates of Fig. 2a and
the IVMOD_SDE / IVMOD_DUE detection metrics of Fig. 2b.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum


class FaultOutcome(str, Enum):
    """Outcome of a single fault-injected inference."""

    MASKED = "masked"
    SDE = "sde"
    DUE = "due"


def classify_classification_outcome(
    golden_top1: int,
    corrupted_top1: int,
    nan_or_inf: bool = False,
) -> FaultOutcome:
    """Classify one classification inference.

    Args:
        golden_top1: top-1 class of the fault-free model.
        corrupted_top1: top-1 class of the fault-injected model.
        nan_or_inf: whether NaN/Inf values were observed in the corrupted run.

    Returns:
        The :class:`FaultOutcome`.  DUE takes precedence over SDE: an
        inference that produced NaN/Inf is counted as detected even if the
        top-1 class also changed.
    """
    if nan_or_inf:
        return FaultOutcome.DUE
    if int(golden_top1) != int(corrupted_top1):
        return FaultOutcome.SDE
    return FaultOutcome.MASKED


def outcome_rates(outcomes: list[FaultOutcome]) -> dict[str, float]:
    """Aggregate a list of outcomes into masked / SDE / DUE rates.

    Returns:
        Dictionary with keys ``"masked"``, ``"sde"``, ``"due"`` (fractions in
        ``[0, 1]`` summing to 1) and ``"total"`` (the number of inferences).
    """
    if not outcomes:
        return {"masked": 0.0, "sde": 0.0, "due": 0.0, "total": 0}
    counts = Counter(outcomes)
    total = len(outcomes)
    return {
        "masked": counts.get(FaultOutcome.MASKED, 0) / total,
        "sde": counts.get(FaultOutcome.SDE, 0) / total,
        "due": counts.get(FaultOutcome.DUE, 0) / total,
        "total": total,
    }
