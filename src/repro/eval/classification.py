"""Classification KPIs: top-k accuracy and SDE / DUE rates."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.sdc import FaultOutcome, classify_classification_outcome, outcome_rates


def top_k_predictions(logits: np.ndarray, k: int = 5) -> tuple[np.ndarray, np.ndarray]:
    """Return the top-k classes and their softmax probabilities.

    Args:
        logits: raw model outputs of shape ``(N, num_classes)``.
        k: number of top entries (clipped to the number of classes).

    Returns:
        Tuple ``(classes, probabilities)``, both of shape ``(N, k)``, ordered
        by decreasing probability.  NaN probabilities sort last.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"expected logits of shape (N, classes), got {logits.shape}")
    num_classes = logits.shape[1]
    k = min(k, num_classes)
    shifted = logits - np.nanmax(logits, axis=1, keepdims=True)
    with np.errstate(invalid="ignore", over="ignore"):
        exp = np.exp(shifted)
        denom = np.nansum(exp, axis=1, keepdims=True)
        probabilities = np.where(denom > 0, exp / denom, 0.0)
    sort_keys = np.where(np.isnan(probabilities), -np.inf, probabilities)
    order = _stable_top_k_order(sort_keys, k)
    rows = np.arange(len(logits))[:, None]
    return order.astype(np.int64), probabilities[rows, order]


def _stable_top_k_order(sort_keys: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest keys per row, ties broken by smallest index.

    This runs on every image of every campaign lane, so the full
    ``argsort`` of all classes is replaced by an O(C) ``argpartition``
    followed by a local sort of the k candidates.  The partition is only
    index-stable when the boundary value is unambiguous; rows where ties
    straddle the k-th position fall back to the stable full argsort, so the
    result is always identical to ``argsort(-keys, kind="stable")[:, :k]``.
    """
    num_rows, num_classes = sort_keys.shape
    if k <= 0:
        return np.empty((num_rows, 0), dtype=np.int64)
    if k >= num_classes:
        return np.argsort(-sort_keys, axis=1, kind="stable")[:, :k]
    rows = np.arange(num_rows)[:, None]
    candidates = np.argpartition(-sort_keys, k - 1, axis=1)[:, :k]
    candidates = np.sort(candidates, axis=1)  # ascending index = stable tie order
    candidate_keys = sort_keys[rows, candidates]
    local = np.argsort(-candidate_keys, axis=1, kind="stable")
    order = candidates[rows, local]
    # A row is ambiguous when values equal to its k-th largest ("boundary")
    # key also exist outside the selected set — the partition then picked an
    # arbitrary subset of the tied indices.
    boundary = candidate_keys.min(axis=1, keepdims=True)
    n_ge_selected = (candidate_keys >= boundary).sum(axis=1)
    n_ge_total = (sort_keys >= boundary).sum(axis=1)
    ambiguous = n_ge_total > n_ge_selected
    if np.any(ambiguous):
        exact = np.argsort(-sort_keys[ambiguous], axis=1, kind="stable")[:, :k]
        order[ambiguous] = exact
    return order


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose ground-truth label is within the top-k classes."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    classes, _ = top_k_predictions(logits, k=k)
    if len(labels) != len(classes):
        raise ValueError(f"got {len(labels)} labels for {len(classes)} predictions")
    if len(labels) == 0:
        return 0.0
    hits = (classes == labels[:, None]).any(axis=1)
    return float(hits.mean())


def sde_rate(
    golden_logits: np.ndarray,
    corrupted_logits: np.ndarray,
    due_flags: np.ndarray | None = None,
) -> dict[str, float]:
    """Compute masked / SDE / DUE rates by comparing corrupted to golden outputs.

    The SDE criterion follows the paper: the top-1 class of the corrupted run
    differs from the top-1 class of the *fault-free* run of the same input
    (not from the ground truth — faults are judged by how they change the
    model's behaviour).

    Args:
        golden_logits: fault-free outputs, shape ``(N, classes)``.
        corrupted_logits: fault-injected outputs, same shape.
        due_flags: optional boolean array marking inferences with NaN/Inf.

    Returns:
        Dictionary with ``masked`` / ``sde`` / ``due`` rates and ``total``.
    """
    golden_logits = np.asarray(golden_logits, dtype=np.float64)
    corrupted_logits = np.asarray(corrupted_logits, dtype=np.float64)
    if golden_logits.shape != corrupted_logits.shape:
        raise ValueError(
            f"golden {golden_logits.shape} and corrupted {corrupted_logits.shape} shapes differ"
        )
    golden_top1, _ = top_k_predictions(golden_logits, k=1)
    corrupted_top1, _ = top_k_predictions(corrupted_logits, k=1)
    if due_flags is None:
        due_flags = ~np.isfinite(corrupted_logits).all(axis=1)
    due_flags = np.asarray(due_flags, dtype=bool).reshape(-1)
    outcomes = [
        classify_classification_outcome(int(g), int(c), bool(flag))
        for g, c, flag in zip(golden_top1[:, 0], corrupted_top1[:, 0], due_flags)
    ]
    return outcome_rates(outcomes)


@dataclass
class ClassificationCampaignResult:
    """Aggregated KPIs of a classification fault injection campaign."""

    model_name: str
    num_inferences: int
    golden_top1_accuracy: float
    golden_top5_accuracy: float
    corrupted_top1_accuracy: float
    masked_rate: float
    sde_rate: float
    due_rate: float
    outcomes: list[FaultOutcome] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-friendly summary (outcomes omitted)."""
        return {
            "model_name": self.model_name,
            "num_inferences": self.num_inferences,
            "golden_top1_accuracy": self.golden_top1_accuracy,
            "golden_top5_accuracy": self.golden_top5_accuracy,
            "corrupted_top1_accuracy": self.corrupted_top1_accuracy,
            "masked_rate": self.masked_rate,
            "sde_rate": self.sde_rate,
            "due_rate": self.due_rate,
        }


def evaluate_classification_campaign(
    golden_logits: np.ndarray,
    corrupted_logits: np.ndarray,
    labels: np.ndarray,
    due_flags: np.ndarray | None = None,
    model_name: str = "model",
) -> ClassificationCampaignResult:
    """Compute the full KPI set for a classification campaign.

    Args:
        golden_logits: fault-free outputs, one row per inference.
        corrupted_logits: fault-injected outputs, aligned with the golden rows.
        labels: ground-truth labels.
        due_flags: optional per-inference NaN/Inf flags from the monitors.
        model_name: used for reporting.
    """
    golden_logits = np.asarray(golden_logits, dtype=np.float64)
    corrupted_logits = np.asarray(corrupted_logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    rates = sde_rate(golden_logits, corrupted_logits, due_flags)
    golden_top1, _ = top_k_predictions(golden_logits, k=1)
    corrupted_top1, _ = top_k_predictions(corrupted_logits, k=1)
    if due_flags is None:
        due_flags = ~np.isfinite(corrupted_logits).all(axis=1)
    due_flags = np.asarray(due_flags, dtype=bool).reshape(-1)
    outcomes = [
        classify_classification_outcome(int(g), int(c), bool(flag))
        for g, c, flag in zip(golden_top1[:, 0], corrupted_top1[:, 0], due_flags)
    ]
    return ClassificationCampaignResult(
        model_name=model_name,
        num_inferences=len(labels),
        golden_top1_accuracy=top_k_accuracy(golden_logits, labels, k=1),
        golden_top5_accuracy=top_k_accuracy(golden_logits, labels, k=5),
        corrupted_top1_accuracy=top_k_accuracy(corrupted_logits, labels, k=1),
        masked_rate=rates["masked"],
        sde_rate=rates["sde"],
        due_rate=rates["due"],
        outcomes=outcomes,
    )
