"""Object-detection KPIs: CoCo-style AP/AR and the IVMOD metric.

The detection pipeline produces per-image predictions (boxes, scores,
labels).  Two complementary KPI families are computed:

* **CoCo-style average precision / recall** (:func:`coco_map`): detections
  are matched to ground-truth boxes per class at an IoU threshold (or a
  range of thresholds), precision/recall curves are integrated into AP and
  averaged into mAP.
* **IVMOD** (image-wise vulnerability of object detection, reference [5] of
  the paper): an *image* counts as corrupted if the fault changes its
  detection result relative to the fault-free run — additional false
  positives, lost true positives, or NaN/Inf outputs.  ``IVMOD_SDE`` is the
  fraction of images with such silent corruptions, ``IVMOD_DUE`` the fraction
  with NaN/Inf outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.detection.boxes import box_iou


# --------------------------------------------------------------------------- #
# matching and AP
# --------------------------------------------------------------------------- #
def match_detections(
    pred_boxes: np.ndarray,
    pred_scores: np.ndarray,
    gt_boxes: np.ndarray,
    iou_threshold: float = 0.5,
) -> tuple[np.ndarray, int]:
    """Greedy matching of predictions to ground truth boxes (single class).

    Predictions are processed in order of decreasing score; each ground-truth
    box can be matched at most once.

    Returns:
        Tuple ``(tp_flags, num_gt)`` where ``tp_flags`` marks, per prediction
        (sorted by decreasing score), whether it is a true positive.
    """
    pred_boxes = np.asarray(pred_boxes, dtype=np.float32).reshape(-1, 4)
    pred_scores = np.asarray(pred_scores, dtype=np.float32).reshape(-1)
    gt_boxes = np.asarray(gt_boxes, dtype=np.float32).reshape(-1, 4)
    order = np.argsort(-pred_scores, kind="stable")
    tp_flags = np.zeros(len(pred_boxes), dtype=bool)
    matched_gt: set[int] = set()
    if len(gt_boxes) and len(pred_boxes):
        ious = box_iou(pred_boxes, gt_boxes)
        for rank, pred_index in enumerate(order):
            candidates = np.argsort(-ious[pred_index])
            for gt_index in candidates:
                if ious[pred_index, gt_index] < iou_threshold:
                    break
                if int(gt_index) in matched_gt:
                    continue
                matched_gt.add(int(gt_index))
                tp_flags[rank] = True
                break
    return tp_flags, len(gt_boxes)


def average_precision(tp_flags: np.ndarray, num_gt: int) -> float:
    """Compute average precision from ordered true-positive flags.

    Uses the continuous (all-points) interpolation of the precision/recall
    curve, as in the CoCo evaluation.
    """
    tp_flags = np.asarray(tp_flags, dtype=bool).reshape(-1)
    if num_gt <= 0:
        return 0.0
    if len(tp_flags) == 0:
        return 0.0
    tp_cum = np.cumsum(tp_flags)
    fp_cum = np.cumsum(~tp_flags)
    recall = tp_cum / num_gt
    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1)
    # Make precision monotonically decreasing, then integrate over recall.
    precision = np.maximum.accumulate(precision[::-1])[::-1]
    recall = np.concatenate([[0.0], recall])
    precision = np.concatenate([[precision[0] if len(precision) else 0.0], precision])
    return float(np.sum(np.diff(recall) * precision[1:]))


def _per_class_detections(predictions: list[dict], targets: list[dict], class_id: int):
    """Collect, per image, this class's predictions and ground truths."""
    rows = []
    for prediction, target in zip(predictions, targets):
        pred_boxes = np.asarray(prediction["boxes"], dtype=np.float32).reshape(-1, 4)
        pred_scores = np.asarray(prediction["scores"], dtype=np.float32).reshape(-1)
        pred_labels = np.asarray(prediction["labels"], dtype=np.int64).reshape(-1)
        gt_boxes = np.asarray(target["boxes"], dtype=np.float32).reshape(-1, 4)
        gt_labels = np.asarray(target["labels"], dtype=np.int64).reshape(-1)
        keep_pred = pred_labels == class_id
        keep_gt = gt_labels == class_id
        rows.append(
            (
                pred_boxes[keep_pred],
                pred_scores[keep_pred],
                gt_boxes[keep_gt],
            )
        )
    return rows


def coco_map(
    predictions: list[dict],
    targets: list[dict],
    num_classes: int,
    iou_thresholds: tuple[float, ...] = (0.5,),
) -> dict[str, float]:
    """Mean average precision / recall over classes and IoU thresholds.

    Args:
        predictions: per-image dicts with ``boxes`` (corner format), ``scores``
            and ``labels``.
        targets: per-image ground-truth dicts with ``boxes`` and ``labels``.
        num_classes: number of object classes.
        iou_thresholds: IoU thresholds to average over (CoCo uses 0.5..0.95).

    Returns:
        Dictionary with ``mAP``, ``AP50`` (if 0.5 is among the thresholds) and
        mean average recall ``AR``.
    """
    if len(predictions) != len(targets):
        raise ValueError(
            f"got {len(predictions)} prediction entries for {len(targets)} targets"
        )
    ap_per_threshold = []
    recall_per_threshold = []
    ap50 = None
    for threshold in iou_thresholds:
        per_class_ap = []
        per_class_recall = []
        for class_id in range(num_classes):
            rows = _per_class_detections(predictions, targets, class_id)
            all_scores = []
            all_tp = []
            total_gt = 0
            for pred_boxes, pred_scores, gt_boxes in rows:
                tp_flags, num_gt = match_detections(pred_boxes, pred_scores, gt_boxes, threshold)
                order = np.argsort(-pred_scores, kind="stable")
                all_scores.extend(pred_scores[order].tolist())
                all_tp.extend(tp_flags.tolist())
                total_gt += num_gt
            if total_gt == 0:
                continue
            if all_scores:
                merge_order = np.argsort(-np.asarray(all_scores), kind="stable")
                merged_tp = np.asarray(all_tp, dtype=bool)[merge_order]
            else:
                merged_tp = np.zeros((0,), dtype=bool)
            per_class_ap.append(average_precision(merged_tp, total_gt))
            per_class_recall.append(float(merged_tp.sum()) / total_gt if total_gt else 0.0)
        threshold_ap = float(np.mean(per_class_ap)) if per_class_ap else 0.0
        threshold_recall = float(np.mean(per_class_recall)) if per_class_recall else 0.0
        ap_per_threshold.append(threshold_ap)
        recall_per_threshold.append(threshold_recall)
        if abs(threshold - 0.5) < 1e-9:
            ap50 = threshold_ap
    result = {
        "mAP": float(np.mean(ap_per_threshold)) if ap_per_threshold else 0.0,
        "AR": float(np.mean(recall_per_threshold)) if recall_per_threshold else 0.0,
    }
    if ap50 is not None:
        result["AP50"] = ap50
    return result


# --------------------------------------------------------------------------- #
# IVMOD
# --------------------------------------------------------------------------- #
@dataclass
class IvmodResult:
    """Per-campaign IVMOD metric values."""

    sde_rate: float
    due_rate: float
    corrupted_images: int
    due_images: int
    total_images: int
    fp_added_images: int
    tp_lost_images: int

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "ivmod_sde": self.sde_rate,
            "ivmod_due": self.due_rate,
            "corrupted_images": self.corrupted_images,
            "due_images": self.due_images,
            "total_images": self.total_images,
            "fp_added_images": self.fp_added_images,
            "tp_lost_images": self.tp_lost_images,
        }


def _image_detection_state(prediction: dict, target: dict, iou_threshold: float) -> tuple[int, int]:
    """Return ``(true_positives, false_positives)`` of one image's predictions."""
    pred_boxes = np.asarray(prediction["boxes"], dtype=np.float32).reshape(-1, 4)
    pred_scores = np.asarray(prediction["scores"], dtype=np.float32).reshape(-1)
    pred_labels = np.asarray(prediction["labels"], dtype=np.int64).reshape(-1)
    gt_boxes = np.asarray(target["boxes"], dtype=np.float32).reshape(-1, 4)
    gt_labels = np.asarray(target["labels"], dtype=np.int64).reshape(-1)
    true_positives = 0
    false_positives = 0
    for class_id in np.unique(np.concatenate([pred_labels, gt_labels])) if len(pred_labels) + len(gt_labels) else []:
        keep_pred = pred_labels == class_id
        keep_gt = gt_labels == class_id
        tp_flags, _ = match_detections(
            pred_boxes[keep_pred], pred_scores[keep_pred], gt_boxes[keep_gt], iou_threshold
        )
        true_positives += int(tp_flags.sum())
        false_positives += int((~tp_flags).sum())
    return true_positives, false_positives


def _prediction_has_nan_inf(prediction: dict) -> bool:
    boxes = np.asarray(prediction["boxes"], dtype=np.float64).reshape(-1)
    scores = np.asarray(prediction["scores"], dtype=np.float64).reshape(-1)
    values = np.concatenate([boxes, scores]) if boxes.size + scores.size else np.zeros(0)
    if values.size == 0:
        return False
    return not np.isfinite(values).all()


def ivmod_metric(
    golden_predictions: list[dict],
    corrupted_predictions: list[dict],
    targets: list[dict],
    iou_threshold: float = 0.5,
    due_flags: list[bool] | None = None,
) -> IvmodResult:
    """Image-wise vulnerability of object detection (IVMOD_SDE / IVMOD_DUE).

    An image counts towards IVMOD_SDE when the corrupted run loses true
    positives or gains false positives compared to the fault-free run of the
    same image (and no NaN/Inf was produced).  It counts towards IVMOD_DUE
    when the corrupted outputs contain NaN/Inf (or the corresponding monitor
    flagged the inference).

    Args:
        golden_predictions: fault-free per-image predictions.
        corrupted_predictions: fault-injected per-image predictions.
        targets: ground-truth annotations per image.
        iou_threshold: IoU used for TP/FP matching.
        due_flags: optional external NaN/Inf flags (from the monitors).
    """
    if not (len(golden_predictions) == len(corrupted_predictions) == len(targets)):
        raise ValueError("golden, corrupted and target lists must have equal length")
    total = len(targets)
    corrupted_images = 0
    due_images = 0
    fp_added_images = 0
    tp_lost_images = 0
    for index, (golden, corrupted, target) in enumerate(
        zip(golden_predictions, corrupted_predictions, targets)
    ):
        externally_flagged = bool(due_flags[index]) if due_flags is not None else False
        if externally_flagged or _prediction_has_nan_inf(corrupted):
            due_images += 1
            continue
        golden_tp, golden_fp = _image_detection_state(golden, target, iou_threshold)
        corrupted_tp, corrupted_fp = _image_detection_state(corrupted, target, iou_threshold)
        lost_tp = corrupted_tp < golden_tp
        added_fp = corrupted_fp > golden_fp
        if lost_tp:
            tp_lost_images += 1
        if added_fp:
            fp_added_images += 1
        if lost_tp or added_fp:
            corrupted_images += 1
    return IvmodResult(
        sde_rate=corrupted_images / total if total else 0.0,
        due_rate=due_images / total if total else 0.0,
        corrupted_images=corrupted_images,
        due_images=due_images,
        total_images=total,
        fp_added_images=fp_added_images,
        tp_lost_images=tp_lost_images,
    )


@dataclass
class DetectionCampaignResult:
    """Aggregated KPIs of a detection fault injection campaign."""

    model_name: str
    num_images: int
    golden_map: dict[str, float]
    corrupted_map: dict[str, float]
    ivmod: IvmodResult
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "model_name": self.model_name,
            "num_images": self.num_images,
            "golden_map": dict(self.golden_map),
            "corrupted_map": dict(self.corrupted_map),
            "ivmod": self.ivmod.as_dict(),
            "extra": dict(self.extra),
        }


def evaluate_detection_campaign(
    golden_predictions: list[dict],
    corrupted_predictions: list[dict],
    targets: list[dict],
    num_classes: int,
    model_name: str = "detector",
    iou_threshold: float = 0.5,
    due_flags: list[bool] | None = None,
) -> DetectionCampaignResult:
    """Compute mAP (golden and corrupted) plus IVMOD for a detection campaign."""
    golden_map = coco_map(golden_predictions, targets, num_classes, (iou_threshold,))
    corrupted_map = coco_map(corrupted_predictions, targets, num_classes, (iou_threshold,))
    ivmod = ivmod_metric(
        golden_predictions, corrupted_predictions, targets, iou_threshold, due_flags
    )
    return DetectionCampaignResult(
        model_name=model_name,
        num_images=len(targets),
        golden_map=golden_map,
        corrupted_map=corrupted_map,
        ivmod=ivmod,
    )
