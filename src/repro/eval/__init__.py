"""KPI generation: classification and object-detection fault metrics.

The evaluation layer turns raw fault-free / corrupted model outputs into the
KPIs the paper reports:

* classification: top-k accuracy, and the per-inference outcome taxonomy
  (masked / SDE / DUE) with the resulting SDE and DUE rates;
* object detection: IoU, CoCo-style average precision / recall (AP, AR, mAP)
  and the IVMOD metric (image-wise vulnerability of object detection) with
  its SDE and DUE variants.
"""

from repro.eval.classification import (
    ClassificationCampaignResult,
    evaluate_classification_campaign,
    sde_rate,
    top_k_accuracy,
    top_k_predictions,
)
from repro.eval.detection import (
    DetectionCampaignResult,
    IvmodResult,
    average_precision,
    coco_map,
    evaluate_detection_campaign,
    ivmod_metric,
    match_detections,
)
from repro.eval.sdc import FaultOutcome, classify_classification_outcome, outcome_rates

__all__ = [
    "ClassificationCampaignResult",
    "DetectionCampaignResult",
    "FaultOutcome",
    "IvmodResult",
    "average_precision",
    "classify_classification_outcome",
    "coco_map",
    "evaluate_classification_campaign",
    "evaluate_detection_campaign",
    "ivmod_metric",
    "match_detections",
    "outcome_rates",
    "sde_rate",
    "top_k_accuracy",
    "top_k_predictions",
]
