"""PyTorchALFI reproduction.

A self-contained reproduction of the PyTorchALFI application-level fault
injection framework (Graefe et al., DSN 2023 workshop).  Because the target
environment ships neither PyTorch nor pre-trained models, the package also
provides the substrates the paper depends on:

* :mod:`repro.nn` -- a numpy-backed neural-network library that reproduces
  the PyTorch ``Module`` / forward-hook / parameter contract PyTorchALFI
  relies on.
* :mod:`repro.models` -- classification and object-detection model zoos.
* :mod:`repro.data` -- synthetic ImageNet-style and CoCo-format datasets.
* :mod:`repro.pytorchfi` -- a PyTorchFI-compatible core fault injector.
* :mod:`repro.alficore` -- the paper's contribution: scenario configuration,
  pre-generated fault matrices, faulty-model iterators, monitors, result
  persistence, KPI generation and model hardening.
* :mod:`repro.eval` -- classification and detection KPIs (SDE / DUE / IVMOD /
  CoCo-style mAP).
* :mod:`repro.experiments` -- the unified declarative Experiment API: one
  serializable spec, central component registries, and a single
  ``run(spec) -> CampaignResult`` entry point.
"""

from repro.version import __version__

__all__ = ["__version__"]
