"""ALFI data-loader wrapper.

Section IV-E of the paper: existing data loaders are wrapped so that every
batch carries additional per-image metadata (directory + filename, height,
width and image id), enabling later reproduction of fault conditions down to
a single data item.  Batches are delivered as lists of dictionaries,
``[dict_img1, dict_img2, ...]`` with keys ``image``, ``image_id``, ``height``,
``width``, ``file_name`` plus the original label/target — the same structure
the paper describes for its detectron2-inspired loader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.data.dataset import Dataset


@dataclass
class ImageRecord:
    """One image together with its traceability metadata."""

    image: np.ndarray
    image_id: int
    file_name: str
    height: int
    width: int
    target: Any = None

    def as_dict(self) -> dict:
        """Return the record as the dictionary format described in the paper."""
        return {
            "image": self.image,
            "image_id": self.image_id,
            "file_name": self.file_name,
            "height": self.height,
            "width": self.width,
            "target": self.target,
        }


class AlfiDataLoaderWrapper:
    """Wrap a dataset into metadata-enriched batches.

    Args:
        dataset: any map-style dataset returning ``(image, label_or_target)``.
            If the dataset exposes a ``metadata(index)`` method (as the
            synthetic datasets do) its output is used; otherwise metadata is
            derived from the image shape and index.
        batch_size: images per batch.
        shuffle: whether to shuffle between epochs (seeded).
        seed: RNG seed for shuffling.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 4,
        shuffle: bool = False,
        seed: int = 0,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def dataset_size(self) -> int:
        """Number of images in the wrapped dataset."""
        return len(self.dataset)

    def _record(self, index: int) -> ImageRecord:
        item = self.dataset[index]
        if isinstance(item, tuple) and len(item) == 2:
            image, target = item
        else:
            image, target = item, None
        if hasattr(self.dataset, "metadata"):
            meta = self.dataset.metadata(index)
        else:
            image_arr = np.asarray(image)
            height = int(image_arr.shape[-2]) if image_arr.ndim >= 2 else 1
            width = int(image_arr.shape[-1]) if image_arr.ndim >= 1 else 1
            meta = {
                "image_id": index,
                "file_name": f"memory/item_{index:06d}",
                "height": height,
                "width": width,
            }
        return ImageRecord(
            image=np.asarray(image, dtype=np.float32),
            image_id=int(meta["image_id"]),
            file_name=str(meta["file_name"]),
            height=int(meta["height"]),
            width=int(meta["width"]),
            target=target,
        )

    def epoch_indices(self, epoch: int) -> np.ndarray:
        """Dataset index order of one epoch (the seeded shuffle permutation).

        The permutation depends only on ``(seed, epoch)``, so any process can
        reproduce the exact batch order of any epoch — this is what makes
        sharded campaign execution bit-identical to a serial run.
        """
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng(self.seed + epoch)
            rng.shuffle(indices)
        return indices

    def iter_batches(
        self,
        epoch: int,
        start_batch: int = 0,
        stop_batch: int | None = None,
    ) -> Iterator[list[ImageRecord]]:
        """Yield the batches ``[start_batch, stop_batch)`` of an explicit epoch.

        Unlike ``__iter__`` this does not advance the internal epoch counter
        and never materialises records outside the requested range, so a
        campaign shard can jump straight to its slice of the epoch.
        """
        if start_batch < 0:
            raise ValueError(f"start_batch must be non-negative, got {start_batch}")
        num_batches = len(self)
        stop_batch = num_batches if stop_batch is None else min(stop_batch, num_batches)
        indices = self.epoch_indices(epoch)
        for batch_index in range(start_batch, stop_batch):
            start = batch_index * self.batch_size
            batch_indices = indices[start : start + self.batch_size]
            yield [self._record(int(i)) for i in batch_indices]

    def __iter__(self) -> Iterator[list[ImageRecord]]:
        epoch = self._epoch
        self._epoch += 1
        yield from self.iter_batches(epoch)

    @staticmethod
    def stack_images(batch: list[ImageRecord]) -> np.ndarray:
        """Stack the images of a batch into a single ``(N, C, H, W)`` array."""
        return np.stack([record.image for record in batch], axis=0)

    @staticmethod
    def labels(batch: list[ImageRecord]) -> np.ndarray:
        """Collect integer classification labels of a batch."""
        return np.asarray([record.target for record in batch], dtype=np.int64)
