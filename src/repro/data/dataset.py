"""Minimal Dataset / DataLoader abstractions (PyTorch-compatible subset)."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


class Dataset:
    """Abstract map-style dataset: implements ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int):  # pragma: no cover - abstract
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset wrapping equally sized arrays; item ``i`` is a tuple of slices."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"all arrays must share the first dimension, got lengths {lengths}")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int):
        items = tuple(a[index] for a in self.arrays)
        return items if len(items) > 1 else items[0]


def default_collate(batch: Sequence):
    """Stack a list of samples into batched arrays.

    Tuples are collated element-wise; dictionaries key-wise; arrays and
    scalars are stacked; anything else is returned as a list.
    """
    first = batch[0]
    if isinstance(first, tuple):
        return tuple(default_collate([sample[i] for sample in batch]) for i in range(len(first)))
    if isinstance(first, dict):
        return {key: default_collate([sample[key] for sample in batch]) for key in first}
    if isinstance(first, np.ndarray):
        return np.stack(batch, axis=0)
    if isinstance(first, (int, float, np.integer, np.floating)):
        return np.asarray(batch)
    return list(batch)


class DataLoader:
    """Iterate a dataset in batches, optionally shuffled with a fixed seed."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 1,
        shuffle: bool = False,
        seed: int | None = 0,
        collate_fn=default_collate,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.collate_fn = collate_fn
        self.drop_last = drop_last
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng(None if self.seed is None else self.seed + self._epoch)
            rng.shuffle(indices)
        self._epoch += 1
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            yield self.collate_fn([self.dataset[int(i)] for i in batch_indices])
