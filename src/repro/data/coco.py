"""Synthetic CoCo-format object detection dataset.

Stands in for the CoCo / Kitti datasets used by the paper's detection
experiments.  Every image contains a small number of bright rectangular
"objects" on a noisy background; annotations follow the CoCo JSON schema
(``images``, ``annotations``, ``categories``) so the ALFI result pipeline
and CoCo-style AP/AR evaluation exercise the same code paths they would with
the real dataset.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.data.dataset import Dataset


class CocoLikeDetectionDataset(Dataset):
    """Seeded synthetic detection dataset with CoCo-schema annotations.

    Each item is a tuple ``(image, target)`` where ``image`` has shape
    ``(3, height, width)`` and ``target`` is a dict with ``boxes`` (corner
    format), ``labels``, ``image_id``, ``file_name``, ``height``, ``width``.
    """

    def __init__(
        self,
        num_samples: int = 50,
        num_classes: int = 5,
        image_size: tuple[int, int] = (64, 64),
        max_objects: int = 3,
        noise: float = 0.1,
        seed: int = 0,
    ):
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if max_objects <= 0:
            raise ValueError("max_objects must be positive")
        self.num_samples = num_samples
        self.num_classes = num_classes
        self.image_size = image_size
        self.max_objects = max_objects
        self.noise = noise
        self.seed = seed

        height, width = image_size
        rng = np.random.default_rng(seed)
        self._targets: list[dict[str, Any]] = []
        self._image_seeds = rng.integers(0, 2**31 - 1, size=num_samples)
        for index in range(num_samples):
            object_count = int(rng.integers(1, max_objects + 1))
            boxes = []
            labels = []
            for _ in range(object_count):
                box_w = float(rng.uniform(width * 0.15, width * 0.4))
                box_h = float(rng.uniform(height * 0.15, height * 0.4))
                x1 = float(rng.uniform(0, width - box_w))
                y1 = float(rng.uniform(0, height - box_h))
                boxes.append([x1, y1, x1 + box_w, y1 + box_h])
                labels.append(int(rng.integers(0, num_classes)))
            self._targets.append(
                {
                    "boxes": np.asarray(boxes, dtype=np.float32),
                    "labels": np.asarray(labels, dtype=np.int64),
                    "image_id": index,
                    "file_name": f"synthetic_coco/images/{index:012d}.png",
                    "height": height,
                    "width": width,
                }
            )

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> tuple[np.ndarray, dict[str, Any]]:
        if not 0 <= index < self.num_samples:
            raise IndexError(f"index {index} out of range for dataset of size {self.num_samples}")
        target = self._targets[index]
        height, width = self.image_size
        rng = np.random.default_rng(int(self._image_seeds[index]))
        image = rng.normal(0.0, self.noise, size=(3, height, width)).astype(np.float32)
        # Paint every object as a bright class-coloured rectangle.
        for box, label in zip(target["boxes"], target["labels"]):
            x1, y1, x2, y2 = (int(v) for v in box)
            channel = int(label) % 3
            image[channel, y1:y2, x1:x2] += 1.5
            image[(channel + 1) % 3, y1:y2, x1:x2] += 0.5
        return image, self._copy_target(target)

    def _copy_target(self, target: dict[str, Any]) -> dict[str, Any]:
        copied = dict(target)
        copied["boxes"] = target["boxes"].copy()
        copied["labels"] = target["labels"].copy()
        return copied

    def metadata(self, index: int) -> dict:
        """Return CoCo-style image metadata for image ``index``."""
        target = self._targets[index]
        return {
            "image_id": target["image_id"],
            "file_name": target["file_name"],
            "height": target["height"],
            "width": target["width"],
        }

    def ground_truth(self) -> list[dict[str, Any]]:
        """Return (copies of) all targets, used by the evaluation pipeline."""
        return [self._copy_target(t) for t in self._targets]


def coco_annotations_to_json(dataset: CocoLikeDetectionDataset) -> dict:
    """Export the dataset annotations in the CoCo JSON schema.

    The returned dictionary has the standard ``images``, ``annotations`` and
    ``categories`` sections and can be serialised with :func:`json.dumps`.
    """
    images = []
    annotations = []
    annotation_id = 1
    for index in range(len(dataset)):
        meta = dataset.metadata(index)
        images.append(
            {
                "id": meta["image_id"],
                "file_name": meta["file_name"],
                "height": meta["height"],
                "width": meta["width"],
            }
        )
        target = dataset.ground_truth()[index]
        for box, label in zip(target["boxes"], target["labels"]):
            x1, y1, x2, y2 = (float(v) for v in box)
            annotations.append(
                {
                    "id": annotation_id,
                    "image_id": meta["image_id"],
                    "category_id": int(label),
                    "bbox": [x1, y1, x2 - x1, y2 - y1],
                    "area": float((x2 - x1) * (y2 - y1)),
                    "iscrowd": 0,
                }
            )
            annotation_id += 1
    categories = [{"id": i, "name": f"class_{i}"} for i in range(dataset.num_classes)]
    document = {"images": images, "annotations": annotations, "categories": categories}
    # Round-trip through json to guarantee the document is serialisable.
    return json.loads(json.dumps(document))
