"""Synthetic classification dataset.

Stands in for ImageNet / CIFAR in the fault injection campaigns.  Each class
is associated with a distinct spatial/colour prototype pattern; images are
the prototype plus seeded Gaussian noise.  A small CNN or MLP trained-free
(we instead fit the final linear layer analytically, see
:func:`make_separable_classifier_data`) reaches high fault-free accuracy on
this data, so SDE rates measure genuine fault-induced misclassification
rather than baseline noise.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset


class SyntheticClassificationDataset(Dataset):
    """Seeded synthetic image classification dataset.

    Args:
        num_samples: number of images.
        num_classes: number of classes.
        image_size: ``(channels, height, width)``.
        noise: standard deviation of the additive Gaussian noise.
        seed: RNG seed; the same seed always produces the same dataset.
    """

    def __init__(
        self,
        num_samples: int = 100,
        num_classes: int = 10,
        image_size: tuple[int, int, int] = (3, 32, 32),
        noise: float = 0.25,
        seed: int = 0,
    ):
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if num_classes <= 1:
            raise ValueError("num_classes must be at least 2")
        self.num_samples = num_samples
        self.num_classes = num_classes
        self.image_size = image_size
        self.noise = noise
        self.seed = seed

        rng = np.random.default_rng(seed)
        channels, height, width = image_size
        # One fixed prototype image per class.
        self._prototypes = rng.normal(0.0, 1.0, size=(num_classes, channels, height, width)).astype(
            np.float32
        )
        self._labels = rng.integers(0, num_classes, size=num_samples).astype(np.int64)
        self._noise_seeds = rng.integers(0, 2**31 - 1, size=num_samples)
        # Per-image metadata mirroring what the ALFI dataloader wrapper records.
        self._file_names = [f"synthetic/images/img_{i:06d}.png" for i in range(num_samples)]

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        if not 0 <= index < self.num_samples:
            raise IndexError(f"index {index} out of range for dataset of size {self.num_samples}")
        label = int(self._labels[index])
        rng = np.random.default_rng(int(self._noise_seeds[index]))
        image = self._prototypes[label] + rng.normal(0.0, self.noise, size=self.image_size).astype(
            np.float32
        )
        return image.astype(np.float32), label

    def metadata(self, index: int) -> dict:
        """Return CoCo-style metadata for image ``index``."""
        _, height, width = self.image_size
        return {
            "image_id": index,
            "file_name": self._file_names[index],
            "height": height,
            "width": width,
        }

    @property
    def labels(self) -> np.ndarray:
        """All ground-truth labels (copy)."""
        return self._labels.copy()

    @property
    def prototypes(self) -> np.ndarray:
        """Class prototype images (copy)."""
        return self._prototypes.copy()


def make_separable_classifier_data(
    num_samples: int = 64,
    num_classes: int = 10,
    num_features: int = 32,
    noise: float = 0.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate linearly separable feature vectors plus a perfect weight matrix.

    Returns ``(features, labels, weight)`` where ``features @ weight.T`` has
    its maximum at the correct class for every sample (as long as ``noise`` is
    small).  Used to build "pre-trained" linear classifier heads with high
    fault-free accuracy, so SDE measurements are not polluted by baseline
    misclassifications.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 1.0, size=(num_classes, num_features)).astype(np.float32)
    # Normalise the class centres so all classes are equally easy.
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    labels = rng.integers(0, num_classes, size=num_samples).astype(np.int64)
    features = centers[labels] + rng.normal(0.0, noise, size=(num_samples, num_features)).astype(
        np.float32
    )
    weight = centers * 4.0
    return features.astype(np.float32), labels, weight.astype(np.float32)
