"""Datasets and data loaders.

The paper runs fault injection campaigns over ImageNet / CoCo / Kitti.  This
subpackage provides:

* a minimal ``Dataset`` / ``DataLoader`` pair mirroring the PyTorch API,
* a seeded synthetic classification dataset whose images are separable by
  class (so fault-free models achieve high accuracy and SDE measurements are
  meaningful),
* a synthetic CoCo-format detection dataset with JSON-compatible annotations
  (image ids, file names, bounding boxes, category ids), and
* the ALFI data-loader wrapper that attaches per-image metadata
  (``image_id``, file name, height, width) so fault effects can later be
  traced back to individual inputs, exactly as described in Section IV-E of
  the paper.
"""

from repro.data.coco import CocoLikeDetectionDataset, coco_annotations_to_json
from repro.data.dataset import DataLoader, Dataset, TensorDataset
from repro.data.kitti import KITTI_CATEGORIES, KittiLikeDetectionDataset
from repro.data.synthetic import SyntheticClassificationDataset, make_separable_classifier_data
from repro.data.wrapper import AlfiDataLoaderWrapper, ImageRecord

__all__ = [
    "AlfiDataLoaderWrapper",
    "CocoLikeDetectionDataset",
    "DataLoader",
    "Dataset",
    "ImageRecord",
    "KITTI_CATEGORIES",
    "KittiLikeDetectionDataset",
    "SyntheticClassificationDataset",
    "TensorDataset",
    "coco_annotations_to_json",
    "make_separable_classifier_data",
]
