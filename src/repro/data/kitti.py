"""Synthetic Kitti-style object detection dataset.

Figure 2b of the paper evaluates the detectors on multiple datasets (CoCo and
Kitti).  This module provides the Kitti-flavoured counterpart of
:class:`~repro.data.coco.CocoLikeDetectionDataset`: wide-aspect road-scene
images (Kitti frames are much wider than tall), a small set of traffic
categories (car / pedestrian / cyclist), a ground plane with a horizon, and
objects whose size scales with their vertical position (far objects near the
horizon are small).  Annotations use the same CoCo-schema dictionaries, so
the whole ALFI result pipeline works unchanged.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.data.dataset import Dataset

KITTI_CATEGORIES = ("car", "pedestrian", "cyclist")


class KittiLikeDetectionDataset(Dataset):
    """Seeded synthetic detection dataset with a Kitti-style road-scene layout.

    Each item is a tuple ``(image, target)`` where ``image`` has shape
    ``(3, height, width)`` (wide aspect ratio by default) and ``target`` is a
    dict with ``boxes`` (corner format), ``labels``, ``image_id``,
    ``file_name``, ``height`` and ``width``.
    """

    def __init__(
        self,
        num_samples: int = 50,
        image_size: tuple[int, int] = (48, 96),
        max_objects: int = 4,
        noise: float = 0.08,
        seed: int = 0,
    ):
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if max_objects <= 0:
            raise ValueError("max_objects must be positive")
        height, width = image_size
        if width <= height:
            raise ValueError(
                f"Kitti-style frames are wider than tall; got image_size={image_size}"
            )
        self.num_samples = num_samples
        self.image_size = image_size
        self.max_objects = max_objects
        self.noise = noise
        self.seed = seed
        self.num_classes = len(KITTI_CATEGORIES)

        rng = np.random.default_rng(seed)
        self._horizon = int(height * 0.4)
        self._image_seeds = rng.integers(0, 2**31 - 1, size=num_samples)
        self._targets: list[dict[str, Any]] = []
        for index in range(num_samples):
            object_count = int(rng.integers(1, max_objects + 1))
            boxes = []
            labels = []
            for _ in range(object_count):
                label = int(rng.integers(0, self.num_classes))
                # Object bottom sits on the ground plane; distance from the
                # horizon controls apparent size (perspective).
                bottom = float(rng.uniform(self._horizon + 4, height - 1))
                distance_factor = (bottom - self._horizon) / (height - self._horizon)
                base_h = {"car": 0.35, "pedestrian": 0.5, "cyclist": 0.45}[KITTI_CATEGORIES[label]]
                base_w = {"car": 0.8, "pedestrian": 0.25, "cyclist": 0.4}[KITTI_CATEGORIES[label]]
                box_h = max(4.0, base_h * height * distance_factor)
                box_w = max(4.0, base_w * height * distance_factor)
                x1 = float(rng.uniform(0, width - box_w))
                y1 = bottom - box_h
                boxes.append([x1, max(0.0, y1), x1 + box_w, bottom])
                labels.append(label)
            self._targets.append(
                {
                    "boxes": np.asarray(boxes, dtype=np.float32),
                    "labels": np.asarray(labels, dtype=np.int64),
                    "image_id": index,
                    "file_name": f"synthetic_kitti/training/image_2/{index:06d}.png",
                    "height": height,
                    "width": width,
                }
            )

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> tuple[np.ndarray, dict[str, Any]]:
        if not 0 <= index < self.num_samples:
            raise IndexError(f"index {index} out of range for dataset of size {self.num_samples}")
        height, width = self.image_size
        target = self._targets[index]
        rng = np.random.default_rng(int(self._image_seeds[index]))
        image = rng.normal(0.0, self.noise, size=(3, height, width)).astype(np.float32)
        # Sky above the horizon, road below: two distinct background bands.
        image[2, : self._horizon, :] += 0.6  # bluish sky
        image[:, self._horizon :, :] += 0.2  # brighter road surface
        for box, label in zip(target["boxes"], target["labels"]):
            x1, y1, x2, y2 = (int(v) for v in box)
            channel = int(label) % 3
            image[channel, y1:y2, x1:x2] += 1.4
            image[(channel + 2) % 3, y1:y2, x1:x2] += 0.4
        return image, self._copy_target(target)

    def _copy_target(self, target: dict[str, Any]) -> dict[str, Any]:
        copied = dict(target)
        copied["boxes"] = target["boxes"].copy()
        copied["labels"] = target["labels"].copy()
        return copied

    def metadata(self, index: int) -> dict:
        """Return CoCo-style image metadata for image ``index``."""
        target = self._targets[index]
        return {
            "image_id": target["image_id"],
            "file_name": target["file_name"],
            "height": target["height"],
            "width": target["width"],
        }

    def ground_truth(self) -> list[dict[str, Any]]:
        """Return (copies of) all targets, used by the evaluation pipeline."""
        return [self._copy_target(target) for target in self._targets]

    @property
    def category_names(self) -> tuple[str, ...]:
        """Human-readable category names (car / pedestrian / cyclist)."""
        return KITTI_CATEGORIES
