"""Post-processing of campaign result files.

Section V-F of the paper: the raw result files (classification CSV /
detection JSON plus the applied-fault records) are further processed to
quantify the vulnerability — bit-wise and layer-wise SDE information is
extracted from the stored outputs, flip directions are tallied, and runs of
different models or protection variants are compared.  This module provides
that post-processing stage for result directories written by
:class:`~repro.alficore.results.CampaignResultWriter` (and therefore by the
high-level ``TestErrorModels_*`` campaign classes).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.alficore.results import CampaignResultWriter


@dataclass
class CampaignAnalysis:
    """Aggregated vulnerability breakdown of one stored campaign.

    Attributes:
        campaign_name: result file prefix the analysis was read from.
        num_inferences: number of (golden, corrupted) inference pairs.
        sde_rate / due_rate / masked_rate: overall outcome rates.
        sde_by_bit: SDE+DUE rate per flipped bit position.
        sde_by_layer: SDE+DUE rate per injected layer index.
        flip_direction_counts: how many applied faults flipped 0->1 vs 1->0.
        corrupted_image_ids: ids of the inputs whose top-1 changed.
    """

    campaign_name: str
    num_inferences: int
    sde_rate: float
    due_rate: float
    masked_rate: float
    sde_by_bit: dict[int, float] = field(default_factory=dict)
    sde_by_layer: dict[int, float] = field(default_factory=dict)
    flip_direction_counts: dict[str, int] = field(default_factory=dict)
    corrupted_image_ids: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "campaign_name": self.campaign_name,
            "num_inferences": self.num_inferences,
            "sde_rate": self.sde_rate,
            "due_rate": self.due_rate,
            "masked_rate": self.masked_rate,
            "sde_by_bit": {str(k): v for k, v in self.sde_by_bit.items()},
            "sde_by_layer": {str(k): v for k, v in self.sde_by_layer.items()},
            "flip_direction_counts": dict(self.flip_direction_counts),
            "corrupted_image_ids": list(self.corrupted_image_ids),
        }


def _row_top1(row: dict) -> int:
    return int(row["top1_class"])


def _row_due(row: dict) -> bool:
    return bool(int(row["nan_detected"])) or bool(int(row["inf_detected"]))


def analyze_classification_campaign(
    output_dir: str | Path,
    campaign_name: str,
    corrupted_tag: str = "corrupted",
    golden_tag: str = "golden",
) -> CampaignAnalysis:
    """Analyse a stored classification campaign directory.

    Args:
        output_dir: directory the campaign was written into.
        campaign_name: the campaign (file prefix) to analyse.
        corrupted_tag: tag of the fault-injected result CSV.
        golden_tag: tag of the fault-free result CSV.

    Returns:
        A :class:`CampaignAnalysis` with overall rates and per-bit / per-layer
        breakdowns extracted from the stored fault positions.
    """
    reader = CampaignResultWriter(output_dir, campaign_name=campaign_name)
    corrupted_rows = reader.read_classification_csv(corrupted_tag)
    golden_rows = reader.read_classification_csv(golden_tag)
    if len(corrupted_rows) != len(golden_rows):
        raise ValueError(
            f"campaign {campaign_name!r}: {len(corrupted_rows)} corrupted rows vs "
            f"{len(golden_rows)} golden rows"
        )
    if not corrupted_rows:
        raise ValueError(f"campaign {campaign_name!r} contains no result rows")

    outcomes = []  # per inference: "masked" | "sde" | "due"
    per_bit: dict[int, list[bool]] = defaultdict(list)
    per_layer: dict[int, list[bool]] = defaultdict(list)
    flip_directions: dict[str, int] = defaultdict(int)
    corrupted_ids: list[int] = []

    for golden_row, corrupted_row in zip(golden_rows, corrupted_rows):
        if golden_row["image_id"] != corrupted_row["image_id"]:
            raise ValueError("golden and corrupted rows are not aligned by image id")
        due = _row_due(corrupted_row)
        changed = _row_top1(golden_row) != _row_top1(corrupted_row)
        if due:
            outcome = "due"
        elif changed:
            outcome = "sde"
        else:
            outcome = "masked"
        outcomes.append(outcome)
        if outcome != "masked":
            corrupted_ids.append(int(corrupted_row["image_id"]))

        for position in json.loads(corrupted_row["fault_positions"]):
            is_corrupted = outcome != "masked"
            bit = position.get("bit_position")
            if bit is not None:
                per_bit[int(bit)].append(is_corrupted)
            layer = position.get("layer")
            if layer is not None:
                per_layer[int(layer)].append(is_corrupted)
            direction = position.get("flip_direction")
            if direction:
                flip_directions[direction] += 1

    total = len(outcomes)
    return CampaignAnalysis(
        campaign_name=campaign_name,
        num_inferences=total,
        sde_rate=outcomes.count("sde") / total,
        due_rate=outcomes.count("due") / total,
        masked_rate=outcomes.count("masked") / total,
        sde_by_bit={bit: float(np.mean(flags)) for bit, flags in sorted(per_bit.items())},
        sde_by_layer={layer: float(np.mean(flags)) for layer, flags in sorted(per_layer.items())},
        flip_direction_counts=dict(flip_directions),
        corrupted_image_ids=corrupted_ids,
    )


def analyze_detection_campaign(
    output_dir: str | Path,
    campaign_name: str,
    corrupted_tag: str = "corrupted",
    golden_tag: str = "golden",
    iou_threshold: float = 0.5,
) -> CampaignAnalysis:
    """Analyse a stored object-detection campaign directory.

    The per-image corruption criterion matches IVMOD: an image counts as
    corrupted when the corrupted run lost true positives or gained false
    positives relative to the golden run of the same image (ground truth is
    read from the stored ground-truth JSON), and as DUE when NaN/Inf was
    recorded.
    """
    from repro.eval.detection import _image_detection_state

    reader = CampaignResultWriter(output_dir, campaign_name=campaign_name)
    corrupted_rows = reader.read_detection_json(corrupted_tag)
    golden_rows = reader.read_detection_json(golden_tag)
    ground_truth_path = Path(output_dir) / f"{campaign_name}_ground_truth.json"
    if not ground_truth_path.exists():
        raise FileNotFoundError(f"missing ground truth file {ground_truth_path}")
    targets = json.loads(ground_truth_path.read_text())
    if not (len(corrupted_rows) == len(golden_rows) == len(targets)):
        raise ValueError("corrupted / golden / ground-truth files are not aligned")

    outcomes = []
    per_bit: dict[int, list[bool]] = defaultdict(list)
    per_layer: dict[int, list[bool]] = defaultdict(list)
    flip_directions: dict[str, int] = defaultdict(int)
    corrupted_ids: list[int] = []

    for golden_row, corrupted_row, target in zip(golden_rows, corrupted_rows, targets):
        due = bool(corrupted_row["nan_detected"]) or bool(corrupted_row["inf_detected"])
        target_arrays = {
            "boxes": np.asarray(target["boxes"], dtype=np.float32).reshape(-1, 4),
            "labels": np.asarray(target["labels"], dtype=np.int64).reshape(-1),
        }
        golden_tp, golden_fp = _image_detection_state(golden_row, target_arrays, iou_threshold)
        corrupted_tp, corrupted_fp = _image_detection_state(corrupted_row, target_arrays, iou_threshold)
        changed = corrupted_tp < golden_tp or corrupted_fp > golden_fp
        if due:
            outcome = "due"
        elif changed:
            outcome = "sde"
        else:
            outcome = "masked"
        outcomes.append(outcome)
        if outcome != "masked":
            corrupted_ids.append(int(corrupted_row["image_id"]))
        for position in corrupted_row.get("fault_positions", []):
            is_corrupted = outcome != "masked"
            if position.get("bit_position") is not None:
                per_bit[int(position["bit_position"])].append(is_corrupted)
            if position.get("layer") is not None:
                per_layer[int(position["layer"])].append(is_corrupted)
            if position.get("flip_direction"):
                flip_directions[position["flip_direction"]] += 1

    total = len(outcomes)
    return CampaignAnalysis(
        campaign_name=campaign_name,
        num_inferences=total,
        sde_rate=outcomes.count("sde") / total,
        due_rate=outcomes.count("due") / total,
        masked_rate=outcomes.count("masked") / total,
        sde_by_bit={bit: float(np.mean(flags)) for bit, flags in sorted(per_bit.items())},
        sde_by_layer={layer: float(np.mean(flags)) for layer, flags in sorted(per_layer.items())},
        flip_direction_counts=dict(flip_directions),
        corrupted_image_ids=corrupted_ids,
    )


def compare_campaigns(analyses: list[CampaignAnalysis]) -> list[dict]:
    """Tabulate several analysed campaigns for side-by-side comparison.

    Typical use: compare the unprotected, Ranger and Clipper variants of the
    same model, or different models under the same fault file.
    """
    rows = []
    for analysis in analyses:
        rows.append(
            {
                "campaign": analysis.campaign_name,
                "inferences": analysis.num_inferences,
                "masked": analysis.masked_rate,
                "sde": analysis.sde_rate,
                "due": analysis.due_rate,
                "most vulnerable bit": max(analysis.sde_by_bit, key=analysis.sde_by_bit.get)
                if analysis.sde_by_bit
                else None,
                "most vulnerable layer": max(analysis.sde_by_layer, key=analysis.sde_by_layer.get)
                if analysis.sde_by_layer
                else None,
            }
        )
    return rows
