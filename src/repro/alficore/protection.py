"""Model hardening: Ranger / Clipper activation range supervision.

Figure 2a of the paper compares unprotected classifiers against variants
protected by *Ranger* / *Clipper* (activation range supervision, reference
[6] of the paper).  Both defences exploit the observation that bit flips in
high exponent bits blow activations far outside their fault-free operating
range:

* **Ranger** truncates out-of-range activations back to the recorded
  fault-free bound (clamping), preserving the rest of the computation.
* **Clipper** sets out-of-range activations to zero, discarding the affected
  value entirely.

The bounds are extracted from a fault-free calibration run over the test
dataset (:func:`collect_activation_bounds`).  Protection is applied
*structurally*: every monitored compute layer is replaced by a
:class:`ProtectedLayer` wrapping the original layer plus a guard module.
Structural insertion (instead of hooks) means the hardened model survives
the deep copies the fault injector performs, and the injectable layers keep
their order, so the *exact same* fault matrix can be replayed against the
unprotected and the hardened model — the tight coupling of fault-free,
faulty and enhanced models the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module, RemovableHandle


@dataclass
class ActivationBounds:
    """Per-layer activation bounds recorded during fault-free calibration."""

    lower: dict[str, float]
    upper: dict[str, float]

    def bound_for(self, layer_name: str) -> tuple[float, float]:
        """Return ``(lower, upper)`` for a layer (infinite if not recorded)."""
        return (
            self.lower.get(layer_name, -np.inf),
            self.upper.get(layer_name, np.inf),
        )

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"lower": dict(self.lower), "upper": dict(self.upper)}

    def global_bounds(self) -> tuple[float, float]:
        """Return the widest ``(lower, upper)`` pair across all layers."""
        if not self.lower or not self.upper:
            return (-np.inf, np.inf)
        return (min(self.lower.values()), max(self.upper.values()))


class Ranger(Module):
    """Clamp activations into the fault-free range ``[lower, upper]``.

    NaN values (which cannot be clamped meaningfully) are replaced by the
    upper bound, mirroring the published Ranger behaviour of mapping
    non-finite values back into the valid operating range.
    """

    def __init__(self, lower: float, upper: float):
        super().__init__()
        if lower > upper:
            raise ValueError(f"lower bound {lower} exceeds upper bound {upper}")
        self.lower = float(lower)
        self.upper = float(upper)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        x = np.nan_to_num(x, nan=self.upper, posinf=self.upper, neginf=self.lower)
        return np.clip(x, self.lower, self.upper)

    def extra_repr(self) -> str:
        return f"lower={self.lower}, upper={self.upper}"


class Clipper(Module):
    """Zero out activations outside the fault-free range ``[lower, upper]``."""

    def __init__(self, lower: float, upper: float):
        super().__init__()
        if lower > upper:
            raise ValueError(f"lower bound {lower} exceeds upper bound {upper}")
        self.lower = float(lower)
        self.upper = float(upper)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        x = np.nan_to_num(x, nan=np.inf, posinf=np.inf, neginf=-np.inf)
        out_of_range = (x < self.lower) | (x > self.upper)
        return np.where(out_of_range, 0.0, x).astype(np.float32)

    def extra_repr(self) -> str:
        return f"lower={self.lower}, upper={self.upper}"


class ProtectedLayer(Module):
    """Wrapper running a compute layer followed by its range-supervision guard."""

    def __init__(self, layer: Module, guard: Module):
        super().__init__()
        self.layer = layer
        self.guard = guard

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.guard(self.layer(x))


PROTECTION_TYPES = {"ranger": Ranger, "clipper": Clipper}


def _default_layer_types() -> tuple[type, ...]:
    from repro import nn as _nn

    return (_nn.Conv2d, _nn.Conv3d, _nn.Linear)


def collect_activation_bounds(
    model: Module,
    batches: list[np.ndarray],
    layer_types: tuple[type, ...] | None = None,
    margin: float = 1.05,
) -> ActivationBounds:
    """Record per-layer activation bounds from fault-free calibration batches.

    Args:
        model: the fault-free model.
        batches: list of input batches (``(N, ...)`` arrays) used to observe
            the fault-free activation ranges.
        layer_types: which module classes to monitor; defaults to the
            injectable compute layers (conv / linear).
        margin: multiplicative safety margin applied to the observed bounds.

    Returns:
        :class:`ActivationBounds` mapping layer names to lower/upper bounds.
    """
    if layer_types is None:
        layer_types = _default_layer_types()
    if margin <= 0:
        raise ValueError("margin must be positive")
    lower: dict[str, float] = {}
    upper: dict[str, float] = {}
    handles: list[RemovableHandle] = []

    def make_hook(layer_name: str):
        def hook(module, inputs, output):
            values = np.asarray(output)
            if values.size == 0 or not np.issubdtype(values.dtype, np.floating):
                return None
            low = float(values.min())
            high = float(values.max())
            lower[layer_name] = min(lower.get(layer_name, low), low)
            upper[layer_name] = max(upper.get(layer_name, high), high)
            return None

        return hook

    for name, module in model.named_modules():
        if name and isinstance(module, layer_types):
            handles.append(module.register_forward_hook(make_hook(name)))
    try:
        for batch in batches:
            model(np.asarray(batch, dtype=np.float32))
    finally:
        for handle in handles:
            handle.remove()

    lower = {name: value * margin if value < 0 else value / margin for name, value in lower.items()}
    upper = {name: value * margin if value > 0 else value / margin for name, value in upper.items()}
    return ActivationBounds(lower=lower, upper=upper)


def apply_protection(
    model: Module,
    bounds: ActivationBounds,
    protection: str = "ranger",
    layer_types: tuple[type, ...] | None = None,
) -> Module:
    """Return a hardened copy of ``model`` with range supervision after each layer.

    Every monitored compute layer ``parent.child`` is replaced (in a deep copy
    of the model) by ``ProtectedLayer(child, guard)`` where the guard clamps
    (Ranger) or zeroes (Clipper) activations outside the calibrated bounds.

    Args:
        model: the model to harden (left unmodified).
        bounds: activation bounds from :func:`collect_activation_bounds`.
        protection: ``"ranger"`` or ``"clipper"``.
        layer_types: which module classes to protect; defaults to the
            injectable compute layers.

    Returns:
        A hardened copy of the model.  The injectable layers keep their
        relative order, so fault matrices generated against the unprotected
        model replay exactly on the hardened one.
    """
    if protection not in PROTECTION_TYPES:
        raise KeyError(f"unknown protection {protection!r}; choose from {sorted(PROTECTION_TYPES)}")
    if layer_types is None:
        layer_types = _default_layer_types()
    protected = model.clone()
    protection_class = PROTECTION_TYPES[protection]

    # Collect replacements first: mutating _modules while iterating named_modules
    # would skip entries.
    replacements: list[tuple[Module, str, Module]] = []
    for name, module in protected.named_modules():
        if not name or not isinstance(module, layer_types):
            continue
        low, high = bounds.bound_for(name)
        if not np.isfinite(low) and not np.isfinite(high):
            continue
        if not np.isfinite(low):
            low = -abs(high)
        if not np.isfinite(high):
            high = abs(low)
        parent_path, _, child_name = name.rpartition(".")
        parent = protected.get_submodule(parent_path)
        replacements.append((parent, child_name, protection_class(low, high)))

    for parent, child_name, guard in replacements:
        original = parent._modules[child_name]
        parent._modules[child_name] = ProtectedLayer(original, guard)
    return protected


def count_protected_layers(model: Module) -> int:
    """Number of :class:`ProtectedLayer` wrappers in a model tree."""
    return sum(1 for _, module in model.named_modules() if isinstance(module, ProtectedLayer))
