"""Injection policies: how faults map onto inferences.

The paper's fault injection policy decides the *scope* of a fault: it can be
applied to a single image, a whole batch of images, or an entire epoch (the
complete test dataset).  The policy therefore determines both how many faults
need to be pre-generated and which fault column(s) are active for a given
inference step.
"""

from __future__ import annotations

from enum import Enum

from repro.alficore.scenario import ScenarioConfig


class InjectionPolicy(str, Enum):
    """Scope over which one set of faults stays active."""

    PER_IMAGE = "per_image"
    PER_BATCH = "per_batch"
    PER_EPOCH = "per_epoch"

    @classmethod
    def from_string(cls, value: str) -> "InjectionPolicy":
        """Parse a policy name as used in scenario files."""
        try:
            return cls(value)
        except ValueError as error:
            valid = [member.value for member in cls]
            raise ValueError(f"unknown injection policy {value!r}; valid: {valid}") from error


def groups_in_campaign(scenario: ScenarioConfig) -> int:
    """Number of distinct fault groups needed for the whole campaign.

    A *group* is the unit that gets a fresh set of ``max_faults_per_image``
    faults: every image for ``per_image``, every batch for ``per_batch`` and
    every epoch for ``per_epoch``.
    """
    policy = InjectionPolicy.from_string(scenario.inj_policy)
    if policy is InjectionPolicy.PER_IMAGE:
        return scenario.dataset_size * scenario.num_runs
    if policy is InjectionPolicy.PER_BATCH:
        batches_per_epoch = (scenario.dataset_size + scenario.batch_size - 1) // scenario.batch_size
        return batches_per_epoch * scenario.num_runs
    return scenario.num_runs


def faults_required(scenario: ScenarioConfig) -> int:
    """Total number of fault columns to pre-generate for the campaign.

    The paper pre-generates ``n = dataset_size * num_runs * max_faults_per_image``
    faults, which covers the finest-grained (``per_image``) policy; coarser
    policies simply consume fewer columns.  This helper returns the exact
    number consumed by the configured policy.
    """
    return groups_in_campaign(scenario) * scenario.max_faults_per_image


def fault_column_for_step(
    scenario: ScenarioConfig,
    epoch: int,
    batch_index: int,
    image_index: int,
) -> list[int]:
    """Return the fault-matrix columns active for one image inference.

    Args:
        scenario: the campaign configuration.
        epoch: epoch number (0-based).
        batch_index: batch number within the epoch (0-based).
        image_index: global image index within the epoch (0-based).

    Returns:
        The list of column indices (length ``max_faults_per_image``) whose
        faults are applied while processing this image.
    """
    if epoch < 0 or batch_index < 0 or image_index < 0:
        raise ValueError("epoch, batch_index and image_index must be non-negative")
    if image_index >= scenario.dataset_size:
        raise ValueError(
            f"image_index {image_index} outside dataset of size {scenario.dataset_size}"
        )
    policy = InjectionPolicy.from_string(scenario.inj_policy)
    if policy is InjectionPolicy.PER_IMAGE:
        group = epoch * scenario.dataset_size + image_index
    elif policy is InjectionPolicy.PER_BATCH:
        batches_per_epoch = (scenario.dataset_size + scenario.batch_size - 1) // scenario.batch_size
        if batch_index >= batches_per_epoch:
            raise ValueError(
                f"batch_index {batch_index} outside epoch with {batches_per_epoch} batches"
            )
        group = epoch * batches_per_epoch + batch_index
    else:  # PER_EPOCH
        group = epoch
    start = group * scenario.max_faults_per_image
    return list(range(start, start + scenario.max_faults_per_image))
