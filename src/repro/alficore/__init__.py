"""PyTorchALFI core (``alficore``): the paper's contribution.

The subpackage provides everything Section IV of the paper describes:

* **Scenario configuration** (:mod:`~repro.alficore.scenario`): the
  ``default.yml`` schema controlling fault count, type and location, with
  validation, persistence and run-time mutation.
* **Fault matrix** (:mod:`~repro.alficore.faultmatrix`): all faults of a
  campaign are pre-generated as a matrix (one column per fault, rows as in
  Table I), stored as a binary file and reusable across experiments.
* **Layer weighting** (:mod:`~repro.alficore.layerweights`): Eq. 1 of the
  paper — random layer selection weighted by relative layer size.
* **Injection policies** (:mod:`~repro.alficore.policies`): ``per_image``,
  ``per_batch`` and ``per_epoch`` fault replacement schedules.
* **The wrapper** (:mod:`~repro.alficore.wrapper`): ``ptfiwrap``, the
  low-level integration point that yields fault-injected model instances via
  an iterator, plus ``get_scenario`` / ``set_scenario`` for iterative
  experiments.
* **Monitors** (:mod:`~repro.alficore.monitoring`): NaN/Inf detection and
  custom hook-based monitors.
* **Protection** (:mod:`~repro.alficore.protection`): Ranger / Clipper
  activation range supervision used as the "enhanced" third model.
* **Result persistence** (:mod:`~repro.alficore.results`): meta yml files,
  binary fault files, CSV (classification) and JSON (detection) outputs.
* **High-level test classes**
  (:mod:`~repro.alficore.test_error_models_imgclass`,
  :mod:`~repro.alficore.test_error_models_objdet`): the paper's turnkey
  campaign runners, now *deprecated shims* that build an experiment spec and
  delegate to the unified Experiment API (:mod:`repro.experiments`) — which
  is the recommended way to define and run campaigns.
"""

from repro.alficore.analysis import (
    CampaignAnalysis,
    analyze_classification_campaign,
    analyze_detection_campaign,
    compare_campaigns,
)
from repro.alficore.campaign import (
    CampaignCore,
    CampaignRunner,
    CampaignSummary,
    CampaignTask,
    ClassificationTask,
    DetectionTask,
    ShardedCampaignExecutor,
)
from repro.alficore.digests import bytes_digest, config_digest, key_digest, model_fingerprint
from repro.alficore.faultmatrix import FaultMatrix, FaultMatrixGenerator, NEURON_ROWS, WEIGHT_ROWS
from repro.alficore.goldencache import GoldenCache, GoldenCacheEntry
from repro.alficore.layerweights import layer_weight_factors, weighted_layer_choice
from repro.alficore.monitoring import InferenceMonitor, MonitorResult, RangeMonitor
from repro.alficore.policies import InjectionPolicy, faults_required, fault_column_for_step
from repro.alficore.protection import Clipper, Ranger, apply_protection, collect_activation_bounds
from repro.alficore.resilience import ExecutionPolicy, RunManifest, ShardError, ShardSupervisor
from repro.alficore.results import CampaignResultWriter, load_fault_file
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario, save_scenario
from repro.alficore.test_error_models_imgclass import TestErrorModels_ImgClass
from repro.alficore.test_error_models_objdet import TestErrorModels_ObjDet
from repro.alficore.wrapper import ptfiwrap

__all__ = [
    "CampaignAnalysis",
    "CampaignCore",
    "CampaignResultWriter",
    "CampaignRunner",
    "CampaignSummary",
    "CampaignTask",
    "ClassificationTask",
    "DetectionTask",
    "ExecutionPolicy",
    "RunManifest",
    "ShardError",
    "ShardSupervisor",
    "ShardedCampaignExecutor",
    "analyze_classification_campaign",
    "analyze_detection_campaign",
    "compare_campaigns",
    "Clipper",
    "FaultMatrix",
    "FaultMatrixGenerator",
    "GoldenCache",
    "GoldenCacheEntry",
    "InferenceMonitor",
    "InjectionPolicy",
    "MonitorResult",
    "NEURON_ROWS",
    "Ranger",
    "RangeMonitor",
    "ScenarioConfig",
    "TestErrorModels_ImgClass",
    "TestErrorModels_ObjDet",
    "WEIGHT_ROWS",
    "apply_protection",
    "bytes_digest",
    "collect_activation_bounds",
    "config_digest",
    "default_scenario",
    "key_digest",
    "model_fingerprint",
    "fault_column_for_step",
    "faults_required",
    "layer_weight_factors",
    "load_fault_file",
    "load_scenario",
    "ptfiwrap",
    "save_scenario",
    "weighted_layer_choice",
]
