"""Epoch-invariant golden cache.

Golden (fault-free) outputs are a pure function of the model weights and the
input batch — they do not depend on the epoch or the fault group.  Per-epoch
campaigns nevertheless used to recompute them once per epoch per image.  The
:class:`GoldenCache` stores, per batch of dataset images:

* the raw golden model output (and, in a separate lane, the hardened
  "resil" model's golden output);
* the golden monitor events together with per-boundary event-count marks, so
  suffix-only faulty passes can inherit the prefix's NaN/Inf events without
  re-scanning;
* checkpointed boundary activations of the golden forward plan, so a later
  epoch's faulty lane can resume mid-network without re-running the prefix.

Entries are keyed by ``(lane, dataset image ids)`` — epoch never enters the
key.  Memory is bounded by a configurable byte budget with LRU eviction; an
optional *spillover directory* persists entries as pickle files so the
shards of a ``ShardedCampaignExecutor`` (separate processes walking the same
dataset in different epoch ranges) can reuse each other's golden passes.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.alficore.digests import key_digest

DEFAULT_BYTE_BUDGET = 256 * 2**20


def _value_nbytes(value) -> int:
    """Rough byte estimate of a cached value (exact for ndarray trees)."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (list, tuple)):
        return sum(_value_nbytes(item) for item in value)
    if isinstance(value, dict):
        return sum(_value_nbytes(item) for item in value.values())
    return 256  # conservative default for opaque objects (e.g. detections)


class GoldenCacheEntry:
    """One cached golden pass (output, monitor events, boundary checkpoints)."""

    __slots__ = ("output", "boundaries", "marks", "events", "batch_shape")

    def __init__(self, output, boundaries, marks, events, batch_shape):
        self.output = output
        self.boundaries = dict(boundaries or {})
        self.marks = marks
        self.events = events
        self.batch_shape = tuple(batch_shape) if batch_shape is not None else None

    @property
    def nbytes(self) -> int:
        """Byte footprint used for budget accounting."""
        return _value_nbytes(self.output) + _value_nbytes(self.boundaries)

    def as_state(self) -> dict:
        """Picklable plain-dict form (inverse of :meth:`from_state`)."""
        return {
            "output": self.output,
            "boundaries": self.boundaries,
            "marks": self.marks,
            "events": self.events,
            "batch_shape": self.batch_shape,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GoldenCacheEntry":
        """Rebuild an entry from :meth:`as_state` output."""
        return cls(
            state["output"], state["boundaries"], state["marks"],
            state["events"], state["batch_shape"],
        )


class GoldenCache:
    """Bounded LRU cache of golden passes with optional shared-file spillover.

    Args:
        byte_budget: in-memory budget; least-recently-used entries are
            evicted once it is exceeded (the most recent entry is always
            kept, even if it alone exceeds the budget).
        spill_dir: optional directory for persisted entries.  Writes are
            atomic (temp file + rename), so concurrent shard processes can
            share one directory without coordination; an in-memory miss
            falls back to loading the spilled entry.
    """

    def __init__(self, byte_budget: int = DEFAULT_BYTE_BUDGET, spill_dir: str | Path | None = None):
        if byte_budget <= 0:
            raise ValueError(f"byte_budget must be positive, got {byte_budget}")
        self.byte_budget = int(byte_budget)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._entries: "OrderedDict[tuple, GoldenCacheEntry]" = OrderedDict()
        self._nbytes = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, key: tuple, batch_shape=None) -> GoldenCacheEntry | None:
        """Return the entry for ``key`` (memory first, then spillover)."""
        entry = self._entries.get(key)
        if entry is None and self.spill_dir is not None:
            entry = self._load_spilled(key)
            if entry is not None:
                self._insert(key, entry, spill=False)
        if entry is not None and batch_shape is not None and entry.batch_shape is not None:
            # Golden rows are only guaranteed bit-identical for identical
            # batch geometry (BLAS blocking may differ across shapes).
            if entry.batch_shape != tuple(batch_shape):
                entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, output, boundaries=None, marks=None, events=None, batch_shape=None) -> GoldenCacheEntry:
        """Insert (or replace) the golden pass for ``key``."""
        entry = GoldenCacheEntry(output, boundaries, marks, events, batch_shape)
        self._insert(key, entry, spill=True)
        return entry

    def add_boundary(self, key: tuple, index: int, value) -> None:
        """Attach one more checkpointed boundary to an existing entry."""
        entry = self._entries.get(key)
        if entry is None:
            return
        self._nbytes -= entry.nbytes
        entry.boundaries[index] = value
        self._nbytes += entry.nbytes
        self._evict()
        if self.spill_dir is not None and key in self._entries:
            self._spill(key, entry)

    def _insert(self, key: tuple, entry: GoldenCacheEntry, spill: bool) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._nbytes -= old.nbytes
        self._entries[key] = entry
        self._nbytes += entry.nbytes
        self._evict()
        if spill and self.spill_dir is not None:
            self._spill(key, entry)

    def _evict(self) -> None:
        while self._nbytes > self.byte_budget and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._nbytes -= evicted.nbytes

    # ------------------------------------------------------------------ #
    # spillover
    # ------------------------------------------------------------------ #
    def _spill_path(self, key: tuple) -> Path:
        return self.spill_dir / f"golden_{key_digest(key)}.pkl"

    def _spill(self, key: tuple, entry: GoldenCacheEntry) -> None:
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_path(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.spill_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry.as_state(), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _load_spilled(self, key: tuple) -> GoldenCacheEntry | None:
        path = self._spill_path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                return GoldenCacheEntry.from_state(pickle.load(handle))
        except FileNotFoundError:
            return None  # lost a race with a concurrent re-spill
        except Exception:
            # A truncated or corrupt spill file (worker killed mid-write on a
            # filesystem without atomic rename, disk full, external
            # tampering) is a cache miss, never a crash — and it is unlinked
            # so no later lookup trips over it again.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Current in-memory footprint."""
        return self._nbytes

    def stats(self) -> dict:
        """Hit/miss/size counters (for logging and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "nbytes": self._nbytes,
            "byte_budget": self.byte_budget,
            "spill_dir": str(self.spill_dir) if self.spill_dir is not None else None,
        }
