"""Shared content-digest helpers.

Content addressing shows up in three load-bearing places of the campaign
engine — the crash-safe run manifest's configuration guard, the golden
cache's spillover file names and the weight fingerprint in every golden
cache key — and is the foundation of the campaign store's run IDs.  All of
them need the same two properties:

* **stability** — the digest of equal content is identical across processes,
  python versions and dict insertion orders (mappings are serialized with
  sorted keys);
* **sensitivity** — any content change (a scenario field, a weight byte, a
  cache-key element) changes the digest.

This module is the single implementation those call sites share.  The
digests are sha1-based: they guard against *accidental* mismatches (stale
spillover, config drift between runs), not against adversaries.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: hex digits kept by the short-form digests (cache keys, run IDs,
#: fingerprints).  16 hex digits = 64 bits: collisions among the handful of
#: runs/models sharing one store or cache directory are out of reach.
SHORT_DIGEST_LENGTH = 16


def config_digest(config: Any) -> str:
    """Stable full-length digest of a JSON-serialisable configuration.

    Mappings are serialized with sorted keys, so two configurations with the
    same content but different insertion order digest identically.
    Non-JSON-serialisable leaves fall back to ``str()`` (paths, numpy
    scalars) — same convention as the run manifest this helper grew out of.
    """
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()


def key_digest(key: tuple) -> str:
    """Full-length digest of a structured cache key (its ``repr``).

    Used for filesystem names of keyed artifacts (golden-cache spillover
    files): the key tuples mix strings, ints and nested tuples, and their
    ``repr`` is deterministic for those types.
    """
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()


def bytes_digest(data: bytes, length: int = SHORT_DIGEST_LENGTH) -> str:
    """Short digest of raw bytes (e.g. a batch's image content)."""
    return hashlib.sha1(data).hexdigest()[:length]


def model_fingerprint(model: Any, length: int = SHORT_DIGEST_LENGTH) -> str:
    """Short digest of a model's weights (names + raw parameter bytes).

    The fingerprint distinguishes *states*, not just architectures: two
    equal-shaped models with different weights (or one model before/after
    head fitting) fingerprint differently, while a reconstruction with
    identical weights fingerprints identically.  Compute it while the model
    is unpatched — an active fault group would leak into the digest.

    ``model`` must provide ``named_parameters()`` yielding ``(name, param)``
    pairs whose ``param.data`` exposes ``tobytes()`` (the ``repro.nn``
    module protocol).
    """
    digest = hashlib.sha1()
    for name, param in model.named_parameters():
        digest.update(name.encode("utf-8"))
        digest.update(param.data.tobytes())
    return digest.hexdigest()[:length]
