"""Inference monitors.

``alficore`` offers monitoring capabilities that detect NaN or Inf values in
intermediate activations during a (fault-injected) inference run and allow
custom monitoring functions to be attached to the same hook points.  Detected
NaN/Inf events are what the evaluation later counts as DUE (Detected and
Uncorrectable Errors) as opposed to silent data errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.module import Module, RemovableHandle


@dataclass
class MonitorResult:
    """Summary of what the monitors observed during one inference."""

    nan_layers: list[str] = field(default_factory=list)
    inf_layers: list[str] = field(default_factory=list)
    custom_events: list[dict] = field(default_factory=list)

    @property
    def nan_detected(self) -> bool:
        """True if any monitored layer produced a NaN."""
        return len(self.nan_layers) > 0

    @property
    def inf_detected(self) -> bool:
        """True if any monitored layer produced an Inf."""
        return len(self.inf_layers) > 0

    @property
    def due_detected(self) -> bool:
        """True if the inference would be flagged as a DUE (NaN or Inf seen)."""
        return self.nan_detected or self.inf_detected

    def as_dict(self) -> dict:
        """Return a JSON-friendly summary."""
        return {
            "nan_detected": self.nan_detected,
            "inf_detected": self.inf_detected,
            "nan_layers": list(self.nan_layers),
            "inf_layers": list(self.inf_layers),
            "custom_events": list(self.custom_events),
        }


# A custom monitor gets (layer_name, output_array) and returns an event dict or None.
CustomMonitor = Callable[[str, np.ndarray], dict | None]


class InferenceMonitor:
    """Attach NaN/Inf (and custom) monitors to all or selected layers of a model.

    Usage::

        monitor = InferenceMonitor(model)
        monitor.attach()
        output = model(batch)
        result = monitor.collect()     # MonitorResult for this inference
        monitor.detach()
    """

    def __init__(
        self,
        model: Module,
        layer_names: list[str] | None = None,
        custom_monitors: list[CustomMonitor] | None = None,
    ):
        self.model = model
        self.layer_names = layer_names
        self.custom_monitors = list(custom_monitors or [])
        self._handles: list[RemovableHandle] = []
        self._current = MonitorResult()
        # Cheap gate for long-lived monitors: campaign loops keep the hooks
        # attached for the whole run and flip this flag instead of paying the
        # per-layer NaN/Inf scan on inferences they do not want monitored
        # (e.g. the golden pass).
        self.enabled = True

    def add_custom_monitor(self, monitor: CustomMonitor) -> None:
        """Register an additional custom monitoring callback."""
        self.custom_monitors.append(monitor)

    def attach(self) -> None:
        """Attach monitoring hooks to the selected layers (idempotent)."""
        if self._handles:
            return
        for name, module in self.model.named_modules():
            if not name:
                continue
            if self.layer_names is not None and name not in self.layer_names:
                continue
            if len(module._modules) > 0:
                # Only monitor leaf modules; containers just forward tensors.
                continue
            self._handles.append(module.register_forward_hook(self._make_hook(name)))

    def detach(self) -> None:
        """Remove all monitoring hooks."""
        for handle in self._handles:
            handle.remove()
        self._handles = []

    def reset(self) -> None:
        """Clear collected events (start of a new inference)."""
        self._current = MonitorResult()

    def collect(self) -> MonitorResult:
        """Return the events of the current inference and reset the collector."""
        result = self._current
        self._current = MonitorResult()
        return result

    def event_counts(self) -> tuple[int, int, int]:
        """Current ``(nan, inf, custom)`` event counts without resetting.

        Forward plans snapshot these at every segment boundary so a
        suffix-only faulty pass can inherit exactly the prefix's events.
        """
        current = self._current
        return (len(current.nan_layers), len(current.inf_layers), len(current.custom_events))

    def _make_hook(self, layer_name: str):
        def hook(module, inputs, output):
            if not self.enabled:
                return None
            if isinstance(output, (list, tuple)):
                # Detection heads return lists of Detections (boxes/scores);
                # route them through the structured NaN/Inf check so DUEs in
                # object-detection campaigns are not undercounted.
                has_nan, has_inf = output_has_nan_or_inf(output)
                if has_nan:
                    self._current.nan_layers.append(layer_name)
                if has_inf:
                    self._current.inf_layers.append(layer_name)
                return None
            values = np.asarray(output)
            if np.issubdtype(values.dtype, np.floating):
                if np.isnan(values).any():
                    self._current.nan_layers.append(layer_name)
                if np.isinf(values).any():
                    self._current.inf_layers.append(layer_name)
                for monitor in self.custom_monitors:
                    event = monitor(layer_name, values)
                    if event is not None:
                        self._current.custom_events.append(dict(event))
            return None

        # Plan executors (repro.nn.ir.module_blocked) may bypass a module
        # call only while every forward hook is transparent.  A disabled
        # monitor hook reads nothing and never alters the output, so fused
        # execution stays legal outside monitored passes.
        hook.plan_transparent = lambda: not self.enabled
        return hook

    def __enter__(self) -> "InferenceMonitor":
        self.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()


class MonitorCache:
    """Attach-once monitor registry for the stable models of clone-free sessions.

    Clone-free campaign sessions reuse stable model objects — the original
    model for weight faults, one hooked clone for neuron faults — so hooks
    only need to be attached once per campaign instead of once per fault
    group.  The cache keys monitors by model identity, hands them out with
    the per-layer scan *disabled* (golden passes must not pay for it), and
    detaches everything at campaign teardown.
    """

    def __init__(self, custom_monitors: list[CustomMonitor] | None = None):
        self.custom_monitors = list(custom_monitors or [])
        self._monitors: dict[int, InferenceMonitor] = {}

    def monitor_for(self, model: Module) -> InferenceMonitor:
        """Return the (lazily attached) monitor of a faulty model instance."""
        key = id(model)
        monitor = self._monitors.get(key)
        if monitor is None:
            monitor = InferenceMonitor(model, custom_monitors=self.custom_monitors)
            monitor.attach()
            # Disabled outside the faulty inference: for weight campaigns the
            # monitored model is also the golden model, and the golden pass
            # should not pay the per-layer NaN/Inf scan.
            monitor.enabled = False
            self._monitors[key] = monitor
        return monitor

    def detach_all(self) -> None:
        """Remove the hooks of every cached monitor and empty the cache."""
        for monitor in self._monitors.values():
            monitor.detach()
        self._monitors = {}


class RangeMonitor:
    """Custom monitor flagging activations outside a configured magnitude bound.

    This is a simple example of the "integration of custom monitoring"
    extension point described in the paper; it is also useful to observe how
    often faults push activations outside their fault-free operating range.
    """

    def __init__(self, bound: float = 1e4):
        if bound <= 0:
            raise ValueError("bound must be positive")
        self.bound = float(bound)

    def __call__(self, layer_name: str, output: np.ndarray) -> dict | None:
        finite = output[np.isfinite(output)]
        if finite.size == 0:
            return None
        peak = float(np.abs(finite).max())
        if peak > self.bound:
            return {"monitor": "range", "layer": layer_name, "peak": peak, "bound": self.bound}
        return None


def output_has_nan_or_inf(output) -> tuple[bool, bool]:
    """Check a model output (array or list of detections) for NaN / Inf values.

    Returns:
        Tuple ``(has_nan, has_inf)``.
    """
    has_nan = False
    has_inf = False
    if isinstance(output, (list, tuple)):
        for item in output:
            if hasattr(item, "boxes"):
                arrays = [np.asarray(item.boxes, dtype=np.float64), np.asarray(item.scores, dtype=np.float64)]
            else:
                arrays = [np.asarray(item, dtype=np.float64)]
            for arr in arrays:
                if arr.size == 0:
                    continue
                has_nan |= bool(np.isnan(arr).any())
                has_inf |= bool(np.isinf(arr).any())
        return has_nan, has_inf
    arr = np.asarray(output, dtype=np.float64)
    if arr.size:
        has_nan = bool(np.isnan(arr).any())
        has_inf = bool(np.isinf(arr).any())
    return has_nan, has_inf
