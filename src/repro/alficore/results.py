"""Result persistence.

A PyTorchALFI run produces up to three sets of outputs (Section V-B):

a) **meta-files** — a ``scenario.yml`` holding every run-time parameter of
   the campaign plus pointers to the model and data loader used;
b) **fault files** — binary files with the pre-generated fault locations and,
   after the run, the applied bit-flip directions and original/corrupted
   values of the targeted neurons/weights (plus monitored NaN/Inf events);
c) **model outputs** — CSV files for classification models (top-5 classes
   and probabilities together with ground truth and fault positions) and
   JSON files for object detection models (predicted boxes, scores, classes
   per image), with the fault-free ("golden") outputs stored separately.

:class:`CampaignResultWriter` bundles these writers behind one object so the
high-level test classes only have to hand over records.

Two modes are offered: the ``write_*`` methods persist a complete list of
records at once, while the ``stream_*`` methods return incremental writers
(:class:`CsvRecordStream` / :class:`JsonArrayStream`) that append one record
at a time.  The campaign engine streams per-inference records as they are
produced, so campaign memory stays bounded by the batch size instead of the
dataset size; both modes produce byte-compatible files for the readers.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

import numpy as np
import yaml

from repro.alficore.faultmatrix import FaultMatrix
from repro.alficore.scenario import ScenarioConfig


def load_fault_file(path: str | Path) -> FaultMatrix:
    """Load a binary fault file written by a previous campaign."""
    return FaultMatrix.load(path)


@dataclass
class ClassificationRecord:
    """One row of the classification result CSV."""

    image_id: int
    file_name: str
    ground_truth: int
    top5_classes: list[int]
    top5_probabilities: list[float]
    fault_positions: list[dict] = field(default_factory=list)
    nan_detected: bool = False
    inf_detected: bool = False
    model_tag: str = "corrupted"

    def as_row(self) -> dict:
        """Flatten into a CSV-writable dictionary."""
        row = {
            "image_id": self.image_id,
            "file_name": self.file_name,
            "ground_truth": self.ground_truth,
            "model_tag": self.model_tag,
            "nan_detected": int(self.nan_detected),
            "inf_detected": int(self.inf_detected),
        }
        for rank, (cls, prob) in enumerate(zip(self.top5_classes, self.top5_probabilities), start=1):
            row[f"top{rank}_class"] = int(cls)
            row[f"top{rank}_prob"] = float(prob)
        row["fault_positions"] = json.dumps(self.fault_positions, default=_json_default)
        return row


@dataclass
class DetectionRecord:
    """Per-image detection results destined for the JSON output files."""

    image_id: int
    file_name: str
    boxes: list[list[float]]
    scores: list[float]
    labels: list[int]
    fault_positions: list[dict] = field(default_factory=list)
    nan_detected: bool = False
    inf_detected: bool = False
    model_tag: str = "corrupted"

    def as_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "image_id": self.image_id,
            "file_name": self.file_name,
            "boxes": self.boxes,
            "scores": self.scores,
            "labels": self.labels,
            "fault_positions": self.fault_positions,
            "nan_detected": self.nan_detected,
            "inf_detected": self.inf_detected,
            "model_tag": self.model_tag,
        }


def _json_default(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


class CsvRecordStream:
    """Incrementally write CSV rows (one record at a time).

    The header is derived from the first record; closing without having
    written any record produces an empty file, matching
    :meth:`CampaignResultWriter.write_classification_csv` with no records.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = None
        self._writer: csv.DictWriter | None = None
        self.num_records = 0

    def write(self, record: Any) -> None:
        """Append one record (anything with ``as_row()``, or a plain dict)."""
        row = record.as_row() if hasattr(record, "as_row") else dict(record)
        if self._writer is None:
            self._handle = open(self.path, "w", newline="", encoding="utf-8")
            self._writer = csv.DictWriter(self._handle, fieldnames=list(row.keys()))
            self._writer.writeheader()
        self._writer.writerow(row)
        self.num_records += 1

    def close(self) -> None:
        """Flush and close the file (writes an empty file if no records)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        elif self.num_records == 0:
            self.path.write_text("")

    def __enter__(self) -> "CsvRecordStream":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


class JsonArrayStream:
    """Incrementally write a JSON array (one element at a time)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = None
        self.num_records = 0

    def write(self, record: Any) -> None:
        """Append one element (anything with ``as_dict()``, or JSON-able)."""
        if hasattr(record, "as_dict"):
            record = record.as_dict()
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._handle.write("[\n")
        else:
            self._handle.write(",\n")
        blob = json.dumps(_to_plain(record), indent=2, default=_json_default)
        self._handle.write(blob)
        self.num_records += 1

    def close(self) -> None:
        """Terminate the array and close the file (``[]`` if no records)."""
        if self._handle is not None:
            self._handle.write("\n]")
            self._handle.close()
            self._handle = None
        elif self.num_records == 0:
            self.path.write_text("[]")

    def __enter__(self) -> "JsonArrayStream":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


_MERGE_CHUNK_BYTES = 1 << 20


def _copy_bytes(src: IO[bytes], out: IO[bytes], remaining: int) -> None:
    while remaining > 0:
        chunk = src.read(min(_MERGE_CHUNK_BYTES, remaining))
        if not chunk:
            break
        out.write(chunk)
        remaining -= len(chunk)


def merge_csv_files(shard_paths: list[str | Path], out_path: str | Path) -> Path:
    """Concatenate shard CSVs written by :class:`CsvRecordStream`, in order.

    The header of the first non-empty shard is kept, subsequent headers are
    dropped, and empty shard files (no records) are skipped, so the merged
    file is byte-identical to one produced by a single stream writing the
    same records sequentially.  Shards are copied in bounded chunks — merge
    memory stays O(1), not O(campaign).
    """
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "wb") as out:
        wrote_any = False
        for shard_path in shard_paths:
            shard_path = Path(shard_path)
            if not shard_path.exists() or shard_path.stat().st_size == 0:
                continue
            with open(shard_path, "rb") as src:
                if wrote_any:
                    # Fixed field names: the header is exactly the first line.
                    src.readline()
                _copy_bytes(src, out, shard_path.stat().st_size)
            wrote_any = True
    return out_path


def merge_json_array_files(shard_paths: list[str | Path], out_path: str | Path) -> Path:
    """Merge shard JSON arrays written by :class:`JsonArrayStream`, in order.

    The merge is textual — element bodies are re-joined with the stream's own
    separators — so the result is byte-identical to a single stream having
    written all records sequentially.  Empty shard arrays are skipped and
    shards are copied in bounded chunks (O(1) merge memory).
    """
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "wb") as out:
        wrote_any = False
        for shard_path in shard_paths:
            shard_path = Path(shard_path)
            if not shard_path.exists():
                continue
            size = shard_path.stat().st_size
            if size <= 2:  # "" or "[]": no records
                continue
            with open(shard_path, "rb") as src:
                if src.read(2) != b"[\n":
                    raise ValueError(f"{shard_path} is not a JsonArrayStream output")
                src.seek(-2, 2)
                if src.read(2) != b"\n]":
                    raise ValueError(f"{shard_path} is not a JsonArrayStream output")
                src.seek(2)
                out.write(b",\n" if wrote_any else b"[\n")
                _copy_bytes(src, out, size - 4)
            wrote_any = True
        out.write(b"\n]" if wrote_any else b"[]")
    return out_path


class CampaignResultWriter:
    """Write the meta / fault / output files of one fault injection campaign.

    Args:
        output_dir: directory all files of the campaign are written into.
        campaign_name: prefix used for all file names.
    """

    def __init__(self, output_dir: str | Path, campaign_name: str = "campaign") -> None:
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.campaign_name = campaign_name

    # ------------------------------------------------------------------ #
    # a) meta-files
    # ------------------------------------------------------------------ #
    def write_meta(self, scenario: ScenarioConfig, extra: dict | None = None) -> Path:
        """Write the ``scenario.yml`` meta file (all run-time parameters)."""
        path = self.output_dir / f"{self.campaign_name}_scenario.yml"
        document = {
            "scenario": scenario.as_dict(),
            "campaign_name": self.campaign_name,
        }
        if extra:
            document["run_info"] = _to_plain(extra)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("# PyTorchALFI campaign meta file\n")
            yaml.safe_dump(document, handle, default_flow_style=False, sort_keys=True)
        return path

    # ------------------------------------------------------------------ #
    # b) fault files
    # ------------------------------------------------------------------ #
    def write_fault_matrix(self, matrix: FaultMatrix) -> Path:
        """Persist the pre-generated fault matrix (binary, reusable)."""
        path = self.output_dir / f"{self.campaign_name}_faults.npz"
        return matrix.save(path)

    def write_applied_faults(self, applied: list[dict]) -> Path:
        """Persist the applied-fault log (original/corrupted values, directions)."""
        path = self.output_dir / f"{self.campaign_name}_applied_faults.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(applied, handle, indent=2, default=_json_default)
        return path

    # ------------------------------------------------------------------ #
    # c) model outputs
    # ------------------------------------------------------------------ #
    def write_classification_csv(
        self,
        records: list[ClassificationRecord],
        tag: str = "corrupted",
    ) -> Path:
        """Write classification outputs (top-5 + fault positions) as CSV."""
        path = self.output_dir / f"{self.campaign_name}_{tag}_results.csv"
        if not records:
            path.write_text("")
            return path
        rows = [record.as_row() for record in records]
        fieldnames = list(rows[0].keys())
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return path

    def write_detection_json(
        self,
        records: list[DetectionRecord],
        tag: str = "corrupted",
    ) -> Path:
        """Write per-image detection outputs as a JSON file."""
        path = self.output_dir / f"{self.campaign_name}_{tag}_results.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump([record.as_dict() for record in records], handle, indent=2, default=_json_default)
        return path

    def write_ground_truth_json(self, targets: list[dict]) -> Path:
        """Write the detection ground-truth annotations (CoCo-style)."""
        path = self.output_dir / f"{self.campaign_name}_ground_truth.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_to_plain(targets), handle, indent=2, default=_json_default)
        return path

    def write_kpi_summary(self, kpis: dict, tag: str = "summary") -> Path:
        """Write the computed KPIs (SDE/DUE rates, accuracy, mAP...) as JSON."""
        path = self.output_dir / f"{self.campaign_name}_{tag}_kpis.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_to_plain(kpis), handle, indent=2, default=_json_default)
        return path

    # ------------------------------------------------------------------ #
    # streaming writers (campaign engine)
    # ------------------------------------------------------------------ #
    def stream_classification(self, tag: str = "corrupted") -> CsvRecordStream:
        """Return an incremental writer for per-inference classification rows."""
        return CsvRecordStream(self.output_dir / f"{self.campaign_name}_{tag}_results.csv")

    def stream_detection(self, tag: str = "corrupted") -> JsonArrayStream:
        """Return an incremental writer for per-image detection records."""
        return JsonArrayStream(self.output_dir / f"{self.campaign_name}_{tag}_results.json")

    def stream_applied_faults(self) -> JsonArrayStream:
        """Return an incremental writer for the applied-fault log."""
        return JsonArrayStream(self.output_dir / f"{self.campaign_name}_applied_faults.json")

    # ------------------------------------------------------------------ #
    # readers (for analysis / tests)
    # ------------------------------------------------------------------ #
    def read_classification_csv(self, tag: str = "corrupted") -> list[dict]:
        """Read back a classification result CSV as a list of dictionaries."""
        path = self.output_dir / f"{self.campaign_name}_{tag}_results.csv"
        if not path.exists():
            raise FileNotFoundError(f"no classification results for tag {tag!r} at {path}")
        with open(path, newline="", encoding="utf-8") as handle:
            return list(csv.DictReader(handle))

    def read_detection_json(self, tag: str = "corrupted") -> list[dict]:
        """Read back a detection result JSON file."""
        path = self.output_dir / f"{self.campaign_name}_{tag}_results.json"
        if not path.exists():
            raise FileNotFoundError(f"no detection results for tag {tag!r} at {path}")
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)


def _to_plain(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and Paths into plain Python."""
    if isinstance(value, dict):
        return {key: _to_plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_plain(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, Path):
        return str(value)
    return value
