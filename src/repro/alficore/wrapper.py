"""``ptfiwrap`` — the low-level integration wrapper.

This is the object the paper's Listing 1 revolves around.  The clone-free
campaign flow drives golden and corrupted inference through *fault group
sessions* — the original model is patched in place per group and restored
bit-exactly afterwards, so no model copy is ever made::

    from repro.alficore import ptfiwrap

    wrapper = ptfiwrap(model=net)
    group_iter = wrapper.get_fault_group_iter()
    for epoch in range(num_runs):
        for image, label in dataset:
            golden = net(image)              # net is fault-free here
            with next(group_iter) as group:
                corrupted = group.model(image)
            # net is bit-exactly restored; group.applied_faults has the log

For weight faults ``group.model`` *is* the original model with the group's
corruptions patched in place (restored on exit); for neuron faults it is one
reusable hooked clone whose active fault group is swapped per step.  The
higher-level :class:`~repro.alficore.campaign.CampaignRunner` wraps this
loop, adds monitoring/outcome classification and streams result records to
disk.  The legacy ``get_fimodel_iter()`` (a fresh corrupted *copy* of the
model per group, Listing 1 of the paper) remains available.

The wrapper loads the scenario configuration (``scenarios/default.yml`` by
default), profiles the model, pre-generates the complete fault matrix for
the campaign, and exposes the iterators above.  ``get_scenario()`` /
``set_scenario()`` allow iterative experiments (layer sweeps, fault count
sweeps, switching between neuron and weight injection) without manual
reconfiguration: setting a new scenario re-generates the fault matrix.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.alficore.faultmatrix import FaultMatrix, FaultMatrixGenerator
from repro.alficore.policies import faults_required
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario
from repro.nn.module import Module
from repro.pytorchfi.core import (
    FaultInjection,
    NeuronFaultGroup,
    NeuronInjectionSession,
    WeightPatchSession,
)
from repro.pytorchfi.errormodels import (
    BitFlipErrorModel,
    ErrorModel,
    RandomValueErrorModel,
    StuckAtErrorModel,
)

DEFAULT_SCENARIO_LOCATION = Path("scenarios") / "default.yml"


def _error_model_from_scenario(scenario: ScenarioConfig) -> ErrorModel:
    """Build the value-corruption error model the scenario asks for.

    Transient faults are modelled as bit flips (or random value replacement),
    permanent faults as stuck-at faults: a permanently faulty cell always
    reads the stuck value, regardless of what the original bit was.
    """
    if scenario.rnd_value_type == "stuck_at" or (
        scenario.fault_persistence == "permanent" and scenario.rnd_value_type == "bitflip"
    ):
        return StuckAtErrorModel(
            bit_position=scenario.rnd_bit_range[1],
            stuck_value=scenario.stuck_at_value,
            dtype=scenario.quantization,
        )
    if scenario.rnd_value_type == "bitflip":
        return BitFlipErrorModel(bit_range=scenario.rnd_bit_range, dtype=scenario.quantization)
    return RandomValueErrorModel(
        min_value=scenario.rnd_value_min, max_value=scenario.rnd_value_max
    )


class ptfiwrap:
    """Wrap a trained model for large-scale fault injection.

    Args:
        model: the fault-free baseline model (never modified in place).
        scenario: an explicit :class:`ScenarioConfig`.  If omitted, the
            wrapper looks for ``scenarios/default.yml`` below ``config_dir``
            (or the current working directory) and otherwise falls back to
            the built-in defaults.
        input_shape: per-sample input shape used to profile activation shapes.
        config_dir: directory in which to look for ``scenarios/default.yml``.
        rng: optional random generator; defaults to one seeded from the
            scenario's ``random_seed``.
    """

    def __init__(
        self,
        model: Module,
        scenario: ScenarioConfig | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        config_dir: str | Path | None = None,
        rng: np.random.Generator | None = None,
        fault_matrix: FaultMatrix | None = None,
    ):
        self.model = model
        self.input_shape = tuple(input_shape)
        self._scenario = scenario if scenario is not None else self._load_default_scenario(config_dir)
        self._rng = rng if rng is not None else np.random.default_rng(self._scenario.random_seed)
        self._fi: FaultInjection | None = None
        self._fault_matrix: FaultMatrix | None = None
        self._initial_matrix = fault_matrix
        self._cursor = 0
        self._rebuild()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _load_default_scenario(config_dir: str | Path | None) -> ScenarioConfig:
        base = Path(config_dir) if config_dir is not None else Path.cwd()
        candidate = base / DEFAULT_SCENARIO_LOCATION
        if candidate.exists():
            return load_scenario(candidate)
        return default_scenario()

    def _rebuild(self) -> None:
        """(Re-)profile the model and regenerate the fault matrix."""
        self._fi = FaultInjection(
            self.model,
            batch_size=self._scenario.batch_size,
            input_shape=self.input_shape,
            layer_types=self._scenario.layer_types,
        )
        if self._initial_matrix is not None:
            # A pre-built matrix (e.g. handed to a shard worker) replaces the
            # generation step exactly once; scenario changes regenerate.
            matrix, self._initial_matrix = self._initial_matrix, None
            self._fault_matrix = None
            self.set_fault_matrix(matrix)
            return
        if self._scenario.fault_file:
            self._fault_matrix = FaultMatrix.load(self._scenario.fault_file)
            if self._fault_matrix.injection_target != self._scenario.injection_target:
                raise ValueError(
                    "loaded fault file targets "
                    f"{self._fault_matrix.injection_target!r} but the scenario asks for "
                    f"{self._scenario.injection_target!r}"
                )
        else:
            generator = FaultMatrixGenerator(self._fi, self._scenario, rng=self._rng)
            self._fault_matrix = generator.generate(faults_required(self._scenario))
        self._cursor = 0

    # ------------------------------------------------------------------ #
    # scenario access (Section V-D: iterate through a model)
    # ------------------------------------------------------------------ #
    def get_scenario(self) -> ScenarioConfig:
        """Return a copy of the current scenario configuration."""
        return self._scenario.copy()

    def set_scenario(self, scenario: ScenarioConfig) -> None:
        """Replace the scenario and regenerate the fault set for it."""
        scenario.validate()
        self._scenario = scenario
        self._rebuild()

    def update_scenario(self, **overrides) -> None:
        """Convenience wrapper around :meth:`set_scenario` with field overrides."""
        self.set_scenario(self._scenario.copy(**overrides))

    # ------------------------------------------------------------------ #
    # fault matrix access
    # ------------------------------------------------------------------ #
    @property
    def fault_injection(self) -> FaultInjection:
        """The underlying profiled injector core."""
        assert self._fi is not None
        return self._fi

    def get_fault_matrix(self) -> FaultMatrix:
        """Return the pre-generated fault matrix of the current campaign."""
        assert self._fault_matrix is not None
        return self._fault_matrix

    def set_fault_matrix(self, matrix: FaultMatrix) -> None:
        """Replace the fault matrix (e.g. one loaded from a previous run)."""
        if matrix.injection_target != self._scenario.injection_target:
            raise ValueError(
                f"fault matrix targets {matrix.injection_target!r} but the scenario asks for "
                f"{self._scenario.injection_target!r}"
            )
        self._fault_matrix = matrix
        self._cursor = 0

    def save_fault_matrix(self, path: str | Path) -> Path:
        """Persist the fault matrix for reuse in later experiments."""
        return self.get_fault_matrix().save(path)

    @property
    def applied_faults(self) -> list:
        """Log of every corruption applied so far (original/corrupted values)."""
        return list(self.fault_injection.applied_faults)

    def num_fault_groups(self) -> int:
        """Number of fault groups (i.e. faulty models) the matrix provides.

        When a loaded fault file's ``num_faults`` is not a multiple of
        ``max_faults_per_image`` the trailing columns form a final *partial*
        group: it is counted (and yielded) rather than silently dropped.
        """
        group_size = self._scenario.max_faults_per_image
        return -(-self.get_fault_matrix().num_faults // group_size)

    def _group_columns(self, group_index: int) -> list[int]:
        """Fault-matrix columns of one group, clipped to the matrix width."""
        group_size = self._scenario.max_faults_per_image
        num_faults = self.get_fault_matrix().num_faults
        start = group_index * group_size
        columns = list(range(start, min(start + group_size, num_faults)))
        if len(columns) < group_size:
            warnings.warn(
                f"fault group {group_index} is partial: the fault matrix provides "
                f"{num_faults} faults, which is not a multiple of "
                f"max_faults_per_image={group_size}; applying the remaining "
                f"{len(columns)} fault(s)",
                RuntimeWarning,
                stacklevel=3,
            )
        return columns

    # ------------------------------------------------------------------ #
    # the faulty-model iterator (Listing 1)
    # ------------------------------------------------------------------ #
    def get_fimodel_iter(
        self,
        error_model: ErrorModel | None = None,
        cycle: bool = False,
    ) -> Iterator[Module]:
        """Return an iterator over fault-injected model instances.

        Each ``next()`` call consumes the next ``max_faults_per_image`` fault
        columns and returns a fresh corrupted copy of the original model.  The
        iterator is exhausted after :meth:`num_fault_groups` calls unless
        ``cycle`` is true.

        Args:
            error_model: overrides the error model derived from the scenario.
            cycle: restart from the first fault group after the last one.
        """
        model_for_faults = error_model if error_model is not None else _error_model_from_scenario(self._scenario)
        return self._model_generator(model_for_faults, cycle)

    def _model_generator(self, error_model: ErrorModel, cycle: bool) -> Iterator[Module]:
        while True:
            if self._cursor >= self.num_fault_groups():
                if not cycle:
                    return
                self._cursor = 0
            columns = self._group_columns(self._cursor)
            self._cursor += 1
            yield self._corrupt_with_columns(columns, error_model)

    # ------------------------------------------------------------------ #
    # the clone-free fault-group iterator (campaign engine)
    # ------------------------------------------------------------------ #
    def get_fault_group_iter(
        self,
        error_model: ErrorModel | None = None,
        cycle: bool = False,
        start: int | None = None,
        stop: int | None = None,
    ) -> Iterator[WeightPatchSession | NeuronFaultGroup]:
        """Return an iterator over clone-free fault group sessions.

        Each ``next()`` call consumes the next group of fault columns and
        returns a context manager with a uniform protocol: ``group.model`` is
        the faulty model while the context is entered, and
        ``group.applied_faults`` holds the group's :class:`AppliedFault`
        records afterwards.  For weight faults the original model is patched
        in place and restored bit-exactly on exit; for neuron faults a single
        hooked clone is reused and only the active fault group is swapped.

        Args:
            error_model: overrides the error model derived from the scenario.
            cycle: restart from the first fault group after the last one.
            start: first fault group to yield.  When given, the iterator is
                *shard-scoped*: it walks the explicit range ``[start, stop)``
                with a local cursor and leaves the wrapper's shared cursor
                untouched, so parallel campaign shards can each consume their
                own contiguous slice of the same fault matrix.
            stop: end of the shard-scoped range (exclusive; clipped to the
                number of fault groups).  Only valid together with ``start``.
        """
        error_model = error_model if error_model is not None else _error_model_from_scenario(self._scenario)
        if start is None and stop is None:
            return self._session_generator(error_model, cycle)
        if start is None or start < 0:
            raise ValueError(f"shard-scoped iteration needs a non-negative start, got {start}")
        if cycle:
            raise ValueError("cycle is not supported for shard-scoped fault group ranges")
        stop = self.num_fault_groups() if stop is None else min(stop, self.num_fault_groups())
        return self._ranged_session_generator(error_model, start, stop)

    def _session_generator(
        self, error_model: ErrorModel, cycle: bool
    ) -> Iterator[WeightPatchSession | NeuronFaultGroup]:
        neuron_session: NeuronInjectionSession | None = None
        try:
            while True:
                if self._cursor >= self.num_fault_groups():
                    if not cycle:
                        return
                    self._cursor = 0
                group_index = self._cursor
                self._cursor += 1
                neuron_session, group = self._group_session(group_index, error_model, neuron_session)
                yield group
        finally:
            if neuron_session is not None:
                neuron_session.close()

    def _ranged_session_generator(
        self, error_model: ErrorModel, start: int, stop: int
    ) -> Iterator[WeightPatchSession | NeuronFaultGroup]:
        neuron_session: NeuronInjectionSession | None = None
        try:
            for group_index in range(start, stop):
                neuron_session, group = self._group_session(group_index, error_model, neuron_session)
                yield group
        finally:
            if neuron_session is not None:
                neuron_session.close()

    def _group_rng(self, group_index: int) -> np.random.Generator:
        """Per-group injection rng, derived from ``(random_seed, group_index)``.

        The built-in error models replay values pre-drawn in the fault
        matrix, but a *custom* error model may draw from the rng at apply
        time.  Deriving the stream per group (instead of consuming one
        shared stream in iteration order) makes every group's corruption
        independent of which groups ran before it — which is what lets a
        sharded campaign reproduce a serial run bit-exactly for any error
        model.
        """
        return np.random.default_rng((abs(int(self._scenario.random_seed)), group_index))

    def _group_session(
        self,
        group_index: int,
        error_model: ErrorModel,
        neuron_session: NeuronInjectionSession | None,
    ) -> tuple[NeuronInjectionSession | None, WeightPatchSession | NeuronFaultGroup]:
        """Build the clone-free session of one group, reusing the neuron clone."""
        columns = self._group_columns(group_index)
        matrix = self.get_fault_matrix()
        if self._scenario.injection_target == "neurons":
            if neuron_session is None:
                neuron_session = self.fault_injection.neuron_injection_session(
                    error_model=error_model, rng=self._rng
                )
            return neuron_session, neuron_session.activate(
                matrix.to_neuron_faults(columns), rng=self._group_rng(group_index)
            )
        return neuron_session, self.fault_injection.weight_patch_session(
            matrix.to_weight_faults(columns),
            error_model=error_model,
            rng=self._group_rng(group_index),
        )

    def fault_group_session(
        self,
        group_index: int,
        error_model: ErrorModel | None = None,
    ) -> WeightPatchSession | NeuronFaultGroup:
        """Return the clone-free session for an explicit fault group.

        Like :meth:`corrupted_model_for_group` this does not advance the
        internal cursor, making it convenient for replaying one group (e.g.
        against a hardened model).  For neuron faults a dedicated hooked
        clone is created per call; sequential campaigns should prefer
        :meth:`get_fault_group_iter`, which reuses one.
        """
        total_groups = self.num_fault_groups()
        if not 0 <= group_index < total_groups:
            raise IndexError(f"group index {group_index} out of range (0..{total_groups - 1})")
        error_model = error_model if error_model is not None else _error_model_from_scenario(self._scenario)
        columns = self._group_columns(group_index)
        matrix = self.get_fault_matrix()
        if self._scenario.injection_target == "neurons":
            session = self.fault_injection.neuron_injection_session(
                error_model=error_model, rng=self._rng
            )
            return session.activate(
                matrix.to_neuron_faults(columns), rng=self._group_rng(group_index)
            )
        return self.fault_injection.weight_patch_session(
            matrix.to_weight_faults(columns),
            error_model=error_model,
            rng=self._group_rng(group_index),
        )

    def _corrupt_with_columns(self, columns: list[int], error_model: ErrorModel) -> Module:
        matrix = self.get_fault_matrix()
        if self._scenario.injection_target == "neurons":
            faults = matrix.to_neuron_faults(columns)
            return self.fault_injection.declare_neuron_fault_injection(
                faults, error_model=error_model, rng=self._rng
            )
        faults = matrix.to_weight_faults(columns)
        return self.fault_injection.declare_weight_fault_injection(
            faults, error_model=error_model, rng=self._rng
        )

    def corrupted_model_for_group(
        self,
        group_index: int,
        error_model: ErrorModel | None = None,
    ) -> Module:
        """Return the corrupted model for an explicit fault group (repeatable).

        Unlike the iterator this does not advance the internal cursor, which
        makes it convenient for replaying a specific fault group against a
        hardened model or for debugging a single fault location.
        """
        total_groups = self.num_fault_groups()
        if not 0 <= group_index < total_groups:
            raise IndexError(f"group index {group_index} out of range (0..{total_groups - 1})")
        error_model = error_model if error_model is not None else _error_model_from_scenario(self._scenario)
        return self._corrupt_with_columns(self._group_columns(group_index), error_model)

    def reset_iterator(self) -> None:
        """Rewind the faulty-model iterator to the first fault group."""
        self._cursor = 0
