"""Fault-tolerant shard execution: supervision, retries and crash-safe resume.

The fault-injection campaigns this repo reproduces run for hours, yet until
this module existed a single OOM-killed, crashed or hung worker aborted the
whole run with an opaque pool exception and nothing resumable on disk.  The
layer below fixes that with two cooperating pieces:

* :class:`ShardSupervisor` — supervised dispatch replacing the bare
  ``pool.map``.  Every shard attempt runs in its own ``multiprocessing``
  process whose result (or pickled traceback) comes back through an
  atomically-written scratch file, so the parent can tell the three failure
  modes apart: the worker *raised* (error file present), *died* (killed by a
  signal or exited without reporting) or *timed out* (exceeded the per-shard
  wall-clock deadline and was killed by the supervisor).  Failed shards are
  re-queued by their deterministic ``(start, stop)`` step range with capped
  exponential backoff until a configurable retry budget is exhausted; a shard
  that repeatedly fails *by raising* degrades gracefully to one in-process
  attempt (a shard that hangs or gets killed is never pulled in-process — it
  would take the parent down with it).  Permanent failures surface as a
  structured :class:`ShardError` carrying the shard index, step range,
  attempt count and the worker traceback.

* :class:`RunManifest` — a crash-safe record of which shard ranges of a
  campaign have completed.  Updates are fsync'd atomic-replace writes of a
  small JSON document, so the manifest is never observed half-written even
  across a power loss.  Combined with atomically-renamed per-shard output
  directories this gives ``resume=True``: a re-run skips completed shards and
  merges byte-identically to an uninterrupted run, which is sound because
  every shard's work is a pure function of its step range (the fault matrix
  is pre-drawn and the loader's epoch permutations depend only on
  ``(seed, epoch)``).

Retry correctness rests on the same determinism argument: a re-executed
shard replays exactly the inferences of its step range, so a campaign that
needed retries is byte-identical to one that did not.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import multiprocessing

from repro.alficore.digests import config_digest

MANIFEST_SCHEMA_VERSION = 1

#: failure taxonomy of one shard attempt
KIND_RAISED = "raised"  # worker raised a Python exception (traceback known)
KIND_DIED = "died"  # worker vanished: signal-killed / exited without result
KIND_TIMEOUT = "timeout"  # worker exceeded the wall-clock deadline, was killed


# --------------------------------------------------------------------------- #
# structured failure
# --------------------------------------------------------------------------- #
class ShardError(RuntimeError):
    """A campaign shard failed permanently (its retry budget is exhausted).

    Carries everything a caller needs to reason about (or re-run) the lost
    work: the shard ``index``, its deterministic ``[start, stop)`` step
    range, the number of ``attempts`` made, the failure ``kind`` (one of
    ``"raised"``, ``"died"``, ``"timeout"``) and ``cause`` — the worker's
    full traceback text when the shard raised, or a description of how the
    worker was lost otherwise.
    """

    def __init__(
        self,
        index: int,
        start: int,
        stop: int,
        attempts: int,
        kind: str,
        cause: str = "",
    ) -> None:
        self.index = index
        self.start = start
        self.stop = stop
        self.attempts = attempts
        self.kind = kind
        self.cause = cause
        detail = cause.strip().splitlines()[-1] if cause.strip() else kind
        super().__init__(
            f"shard {index} (steps [{start}, {stop})) failed permanently "
            f"after {attempts} attempt(s) [{kind}]: {detail}"
        )


# --------------------------------------------------------------------------- #
# execution policy
# --------------------------------------------------------------------------- #
@dataclass
class ExecutionPolicy:
    """Knobs of the supervised executor (retry budget, timeout, resume).

    Args:
        retries: extra attempts per shard after the first one fails.
        shard_timeout: per-shard wall-clock deadline in seconds; a shard
            still running past it is killed and counted as a ``"timeout"``
            failure.  ``None`` disables the deadline.  Only enforced for
            subprocess execution — an in-process shard cannot be killed.
        backoff: base re-queue delay in seconds; attempt ``k`` waits
            ``min(backoff * 2**(k-1), backoff_cap)`` before re-running.
        backoff_cap: upper bound on the exponential backoff delay.
        resume: skip shards recorded as completed in the run manifest and
            merge them from their persisted on-disk outputs.
        in_process_fallback: after the retry budget is exhausted by *raised*
            failures, make one last in-process attempt (never applied to
            died/timed-out shards, which could take the parent down).
    """

    retries: int = 2
    shard_timeout: float | None = None
    backoff: float = 0.5
    backoff_cap: float = 30.0
    resume: bool = False
    in_process_fallback: bool = True
    poll_interval: float = 0.02

    def validate(self) -> None:
        """Raise ``ValueError`` for out-of-range settings."""
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be positive, got {self.shard_timeout}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")

    def backoff_delay(self, attempt: int) -> float:
        """Capped exponential re-queue delay after failed attempt ``attempt``."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * (2 ** (attempt - 1)), self.backoff_cap)


# --------------------------------------------------------------------------- #
# atomic file helpers
# --------------------------------------------------------------------------- #
def _fsync_directory(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # e.g. platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_replace_json(path: str | Path, document: Any) -> Path:
    """Write ``document`` as JSON via fsync'd write-temp-then-rename.

    Readers either see the previous complete file or the new complete file,
    never a partial write — even across a crash or power loss (the file is
    fsync'd before the rename and the directory entry after it).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def atomic_write_pickle(path: str | Path, payload: Any) -> Path:
    """Pickle ``payload`` via fsync'd write-temp-then-rename (crash-safe)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


_LOAD_FAILED = object()


def _read_pickle(path: Path) -> Any:
    """Load a pickle, returning the ``_LOAD_FAILED`` sentinel on any error."""
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except Exception:
        return _LOAD_FAILED


# --------------------------------------------------------------------------- #
# run manifest
# --------------------------------------------------------------------------- #
def manifest_config_digest(config: dict) -> str:
    """Stable digest of a campaign configuration (guards cross-run resume)."""
    return config_digest(config)


class RunManifest:
    """Crash-safe record of completed/pending shard ranges of one campaign.

    The manifest is a small JSON document under the campaign output
    directory.  Every update is an fsync'd atomic replace
    (:func:`atomic_replace_json`), so after a crash the manifest reflects a
    consistent prefix of the completed shards and ``resume=True`` re-runs
    exactly the pending ranges.  A digest of the campaign configuration
    (scenario, shard geometry — *not* the execution policy) is stored so a
    manifest is never silently reused for a different campaign.
    """

    def __init__(
        self,
        path: str | Path,
        config: dict,
        completed: dict[int, dict] | None = None,
    ) -> None:
        self.path = Path(path)
        self.config = config
        self.digest = manifest_config_digest(config)
        self.completed: dict[int, dict] = dict(completed or {})

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def fresh(cls, path: str | Path, config: dict) -> "RunManifest":
        """Create a new manifest (no completed shards) and persist it."""
        manifest = cls(path, config)
        manifest.save()
        return manifest

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest | None":
        """Load a manifest from disk; ``None`` if missing or unreadable."""
        path = Path(path)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            config = document["config"]
            completed = {
                int(index): dict(entry)
                for index, entry in document.get("completed", {}).items()
            }
            manifest = cls(path, config, completed)
            if document.get("config_digest") != manifest.digest:
                return None  # tampered or torn write: not trustworthy
            return manifest
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------ #
    # queries and updates
    # ------------------------------------------------------------------ #
    def matches(self, config: dict) -> bool:
        """Whether this manifest was written for configuration ``config``."""
        return self.digest == manifest_config_digest(config)

    def completed_indices(self) -> list[int]:
        """Sorted indices of the shards recorded as completed."""
        return sorted(self.completed)

    def is_completed(self, index: int) -> bool:
        """True if ``shard_id`` is recorded as completed."""
        return index in self.completed

    def mark_completed(self, index: int, start: int, stop: int) -> None:
        """Record shard ``index`` (steps ``[start, stop)``) as done; persist."""
        self.completed[index] = {"start": start, "stop": stop}
        self.save()

    def mark_pending(self, index: int) -> None:
        """Drop shard ``index`` from the completed set (re-run it); persist."""
        if index in self.completed:
            del self.completed[index]
            self.save()

    def save(self) -> None:
        """Persist the manifest via an fsync'd atomic replace."""
        atomic_replace_json(
            self.path,
            {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "config_digest": self.digest,
                "config": self.config,
                "completed": {
                    str(index): entry for index, entry in sorted(self.completed.items())
                },
            },
        )


# --------------------------------------------------------------------------- #
# subprocess plumbing
# --------------------------------------------------------------------------- #
def _subprocess_entry(
    execute: Callable[[Any], Any],
    job: Any,
    result_path: str,
    error_path: str,
) -> None:
    """Child-process entry point: run the shard, report through scratch files.

    The result (or the formatted traceback) is written with an atomic
    temp-then-rename, so the parent never reads a half-written report — a
    worker killed mid-write simply leaves no report at all, which the parent
    classifies as ``"died"``.
    """
    try:
        result = execute(job)
    except BaseException:
        atomic_write_pickle(error_path, {"traceback": traceback.format_exc()})
        raise SystemExit(1)
    atomic_write_pickle(result_path, result)


def _kill_process(process: "multiprocessing.process.BaseProcess") -> None:
    """Terminate a worker, escalating to SIGKILL if it ignores SIGTERM."""
    if not process.is_alive():
        return
    process.terminate()
    process.join(0.5)
    if process.is_alive():
        process.kill()
        process.join()


@dataclass
class _Attempt:
    """One queued (re-)execution of a shard."""

    job: Any
    attempt: int  # 1-based
    ready_at: float  # monotonic time the attempt may start (backoff)


@dataclass
class _Running:
    """Book-keeping of one in-flight worker process."""

    process: Any
    attempt: _Attempt
    deadline: float | None
    result_path: Path
    error_path: Path


# --------------------------------------------------------------------------- #
# the supervisor
# --------------------------------------------------------------------------- #
class ShardSupervisor:
    """Supervised shard execution with retry, timeout and backoff.

    Jobs only need ``index`` / ``start`` / ``stop`` attributes and must be
    picklable (they are shipped to worker processes); ``execute`` must be a
    picklable callable (a module-level function) returning the shard result.

    Args:
        jobs: the shard jobs to run (any order; results come back sorted by
            ``job.index``).
        execute: ``execute(job) -> result``, run in a worker process (or
            in-process via :meth:`run_serial`).
        workers: maximum number of concurrently running worker processes.
        policy: retry/timeout/backoff configuration.
        mp_context: ``multiprocessing`` context (defaults to fork when
            available, else spawn).
        scratch_dir: directory for the per-attempt result/error scratch
            files; a private temporary directory is used (and cleaned up)
            when omitted.
        prepare: optional parent-side hook ``prepare(job, attempt)`` called
            before every attempt — the place to clear a previous attempt's
            partial output.
        finalize: optional parent-side hook ``finalize(job, result) ->
            result`` called once per shard on success — the place to commit
            the shard's output atomically and update the run manifest.  Runs
            in the parent, so closures over unpicklable state are fine.
    """

    def __init__(
        self,
        jobs: list[Any],
        execute: Callable[[Any], Any],
        *,
        workers: int = 2,
        policy: ExecutionPolicy | None = None,
        mp_context: Any | None = None,
        scratch_dir: str | Path | None = None,
        prepare: Callable[[Any, int], None] | None = None,
        finalize: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        self.jobs = list(jobs)
        self.execute = execute
        self.workers = max(1, int(workers))
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.policy.validate()
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self.mp_context = mp_context
        self._scratch_dir = Path(scratch_dir) if scratch_dir is not None else None
        self.prepare = prepare
        self.finalize = finalize
        #: per-shard failure history: index -> [{"attempt", "kind"}, ...]
        self.attempt_log: dict[int, list[dict]] = {}

    # ------------------------------------------------------------------ #
    # serial (in-process) execution
    # ------------------------------------------------------------------ #
    def run_serial(self) -> list[Any]:
        """Run all jobs in-process, sequentially, with the same retry budget.

        No subprocesses and no pickling — but also no timeout enforcement
        (an in-process shard cannot be killed).  Failures are Python
        exceptions only; a shard that exhausts its budget raises
        :class:`ShardError` exactly like the parallel path.
        """
        results = []
        for job in sorted(self.jobs, key=lambda j: j.index):
            results.append(self._run_in_process(job, first_attempt=1, backoff=True))
        return results

    def _run_in_process(self, job: Any, first_attempt: int, backoff: bool) -> Any:
        budget = self.policy.retries + 1
        attempt = first_attempt
        while True:
            if self.prepare is not None:
                self.prepare(job, attempt)
            try:
                result = self.execute(job)
            except Exception as exc:
                self._log_failure(job.index, attempt, KIND_RAISED)
                if attempt >= budget:
                    raise ShardError(
                        job.index, job.start, job.stop, attempt, KIND_RAISED,
                        traceback.format_exc(),
                    ) from exc
                if backoff:
                    time.sleep(self.policy.backoff_delay(attempt))
                attempt += 1
            else:
                return self._finish(job, result)

    # ------------------------------------------------------------------ #
    # supervised parallel execution
    # ------------------------------------------------------------------ #
    def run(self) -> list[Any]:
        """Run all jobs in supervised worker processes; results by index."""
        if not self.jobs:
            return []
        scratch = self._scratch_dir
        owns_scratch = scratch is None
        if owns_scratch:
            scratch = Path(tempfile.mkdtemp(prefix="shard_supervisor_"))
        else:
            scratch.mkdir(parents=True, exist_ok=True)
        results: dict[int, Any] = {}
        pending: list[_Attempt] = [_Attempt(job, 1, 0.0) for job in self.jobs]
        running: dict[int, _Running] = {}
        try:
            while pending or running:
                self._launch_ready(pending, running, scratch)
                progressed = self._poll(pending, running, results)
                if not progressed and (pending or running):
                    time.sleep(self.policy.poll_interval)
        finally:
            for record in running.values():
                _kill_process(record.process)
            if owns_scratch:
                shutil.rmtree(scratch, ignore_errors=True)
        return [results[job.index] for job in sorted(self.jobs, key=lambda j: j.index)]

    # ------------------------------------------------------------------ #
    # scheduler internals
    # ------------------------------------------------------------------ #
    def _launch_ready(
        self,
        pending: list[_Attempt],
        running: dict[int, _Running],
        scratch: Path,
    ) -> None:
        now = time.monotonic()
        ready = [att for att in pending if att.ready_at <= now]
        for att in ready:
            if len(running) >= self.workers:
                break
            pending.remove(att)
            job = att.job
            if self.prepare is not None:
                self.prepare(job, att.attempt)
            token = f"{job.index:04d}_{att.attempt}"
            result_path = scratch / f"result_{token}.pkl"
            error_path = scratch / f"error_{token}.pkl"
            for path in (result_path, error_path):
                if path.exists():
                    path.unlink()
            process = self.mp_context.Process(
                target=_subprocess_entry,
                args=(self.execute, job, str(result_path), str(error_path)),
                daemon=True,
            )
            process.start()
            deadline = (
                time.monotonic() + self.policy.shard_timeout
                if self.policy.shard_timeout is not None
                else None
            )
            running[job.index] = _Running(process, att, deadline, result_path, error_path)

    def _poll(
        self,
        pending: list[_Attempt],
        running: dict[int, _Running],
        results: dict[int, Any],
    ) -> bool:
        progressed = False
        for index, record in list(running.items()):
            process = record.process
            if process.is_alive():
                if record.deadline is not None and time.monotonic() >= record.deadline:
                    _kill_process(process)
                    del running[index]
                    progressed = True
                    self._handle_failure(
                        pending, results, record, KIND_TIMEOUT,
                        f"shard exceeded the {self.policy.shard_timeout}s "
                        "wall-clock deadline and was killed by the supervisor",
                    )
                continue
            process.join()
            del running[index]
            progressed = True
            kind, cause, result = self._classify_exit(process, record)
            if kind is None:
                results[index] = self._finish(record.attempt.job, result)
            else:
                self._handle_failure(pending, results, record, kind, cause)
        return progressed

    def _classify_exit(
        self, process: Any, record: _Running
    ) -> tuple[str | None, str, Any]:
        """Map a finished worker to (failure kind | None-on-success, cause, result)."""
        if process.exitcode == 0 and record.result_path.exists():
            result = _read_pickle(record.result_path)
            record.result_path.unlink(missing_ok=True)
            if result is not _LOAD_FAILED:
                return None, "", result
            return KIND_DIED, "worker reported success but its result file is unreadable", None
        if record.error_path.exists():
            report = _read_pickle(record.error_path)
            record.error_path.unlink(missing_ok=True)
            if isinstance(report, dict) and "traceback" in report:
                return KIND_RAISED, str(report["traceback"]), None
            return KIND_RAISED, "worker raised but its error report is unreadable", None
        exitcode = process.exitcode
        if exitcode is not None and exitcode < 0:
            cause = f"worker process was killed by signal {-exitcode}"
        else:
            cause = f"worker process exited with code {exitcode} without reporting a result"
        return KIND_DIED, cause, None

    def _handle_failure(
        self,
        pending: list[_Attempt],
        results: dict[int, Any],
        record: _Running,
        kind: str,
        cause: str,
    ) -> None:
        att = record.attempt
        job = att.job
        self._log_failure(job.index, att.attempt, kind)
        budget = self.policy.retries + 1
        if att.attempt < budget:
            ready_at = time.monotonic() + self.policy.backoff_delay(att.attempt)
            pending.append(_Attempt(job, att.attempt + 1, ready_at))
            return
        if kind == KIND_RAISED and self.policy.in_process_fallback:
            # Graceful degradation: the shard failed by raising in every
            # subprocess attempt — give it one in-process attempt so e.g. a
            # pathological multiprocessing environment cannot sink the
            # campaign.  Died/timed-out shards are excluded: pulling a shard
            # that hangs or gets OOM-killed in-process would take the
            # supervisor down with it.
            results[job.index] = self._run_in_process(
                job, first_attempt=att.attempt + 1, backoff=False
            )
            return
        raise ShardError(job.index, job.start, job.stop, att.attempt, kind, cause)

    def _finish(self, job: Any, result: Any) -> Any:
        if self.finalize is not None:
            return self.finalize(job, result)
        return result

    def _log_failure(self, index: int, attempt: int, kind: str) -> None:
        self.attempt_log.setdefault(index, []).append({"attempt": attempt, "kind": kind})
