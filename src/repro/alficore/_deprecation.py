"""Warn-once plumbing for the deprecated pre-Experiment-API facades."""

from __future__ import annotations

import warnings

_WARNED: set[str] = set()


def warn_once(name: str, replacement: str) -> None:
    """Emit a single ``DeprecationWarning`` per facade per process."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; define an ExperimentSpec and call "
        f"{replacement} from repro.experiments instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_warnings() -> None:
    """Forget which facades already warned (test helper)."""
    _WARNED.clear()
