"""Clone-free campaign engine.

:class:`CampaignRunner` drives a complete classification fault-injection
campaign over a metadata-enriched data loader without ever copying the model:

* golden and faulty inference run batch-wise in lock-step; the faulty pass
  goes through the wrapper's clone-free fault group sessions
  (:meth:`~repro.alficore.wrapper.ptfiwrap.get_fault_group_iter`), so weight
  faults are patched in place and restored bit-exactly after every group and
  neuron faults reuse one hooked model whose active group is swapped per step;
* an :class:`~repro.alficore.monitoring.InferenceMonitor` watches the faulty
  model's intermediate activations for NaN/Inf events (DUE detection);
* every inference is classified masked / SDE / DUE against its golden run via
  :mod:`repro.eval.sdc`;
* per-inference result records and the applied-fault log are *streamed* to
  :class:`~repro.alficore.results.CampaignResultWriter` as they are produced
  instead of being accumulated in memory, so campaign memory stays bounded by
  the batch size, not the dataset size.

Only aggregate KPIs (accuracies, outcome rates) are kept in memory and
returned as a :class:`CampaignSummary`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.alficore.monitoring import InferenceMonitor
from repro.alficore.policies import InjectionPolicy
from repro.alficore.results import CampaignResultWriter, ClassificationRecord
from repro.alficore.scenario import ScenarioConfig, default_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.data.wrapper import AlfiDataLoaderWrapper, ImageRecord
from repro.eval.classification import top_k_predictions
from repro.eval.sdc import FaultOutcome, classify_classification_outcome
from repro.nn.module import Module
from repro.pytorchfi.errormodels import ErrorModel


@dataclass
class CampaignSummary:
    """Aggregate KPIs of one streamed fault-injection campaign."""

    model_name: str
    num_inferences: int
    num_fault_groups: int
    num_applied_faults: int
    golden_top1_accuracy: float
    golden_top5_accuracy: float
    corrupted_top1_accuracy: float
    masked_rate: float
    sde_rate: float
    due_rate: float
    outcome_counts: dict[str, int] = field(default_factory=dict)
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "model_name": self.model_name,
            "num_inferences": self.num_inferences,
            "num_fault_groups": self.num_fault_groups,
            "num_applied_faults": self.num_applied_faults,
            "golden_top1_accuracy": self.golden_top1_accuracy,
            "golden_top5_accuracy": self.golden_top5_accuracy,
            "corrupted_top1_accuracy": self.corrupted_top1_accuracy,
            "masked_rate": self.masked_rate,
            "sde_rate": self.sde_rate,
            "due_rate": self.due_rate,
            "outcome_counts": dict(self.outcome_counts),
            "output_files": dict(self.output_files),
        }


class _Tally:
    """Running aggregates of a streamed campaign (O(1) memory)."""

    def __init__(self):
        self.inferences = 0
        self.golden_top1_hits = 0
        self.golden_top5_hits = 0
        self.corrupted_top1_hits = 0
        self.outcomes: Counter = Counter()
        self.applied_faults = 0
        self.groups = 0


class CampaignRunner:
    """Run a classification fault-injection campaign without model clones.

    Args:
        model: the fault-free baseline classifier (restored bit-exactly after
            every weight fault group).
        dataset: map-style dataset yielding ``(image, label)``; wrapped in an
            :class:`~repro.data.wrapper.AlfiDataLoaderWrapper`.
        scenario: campaign configuration.  ``dataset_size`` is aligned with
            the dataset, and ``per_image`` campaigns run with ``batch_size=1``
            (the paper's convention: one fault group per image).
        writer: optional :class:`CampaignResultWriter`; when given, the meta
            file, fault matrix, applied-fault log and per-inference golden /
            corrupted CSVs are written (records are streamed, not buffered).
        error_model: overrides the error model derived from the scenario.
        input_shape: per-sample input shape used for model profiling.
        custom_monitors: extra monitoring callbacks attached alongside the
            NaN/Inf monitor.
        dl_shuffle: shuffle the dataset between epochs (seeded).
    """

    def __init__(
        self,
        model: Module,
        dataset,
        scenario: ScenarioConfig | None = None,
        writer: CampaignResultWriter | None = None,
        error_model: ErrorModel | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        custom_monitors: list[Callable] | None = None,
        dl_shuffle: bool = False,
    ):
        if dataset is None or len(dataset) == 0:
            raise ValueError("a non-empty dataset is required to run a campaign")
        self.model = model.eval()
        self.dataset = dataset
        scenario = scenario if scenario is not None else default_scenario()
        overrides: dict = {}
        if scenario.dataset_size != len(dataset):
            overrides["dataset_size"] = len(dataset)
        if scenario.inj_policy == "per_image" and scenario.batch_size != 1:
            overrides["batch_size"] = 1
        self.scenario = scenario.copy(**overrides) if overrides else scenario
        self.writer = writer
        self.custom_monitors = list(custom_monitors or [])
        self.dl_shuffle = dl_shuffle
        self._error_model = error_model
        self.wrapper = ptfiwrap(model, scenario=self.scenario, input_shape=input_shape)
        self._monitors: dict[int, InferenceMonitor] = {}

    # ------------------------------------------------------------------ #
    # campaign execution
    # ------------------------------------------------------------------ #
    def run(self) -> CampaignSummary:
        """Execute the campaign and return the aggregate KPIs."""
        scenario = self.scenario
        policy = InjectionPolicy.from_string(scenario.inj_policy)
        loader = AlfiDataLoaderWrapper(
            self.dataset,
            batch_size=scenario.batch_size,
            shuffle=self.dl_shuffle,
            seed=scenario.random_seed,
        )
        groups = self.wrapper.get_fault_group_iter(self._error_model)
        tally = _Tally()
        golden_stream = corrupted_stream = applied_stream = None
        stream_paths: dict[str, str] = {}
        if self.writer is not None:
            golden_stream = self.writer.stream_classification("golden")
            corrupted_stream = self.writer.stream_classification("corrupted")
            applied_stream = self.writer.stream_applied_faults()
            stream_paths = {
                "golden_csv": str(golden_stream.path),
                "corrupted_csv": str(corrupted_stream.path),
                "applied_faults": str(applied_stream.path),
            }
        try:
            for _epoch in range(scenario.num_runs):
                if policy is InjectionPolicy.PER_EPOCH:
                    group = self._next_group(groups)
                    tally.groups += 1
                    first_batch = True
                    for batch in loader:
                        self._run_batch(
                            batch, group, tally, golden_stream, corrupted_stream,
                            applied_stream, collect_applied=first_batch,
                        )
                        first_batch = False
                else:  # per_batch, or per_image with batch_size forced to 1
                    for batch in loader:
                        group = self._next_group(groups)
                        tally.groups += 1
                        self._run_batch(
                            batch, group, tally, golden_stream, corrupted_stream,
                            applied_stream, collect_applied=True,
                        )
        finally:
            for stream in (golden_stream, corrupted_stream, applied_stream):
                if stream is not None:
                    stream.close()
            groups.close()
            for monitor in self._monitors.values():
                monitor.detach()
            self._monitors = {}
        return self._summarize(tally, stream_paths)

    @staticmethod
    def _next_group(groups: Iterator):
        try:
            return next(groups)
        except StopIteration:
            raise RuntimeError(
                "fault matrix exhausted before the campaign finished; the loaded "
                "fault file provides fewer fault groups than the scenario needs"
            ) from None

    def _run_batch(
        self,
        batch: list[ImageRecord],
        group,
        tally: _Tally,
        golden_stream,
        corrupted_stream,
        applied_stream,
        collect_applied: bool,
    ) -> None:
        images = AlfiDataLoaderWrapper.stack_images(batch)
        golden_out = np.asarray(self.model(images))  # before the patch is applied
        with group:
            monitor = self._monitor_for(group.model)
            monitor.reset()
            monitor.enabled = True
            try:
                corrupted_out = np.asarray(group.model(images))
            finally:
                monitor.enabled = False
            monitor_result = monitor.collect()
        applied = [fault.as_dict() for fault in group.applied_faults]
        if collect_applied:
            tally.applied_faults += len(applied)
            if applied_stream is not None:
                for entry in applied:
                    applied_stream.write(entry)

        golden_classes, golden_probs = top_k_predictions(golden_out, k=5)
        corrupted_classes, corrupted_probs = top_k_predictions(corrupted_out, k=5)
        for i, record in enumerate(batch):
            label = int(record.target)
            # Monitor events are batch-scoped; per-image output NaN/Inf adds
            # image resolution on top (for batch_size=1 they coincide).
            nan_detected = monitor_result.nan_detected or bool(np.isnan(corrupted_out[i]).any())
            inf_detected = monitor_result.inf_detected or bool(np.isinf(corrupted_out[i]).any())
            outcome = classify_classification_outcome(
                int(golden_classes[i, 0]),
                int(corrupted_classes[i, 0]),
                nan_detected or inf_detected,
            )
            tally.inferences += 1
            tally.outcomes[outcome] += 1
            tally.golden_top1_hits += int(golden_classes[i, 0] == label)
            tally.golden_top5_hits += int(label in golden_classes[i])
            tally.corrupted_top1_hits += int(corrupted_classes[i, 0] == label)
            if golden_stream is not None:
                golden_stream.write(
                    self._record(record, label, golden_classes[i], golden_probs[i], [], False, False, "golden")
                )
            if corrupted_stream is not None:
                corrupted_stream.write(
                    self._record(
                        record, label, corrupted_classes[i], corrupted_probs[i],
                        applied, nan_detected, inf_detected, "corrupted",
                    )
                )

    def _monitor_for(self, model: Module) -> InferenceMonitor:
        """Attach (once) and return the monitor for a faulty model instance.

        The clone-free sessions reuse stable model objects — the original for
        weight faults, one hooked clone for neuron faults — so the monitor
        hooks are attached a single time per campaign instead of per group.
        """
        key = id(model)
        monitor = self._monitors.get(key)
        if monitor is None:
            monitor = InferenceMonitor(model, custom_monitors=self.custom_monitors)
            monitor.attach()
            # Disabled outside the faulty inference: for weight campaigns the
            # monitored model is also the golden model, and the golden pass
            # should not pay the per-layer NaN/Inf scan.
            monitor.enabled = False
            self._monitors[key] = monitor
        return monitor

    @staticmethod
    def _record(
        record: ImageRecord,
        label: int,
        classes: np.ndarray,
        probabilities: np.ndarray,
        applied: list[dict],
        nan_detected: bool,
        inf_detected: bool,
        tag: str,
    ) -> ClassificationRecord:
        return ClassificationRecord(
            image_id=record.image_id,
            file_name=record.file_name,
            ground_truth=label,
            top5_classes=[int(c) for c in classes],
            top5_probabilities=[float(p) for p in probabilities],
            fault_positions=applied,
            nan_detected=nan_detected,
            inf_detected=inf_detected,
            model_tag=tag,
        )

    def _summarize(self, tally: _Tally, stream_paths: dict[str, str]) -> CampaignSummary:
        n = tally.inferences
        outcome_counts = {outcome.value: tally.outcomes.get(outcome, 0) for outcome in FaultOutcome}
        output_files: dict[str, str] = {}
        if self.writer is not None:
            output_files = dict(stream_paths)
            output_files["meta"] = str(
                self.writer.write_meta(self.scenario, extra={"model_name": self.scenario.model_name})
            )
            output_files["faults"] = str(self.writer.write_fault_matrix(self.wrapper.get_fault_matrix()))
        summary = CampaignSummary(
            model_name=self.scenario.model_name,
            num_inferences=n,
            num_fault_groups=tally.groups,
            num_applied_faults=tally.applied_faults,
            golden_top1_accuracy=tally.golden_top1_hits / n if n else 0.0,
            golden_top5_accuracy=tally.golden_top5_hits / n if n else 0.0,
            corrupted_top1_accuracy=tally.corrupted_top1_hits / n if n else 0.0,
            masked_rate=tally.outcomes.get(FaultOutcome.MASKED, 0) / n if n else 0.0,
            sde_rate=tally.outcomes.get(FaultOutcome.SDE, 0) / n if n else 0.0,
            due_rate=tally.outcomes.get(FaultOutcome.DUE, 0) / n if n else 0.0,
            outcome_counts=outcome_counts,
            output_files=output_files,
        )
        if self.writer is not None:
            summary.output_files["kpis"] = str(
                self.writer.write_kpi_summary(summary.as_dict())
            )
        return summary
