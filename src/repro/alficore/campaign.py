"""Task-pluggable clone-free campaign core with sharded parallel execution.

The campaign engine is split into three layers:

* :class:`CampaignCore` owns everything that is identical for every workload:
  the golden/faulty lock-step loop over the clone-free fault group sessions
  (:meth:`~repro.alficore.wrapper.ptfiwrap.get_fault_group_iter`), session
  handling for the primary and the optional hardened ("resil") model lane,
  attach-once monitor caching (:class:`~repro.alficore.monitoring.MonitorCache`)
  and the streamed-record plumbing.  The core never interprets model outputs.
* :class:`CampaignTask` adapters interpret outputs per workload.
  :class:`ClassificationTask` classifies each inference masked / SDE / DUE
  against its golden top-1 and streams CSV rows;  :class:`DetectionTask`
  collects per-image predictions for IVMOD / mAP evaluation and streams
  detection JSON records.  Both keep a picklable aggregate ``state`` so shard
  workers can ship partial results back to the parent process.
* :class:`ShardedCampaignExecutor` partitions a campaign into contiguous
  ``(epoch, fault-group, dataset-index)`` shards and runs them through the
  supervised scheduler in :mod:`repro.alficore.resilience` (or sequentially
  in-process for ``workers=1``): failed, killed or hung shards are re-queued
  by their deterministic step range with capped exponential backoff, shard
  outputs land via atomic directory renames, and a crash-safe run manifest
  makes interrupted campaigns resumable.  Per-shard result files are merged
  deterministically — the merged output is byte-identical to a
  single-process run of the same seed, because every fault corruption is
  pre-drawn in the fault matrix and the loader's epoch permutations depend
  only on ``(seed, epoch)``.

:class:`CampaignRunner` keeps its PR-1 interface: a classification campaign
runner with O(batch) memory whose records are *streamed* to
:class:`~repro.alficore.results.CampaignResultWriter` while only aggregate
KPIs are kept and returned as a :class:`CampaignSummary`.  It is now a thin
facade over ``CampaignCore`` + ``ClassificationTask`` and gained ``workers``
/ ``num_shards`` for parallel execution.
"""

from __future__ import annotations

import copy
import os
import pickle
import shutil
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.alficore._deprecation import warn_once
from repro.alficore.digests import bytes_digest, model_fingerprint
from repro.alficore.goldencache import GoldenCache
from repro.alficore.monitoring import MonitorCache, MonitorResult
from repro.alficore.policies import InjectionPolicy
from repro.alficore.resilience import (
    ExecutionPolicy,
    RunManifest,
    ShardSupervisor,
    atomic_write_pickle,
)
from repro.alficore.results import (
    CampaignResultWriter,
    ClassificationRecord,
    DetectionRecord,
    merge_csv_files,
    merge_json_array_files,
)
from repro.alficore.scenario import ScenarioConfig, default_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.data.wrapper import AlfiDataLoaderWrapper, ImageRecord
from repro.eval.classification import top_k_predictions
from repro.eval.sdc import FaultOutcome, classify_classification_outcome
from repro.nn.forward_plan import ActivationArena, ForwardPlan
from repro.nn.module import Module
from repro.pytorchfi.errormodels import ErrorModel


@dataclass
class CampaignSummary:
    """Aggregate KPIs of one streamed fault-injection campaign."""

    model_name: str
    num_inferences: int
    num_fault_groups: int
    num_applied_faults: int
    golden_top1_accuracy: float
    golden_top5_accuracy: float
    corrupted_top1_accuracy: float
    masked_rate: float
    sde_rate: float
    due_rate: float
    outcome_counts: dict[str, int] = field(default_factory=dict)
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "model_name": self.model_name,
            "num_inferences": self.num_inferences,
            "num_fault_groups": self.num_fault_groups,
            "num_applied_faults": self.num_applied_faults,
            "golden_top1_accuracy": self.golden_top1_accuracy,
            "golden_top5_accuracy": self.golden_top5_accuracy,
            "corrupted_top1_accuracy": self.corrupted_top1_accuracy,
            "masked_rate": self.masked_rate,
            "sde_rate": self.sde_rate,
            "due_rate": self.due_rate,
            "outcome_counts": dict(self.outcome_counts),
            "output_files": dict(self.output_files),
        }


def normalize_campaign_scenario(scenario: ScenarioConfig | None, dataset) -> ScenarioConfig:
    """Align a scenario with the dataset and the per-image batch convention.

    ``dataset_size`` is matched to the dataset, and ``per_image`` campaigns
    run with ``batch_size=1`` (the paper's convention: one fault group per
    image).
    """
    scenario = scenario if scenario is not None else default_scenario()
    overrides: dict = {}
    if scenario.dataset_size != len(dataset):
        overrides["dataset_size"] = len(dataset)
    if scenario.inj_policy == "per_image" and scenario.batch_size != 1:
        overrides["batch_size"] = 1
    return scenario.copy(**overrides) if overrides else scenario


@dataclass
class StepContext:
    """Everything one lock-step golden/faulty step hands to the task."""

    batch: list[ImageRecord]
    epoch: int
    step: int
    group_index: int
    golden: object
    corrupted: object
    applied: list[dict]
    monitor: MonitorResult
    collect_applied: bool
    resil_golden: object | None = None
    resil: object | None = None


class CampaignTask:
    """Per-batch evaluation plug-in for :class:`CampaignCore`.

    A task interprets model outputs for one workload: it opens the workload's
    record streams in :meth:`begin`, folds every :class:`StepContext` into a
    picklable aggregate ``state`` in :meth:`consume` (streaming per-inference
    records as they are produced), and closes the streams in :meth:`end`.
    ``state`` objects of shards are combined with :meth:`merge_states` in
    shard order, which must reproduce the state of an unsharded run.
    """

    name = "task"
    # Tasks whose ``infer`` is exactly ``finish(model(images))`` may be run
    # through a :class:`~repro.nn.forward_plan.ForwardPlan` (prefix-reuse
    # suffix-only forwards).  Override with ``False`` when ``infer`` does
    # anything beyond that contract.
    plan_compatible = True

    def fresh(self) -> "CampaignTask":
        """Return an unstarted copy for a shard worker (configuration only)."""
        clone = copy.deepcopy(self)
        clone.reset()
        return clone

    def reset(self) -> None:
        """Drop accumulated state (start of a new run)."""
        raise NotImplementedError

    def begin(self, writer: CampaignResultWriter | None, resil: bool = False) -> dict[str, str]:
        """Open record streams; return ``{tag: path}`` of the stream files."""
        return {}

    def finish(self, output):
        """Convert a raw model output into the task's working form (idempotent)."""
        return output

    def infer(self, model: Module, images: np.ndarray, batch: list[ImageRecord]):
        """Run one forward pass (identical for the golden and faulty lanes)."""
        return self.finish(model(images))

    def consume(self, ctx: StepContext) -> None:
        """Fold one step's outputs into the aggregate state and streams."""
        raise NotImplementedError

    def end(self) -> None:
        """Close the record streams opened by :meth:`begin`."""

    @staticmethod
    def merge_states(states: list):
        """Combine shard states (in shard order) into one campaign state."""
        raise NotImplementedError


def _close_streams(streams: dict) -> None:
    for stream in streams.values():
        stream.close()


# --------------------------------------------------------------------------- #
# classification task
# --------------------------------------------------------------------------- #
@dataclass
class ClassificationState:
    """Picklable aggregates of a (possibly sharded) classification campaign."""

    inferences: int = 0
    groups: int = 0
    applied_faults: int = 0
    golden_top1_hits: int = 0
    golden_top5_hits: int = 0
    corrupted_top1_hits: int = 0
    outcomes: Counter = field(default_factory=Counter)
    # Buffers below are only filled with ``collect_outputs=True`` (the
    # ``TestErrorModels_ImgClass`` facade needs raw logits for its output).
    golden_logits: list = field(default_factory=list)
    corrupted_logits: list = field(default_factory=list)
    resil_golden_logits: list = field(default_factory=list)
    resil_logits: list = field(default_factory=list)
    labels: list = field(default_factory=list)
    due_flags: list = field(default_factory=list)
    applied_log: list = field(default_factory=list)


class ClassificationTask(CampaignTask):
    """Masked / SDE / DUE classification of each inference vs its golden run.

    Args:
        collect_outputs: additionally buffer raw logits, labels, DUE flags
            and the applied-fault log in ``state`` (needed by the
            ``TestErrorModels_ImgClass`` facade; the streaming
            :class:`CampaignRunner` keeps this off for O(batch) memory).
    """

    name = "classification"

    def __init__(self, collect_outputs: bool = False):
        self.collect_outputs = collect_outputs
        self.state = ClassificationState()
        self._streams: dict = {}

    def reset(self) -> None:
        self.state = ClassificationState()
        self._streams = {}

    def begin(self, writer: CampaignResultWriter | None, resil: bool = False) -> dict[str, str]:
        self._streams = {}
        if writer is None:
            return {}
        self._streams["golden_csv"] = writer.stream_classification("golden")
        self._streams["corrupted_csv"] = writer.stream_classification("corrupted")
        if resil:
            self._streams["resil_csv"] = writer.stream_classification("resil")
        self._streams["applied_faults"] = writer.stream_applied_faults()
        return {tag: str(stream.path) for tag, stream in self._streams.items()}

    def finish(self, output) -> np.ndarray:
        return np.asarray(output)

    def consume(self, ctx: StepContext) -> None:
        state = self.state
        golden_out = np.asarray(ctx.golden)
        corrupted_out = np.asarray(ctx.corrupted)
        if ctx.collect_applied:
            state.groups += 1
            state.applied_faults += len(ctx.applied)
            if self.collect_outputs:
                state.applied_log.extend(ctx.applied)
            stream = self._streams.get("applied_faults")
            if stream is not None:
                for entry in ctx.applied:
                    stream.write(entry)

        golden_classes, golden_probs = top_k_predictions(golden_out, k=5)
        corrupted_classes, corrupted_probs = top_k_predictions(corrupted_out, k=5)
        for i, record in enumerate(ctx.batch):
            label = int(record.target)
            # Monitor events are batch-scoped; per-image output NaN/Inf adds
            # image resolution on top (for batch_size=1 they coincide).
            nan_detected = ctx.monitor.nan_detected or bool(np.isnan(corrupted_out[i]).any())
            inf_detected = ctx.monitor.inf_detected or bool(np.isinf(corrupted_out[i]).any())
            outcome = classify_classification_outcome(
                int(golden_classes[i, 0]),
                int(corrupted_classes[i, 0]),
                nan_detected or inf_detected,
            )
            state.inferences += 1
            state.outcomes[outcome] += 1
            state.golden_top1_hits += int(golden_classes[i, 0] == label)
            state.golden_top5_hits += int(label in golden_classes[i])
            state.corrupted_top1_hits += int(corrupted_classes[i, 0] == label)
            if self.collect_outputs:
                state.golden_logits.append(golden_out[i])
                state.corrupted_logits.append(corrupted_out[i])
                state.labels.append(label)
                state.due_flags.append(bool(nan_detected or inf_detected))
            self._write_row(
                "golden_csv", record, label, golden_classes[i], golden_probs[i], [], False, False, "golden"
            )
            self._write_row(
                "corrupted_csv", record, label, corrupted_classes[i], corrupted_probs[i],
                ctx.applied, nan_detected, inf_detected, "corrupted",
            )
        if ctx.resil is not None:
            self._consume_resil(ctx)

    def _consume_resil(self, ctx: StepContext) -> None:
        state = self.state
        resil_out = np.asarray(ctx.resil)
        resil_golden_out = np.asarray(ctx.resil_golden)
        resil_classes, resil_probs = top_k_predictions(resil_out, k=5)
        for i, record in enumerate(ctx.batch):
            label = int(record.target)
            resil_nan = bool(np.isnan(resil_out[i]).any())
            resil_inf = bool(np.isinf(resil_out[i]).any())
            if self.collect_outputs:
                state.resil_golden_logits.append(resil_golden_out[i])
                state.resil_logits.append(resil_out[i])
            self._write_row(
                "resil_csv", record, label, resil_classes[i], resil_probs[i],
                ctx.applied, resil_nan, resil_inf, "resil",
            )

    def _write_row(
        self,
        tag: str,
        record: ImageRecord,
        label: int,
        classes: np.ndarray,
        probabilities: np.ndarray,
        applied: list[dict],
        nan_detected: bool,
        inf_detected: bool,
        model_tag: str,
    ) -> None:
        stream = self._streams.get(tag)
        if stream is None:
            return
        stream.write(
            ClassificationRecord(
                image_id=record.image_id,
                file_name=record.file_name,
                ground_truth=label,
                top5_classes=[int(c) for c in classes],
                top5_probabilities=[float(p) for p in probabilities],
                fault_positions=applied,
                nan_detected=nan_detected,
                inf_detected=inf_detected,
                model_tag=model_tag,
            )
        )

    def end(self) -> None:
        _close_streams(self._streams)
        self._streams = {}

    @staticmethod
    def merge_states(states: list) -> ClassificationState:
        merged = ClassificationState()
        for state in states:
            merged.inferences += state.inferences
            merged.groups += state.groups
            merged.applied_faults += state.applied_faults
            merged.golden_top1_hits += state.golden_top1_hits
            merged.golden_top5_hits += state.golden_top5_hits
            merged.corrupted_top1_hits += state.corrupted_top1_hits
            merged.outcomes.update(state.outcomes)
            merged.golden_logits.extend(state.golden_logits)
            merged.corrupted_logits.extend(state.corrupted_logits)
            merged.resil_golden_logits.extend(state.resil_golden_logits)
            merged.resil_logits.extend(state.resil_logits)
            merged.labels.extend(state.labels)
            merged.due_flags.extend(state.due_flags)
            merged.applied_log.extend(state.applied_log)
        return merged


# --------------------------------------------------------------------------- #
# detection task
# --------------------------------------------------------------------------- #
@dataclass
class DetectionState:
    """Picklable aggregates of a (possibly sharded) detection campaign.

    Per-image *predictions* (small box/score/label dicts) are retained for
    the campaign-level IVMOD / mAP evaluation; the much larger per-image
    result records are streamed to disk instead of being buffered.
    """

    inferences: int = 0
    groups: int = 0
    applied_faults: int = 0
    golden_predictions: list = field(default_factory=list)
    corrupted_predictions: list = field(default_factory=list)
    resil_golden_predictions: list = field(default_factory=list)
    resil_predictions: list = field(default_factory=list)
    targets: list = field(default_factory=list)
    due_flags: list = field(default_factory=list)
    applied_log: list = field(default_factory=list)


class DetectionTask(CampaignTask):
    """IVMOD / mAP bookkeeping for object-detection campaigns.

    Each step's detections are converted to prediction dicts (golden,
    corrupted and optionally the hardened "resil" lane), NaN and Inf are
    attributed separately per event type via ``Detection.has_nan()`` /
    ``has_inf()`` plus the layer monitors, and per-image
    :class:`DetectionRecord` JSON entries are streamed as they are produced.
    """

    name = "detection"

    def __init__(self, collect_applied_log: bool = False):
        self.collect_applied_log = collect_applied_log
        self.state = DetectionState()
        self._streams: dict = {}

    def reset(self) -> None:
        self.state = DetectionState()
        self._streams = {}

    def begin(self, writer: CampaignResultWriter | None, resil: bool = False) -> dict[str, str]:
        self._streams = {}
        if writer is None:
            return {}
        self._streams["golden_json"] = writer.stream_detection("golden")
        self._streams["corrupted_json"] = writer.stream_detection("corrupted")
        if resil:
            self._streams["resil_json"] = writer.stream_detection("resil")
        self._streams["applied_faults"] = writer.stream_applied_faults()
        return {tag: str(stream.path) for tag, stream in self._streams.items()}

    def consume(self, ctx: StepContext) -> None:
        state = self.state
        if ctx.collect_applied:
            state.groups += 1
            state.applied_faults += len(ctx.applied)
            if self.collect_applied_log:
                state.applied_log.extend(ctx.applied)
            stream = self._streams.get("applied_faults")
            if stream is not None:
                for entry in ctx.applied:
                    stream.write(entry)

        for i, record in enumerate(ctx.batch):
            golden_detection = ctx.golden[i]
            corrupted_detection = ctx.corrupted[i]
            target = record.target
            nan_detected = ctx.monitor.nan_detected or corrupted_detection.has_nan()
            inf_detected = ctx.monitor.inf_detected or corrupted_detection.has_inf()

            state.inferences += 1
            state.golden_predictions.append(golden_detection.as_dict())
            state.corrupted_predictions.append(corrupted_detection.as_dict())
            state.targets.append(
                {
                    "boxes": np.asarray(target["boxes"], dtype=np.float32),
                    "labels": np.asarray(target["labels"], dtype=np.int64),
                    "image_id": record.image_id,
                    "file_name": record.file_name,
                }
            )
            state.due_flags.append(bool(nan_detected or inf_detected))

            self._write_record("golden_json", record, golden_detection, [], False, False, "golden")
            self._write_record(
                "corrupted_json", record, corrupted_detection,
                ctx.applied, nan_detected, inf_detected, "corrupted",
            )
            if ctx.resil is not None:
                # Judge the hardened detector against its own fault-free run.
                resil_detection = ctx.resil[i]
                state.resil_golden_predictions.append(ctx.resil_golden[i].as_dict())
                state.resil_predictions.append(resil_detection.as_dict())
                self._write_record(
                    "resil_json", record, resil_detection, ctx.applied,
                    resil_detection.has_nan(), resil_detection.has_inf(), "resil",
                )

    def _write_record(
        self,
        tag: str,
        record: ImageRecord,
        detection,
        applied: list[dict],
        nan_detected: bool,
        inf_detected: bool,
        model_tag: str,
    ) -> None:
        stream = self._streams.get(tag)
        if stream is None:
            return
        as_dict = detection.as_dict()
        stream.write(
            DetectionRecord(
                image_id=record.image_id,
                file_name=record.file_name,
                boxes=as_dict["boxes"],
                scores=as_dict["scores"],
                labels=as_dict["labels"],
                fault_positions=applied,
                nan_detected=bool(nan_detected),
                inf_detected=bool(inf_detected),
                model_tag=model_tag,
            )
        )

    def end(self) -> None:
        _close_streams(self._streams)
        self._streams = {}

    @staticmethod
    def merge_states(states: list) -> DetectionState:
        merged = DetectionState()
        for state in states:
            merged.inferences += state.inferences
            merged.groups += state.groups
            merged.applied_faults += state.applied_faults
            merged.golden_predictions.extend(state.golden_predictions)
            merged.corrupted_predictions.extend(state.corrupted_predictions)
            merged.resil_golden_predictions.extend(state.resil_golden_predictions)
            merged.resil_predictions.extend(state.resil_predictions)
            merged.targets.extend(state.targets)
            merged.due_flags.extend(state.due_flags)
            merged.applied_log.extend(state.applied_log)
        return merged


# --------------------------------------------------------------------------- #
# the task-agnostic core
# --------------------------------------------------------------------------- #
def _epoch_segments(start: int, stop: int, num_batches: int) -> Iterator[tuple[int, int, int]]:
    """Split a global step range into ``(epoch, first_batch, stop_batch)`` runs."""
    step = start
    while step < stop:
        epoch, batch = divmod(step, num_batches)
        segment_stop = min(stop, (epoch + 1) * num_batches)
        yield epoch, batch, batch + (segment_stop - step)
        step = segment_stop


class CampaignCore:
    """Task-agnostic campaign loop over the clone-free fault group sessions.

    The core owns the mechanics shared by every workload — dataset iteration,
    golden/faulty lock-step inference, session handling for the primary and
    the optional hardened model lane, attach-once monitor caching and stream
    lifecycle — and delegates all output interpretation to a
    :class:`CampaignTask`.

    Args:
        model: the fault-free baseline model (restored bit-exactly after
            every weight fault group).
        dataset: map-style dataset yielding ``(image, label_or_target)``.
        task: the workload adapter receiving every step's outputs.
        scenario: campaign configuration.  ``dataset_size`` is aligned with
            the dataset, and ``per_image`` campaigns run with ``batch_size=1``
            (the paper's convention: one fault group per image).
        writer: optional result writer; when given, per-inference records and
            the applied-fault log are streamed as they are produced.
        error_model: overrides the error model derived from the scenario.
        input_shape: per-sample input shape used for model profiling.
        custom_monitors: extra monitoring callbacks attached alongside the
            NaN/Inf monitor.
        dl_shuffle: shuffle the dataset between epochs (seeded).
        resil_model: optional hardened variant evaluated under the same
            faults (its own fault-free pass is the resil baseline).
        wrapper: optional pre-built ``ptfiwrap`` (e.g. with a reloaded fault
            file); built from the scenario otherwise.
        resil_wrapper: optional pre-built wrapper for the hardened model.
        prefix_reuse: run the faulty (and resil-faulty) lane as a suffix-only
            forward from the first faulted layer, reusing the golden pass's
            checkpointed prefix activations (bit-identical to a full faulty
            forward).  Disabled automatically for models whose forward does
            not linearise into a :class:`~repro.nn.forward_plan.ForwardPlan`.
        golden_cache: optional epoch-invariant :class:`GoldenCache`; golden
            (and resil-golden) passes are computed once per batch of images
            instead of once per epoch, and their boundary checkpoints are
            reused by later epochs' suffix-only faulty lanes.
        executor: forward-plan execution backend (``"module"``,
            ``"interpreter"``, ``"fused"``, or any name registered via
            :func:`repro.nn.ir.register_executor`).  Validated bit-exactly at
            trace time with silent fallback to the module path.
    """

    def __init__(
        self,
        model: Module,
        dataset,
        task: CampaignTask,
        scenario: ScenarioConfig | None = None,
        writer: CampaignResultWriter | None = None,
        error_model: ErrorModel | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        custom_monitors: list[Callable] | None = None,
        dl_shuffle: bool = False,
        resil_model: Module | None = None,
        wrapper: ptfiwrap | None = None,
        resil_wrapper: ptfiwrap | None = None,
        prefix_reuse: bool = True,
        golden_cache: GoldenCache | None = None,
        executor: str = "interpreter",
    ):
        if dataset is None or len(dataset) == 0:
            raise ValueError("a non-empty dataset is required to run a campaign")
        self.model = model.eval()
        self.dataset = dataset
        self.task = task
        self.scenario = normalize_campaign_scenario(scenario, dataset)
        self.writer = writer
        self.input_shape = tuple(input_shape)
        self.custom_monitors = list(custom_monitors or [])
        self.dl_shuffle = dl_shuffle
        self._error_model = error_model
        self.wrapper = (
            wrapper
            if wrapper is not None
            else ptfiwrap(model, scenario=self.scenario, input_shape=self.input_shape)
        )
        self.resil_model = resil_model.eval() if resil_model is not None else None
        if self.resil_model is not None and resil_wrapper is None:
            resil_wrapper = ptfiwrap(
                self.resil_model,
                scenario=self.scenario,
                input_shape=self.input_shape,
                fault_matrix=self.wrapper.get_fault_matrix(),
            )
        self.resil_wrapper = resil_wrapper
        self._monitors = MonitorCache(self.custom_monitors)
        self.prefix_reuse = prefix_reuse
        # Plan execution backend (repro.nn.ir registry).  Trace-time
        # validation falls back to the module path on any bitwise mismatch,
        # so an exotic executor name can never change campaign results.
        self.executor = executor
        if (
            golden_cache is not None
            and self.scenario.num_runs <= 1
            and golden_cache.spill_dir is None
        ):
            # A single-epoch campaign visits every batch exactly once, so an
            # in-memory epoch-invariant cache can never hit — recording all
            # boundary checkpoints for it would be pure overhead.  A spill
            # directory keeps the cache on (entries are reused *across*
            # campaign runs and shards).
            golden_cache = None
        self.golden_cache = golden_cache
        # Forward plans and recording arenas, lazily built per model object
        # (``None`` marks a model whose forward could not be linearised).
        self._plans: dict[int, ForwardPlan | None] = {}
        self._arenas: dict[int, ActivationArena] = {}
        self._fingerprints: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # campaign geometry
    # ------------------------------------------------------------------ #
    def make_loader(self) -> AlfiDataLoaderWrapper:
        """Build the metadata-enriched loader of this campaign."""
        return AlfiDataLoaderWrapper(
            self.dataset,
            batch_size=self.scenario.batch_size,
            shuffle=self.dl_shuffle,
            seed=self.scenario.random_seed,
        )

    @property
    def num_batches(self) -> int:
        """Batches per epoch."""
        return (len(self.dataset) + self.scenario.batch_size - 1) // self.scenario.batch_size

    @property
    def total_steps(self) -> int:
        """Total batch steps of the whole campaign (all epochs)."""
        return self.scenario.num_runs * self.num_batches

    def _group_range(self, start: int, stop: int, policy: InjectionPolicy) -> tuple[int, int]:
        """Fault-group range consumed by the step range ``[start, stop)``."""
        if start >= stop:
            return 0, 0
        if policy is InjectionPolicy.PER_EPOCH:
            return start // self.num_batches, (stop - 1) // self.num_batches + 1
        return start, stop

    # ------------------------------------------------------------------ #
    # campaign execution
    # ------------------------------------------------------------------ #
    def run(self, start: int = 0, stop: int | None = None) -> dict[str, str]:
        """Execute the steps ``[start, stop)`` of the campaign (all by default).

        Results accumulate in ``self.task.state``; the returned dictionary
        maps stream tags to the record files written (empty without writer).
        """
        total = self.total_steps
        stop = total if stop is None else min(stop, total)
        # Weights may have been mutated between runs of the same core; the
        # cache fingerprint must reflect the state of this run.
        self._fingerprints = {}
        if not 0 <= start <= total:
            raise ValueError(f"step range start {start} outside campaign of {total} steps")
        policy = InjectionPolicy.from_string(self.scenario.inj_policy)
        loader = self.make_loader()
        group_start, group_stop = self._group_range(start, stop, policy)
        groups = self.wrapper.get_fault_group_iter(
            self._error_model, start=group_start, stop=group_stop
        )
        resil_groups = None
        if self.resil_wrapper is not None:
            resil_groups = self.resil_wrapper.get_fault_group_iter(
                self._error_model, start=group_start, stop=group_stop
            )
        stream_paths = self.task.begin(self.writer, resil=self.resil_model is not None)
        try:
            for epoch, first_batch, stop_batch in _epoch_segments(start, stop, self.num_batches):
                group = resil_group = None
                group_index = -1
                if policy is InjectionPolicy.PER_EPOCH:
                    group = self._next_group(groups)
                    if resil_groups is not None:
                        resil_group = self._next_group(resil_groups)
                    group_index = epoch
                for offset, batch in enumerate(loader.iter_batches(epoch, first_batch, stop_batch)):
                    step = epoch * self.num_batches + first_batch + offset
                    if policy is not InjectionPolicy.PER_EPOCH:
                        group = self._next_group(groups)
                        if resil_groups is not None:
                            resil_group = self._next_group(resil_groups)
                        group_index = step
                        collect_applied = True
                    else:
                        # The applied-fault log of an epoch group is collected
                        # exactly once, on the epoch's first (global) batch.
                        collect_applied = first_batch + offset == 0
                    self._run_step(
                        batch, epoch, step, group, group_index, collect_applied, resil_group
                    )
        finally:
            self.task.end()
            groups.close()
            if resil_groups is not None:
                resil_groups.close()
            self._monitors.detach_all()
        return stream_paths

    @staticmethod
    def _next_group(groups: Iterator):
        try:
            return next(groups)
        except StopIteration:
            raise RuntimeError(
                "fault matrix exhausted before the campaign finished; the loaded "
                "fault file provides fewer fault groups than the scenario needs"
            ) from None

    # ------------------------------------------------------------------ #
    # prefix-reuse plumbing
    # ------------------------------------------------------------------ #
    def _plan_for(self, model: Module, images: np.ndarray) -> ForwardPlan | None:
        """Return the (lazily traced) forward plan of a model, or ``None``.

        Must be called outside any active fault group: the trace pass runs
        the model once, and active faults would corrupt it (and pollute the
        group's applied-fault log).
        """
        if not self.prefix_reuse or not getattr(self.task, "plan_compatible", False):
            return None
        key = id(model)
        if key not in self._plans:
            try:
                plan = ForwardPlan.trace(model, images, executor=self.executor)
            except Exception:
                plan = None
            self._plans[key] = plan if plan is not None and plan.valid else None
        return self._plans[key]

    def _arena_for(self, model: Module) -> ActivationArena:
        key = id(model)
        if key not in self._arenas:
            self._arenas[key] = ActivationArena()
        return self._arenas[key]

    def _model_fingerprint(self, model: Module) -> str:
        """Digest of the model's weights.

        Part of every golden-cache key: spillover directories outlive one
        campaign (shards of later runs reuse them), so entries recorded for
        different weights must never match.  Computed while the model is
        unpatched (outside any fault group).  Input-content mismatches are
        covered separately by the per-batch image digest in the key.
        """
        key = id(model)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is None:
            fingerprint = model_fingerprint(model)
            self._fingerprints[key] = fingerprint
        return fingerprint

    @staticmethod
    def _resume_index(
        golden_plan: ForwardPlan | None,
        faulty_plan: ForwardPlan | None,
        wrapper: ptfiwrap,
        group,
    ) -> int | None:
        """Plan segment to resume the faulty lane at (``None`` = full forward).

        The golden and the faulty model (a bit-identical clone for neuron
        campaigns) must segment identically, since the golden plan's
        checkpoints are fed into the faulty plan's suffix.  The resume point
        is the earliest *executed* segment over all of the group's faulted
        layers — layer indices follow registration order, which may differ
        from execution order, so mapping only ``first_faulted_layer`` could
        skip a patched layer that runs earlier in the chain.
        """
        if golden_plan is None or faulty_plan is None:
            return None
        if faulty_plan is not golden_plan and faulty_plan.segment_names != golden_plan.segment_names:
            return None
        layers = getattr(group, "faulted_layers", None)
        if layers is None:
            first = getattr(group, "first_faulted_layer", None)
            layers = [] if first is None else [first]
        if not layers:
            return None
        segments = []
        for layer in layers:
            name = wrapper.fault_injection.layers[layer].name
            index = faulty_plan.segment_for(name)
            if index is None:
                return None
            segments.append(index)
        index = min(segments)
        if index <= 0:
            return None
        return index

    def _golden_pass(
        self,
        model: Module,
        plan: ForwardPlan | None,
        images: np.ndarray,
        batch: list[ImageRecord],
        cache_key: tuple,
        resume_at: int | None,
        with_monitor: bool,
    ):
        """Run (or fetch) one lane's golden pass.

        Returns ``(raw_output, boundary, marks, events)`` where ``boundary``
        is the checkpointed activation for ``resume_at`` (``None`` when not
        available), and ``marks``/``events`` carry the golden monitor state
        used to inherit prefix NaN/Inf events (``None`` without monitoring).
        """
        cache = self.golden_cache
        if cache is not None:
            entry = cache.get(cache_key, batch_shape=images.shape)
            if entry is not None:
                boundary = None
                if resume_at is not None:
                    boundary = entry.boundaries.get(resume_at)
                    if boundary is None and plan is not None:
                        # Epoch-invariant output is cached but this epoch's
                        # fault group needs a boundary no one recorded yet:
                        # recompute the prefix only (still no full pass).
                        boundary = plan.run_prefix(images, resume_at)
                        stored = (
                            np.array(boundary, copy=True)
                            if isinstance(boundary, np.ndarray)
                            else boundary
                        )
                        cache.add_boundary(cache_key, resume_at, stored)
                return entry.output, boundary, entry.marks, entry.events
        if plan is not None:
            monitor = None
            if with_monitor:
                monitor = self._monitors.monitor_for(model)
                monitor.reset()
                monitor.enabled = True
            try:
                # With a cache every boundary is checkpointed (owned copies),
                # so any later epoch's fault group can resume anywhere; the
                # transient path records only this step's boundary into the
                # reusable arena.
                wanted = "all" if cache is not None else ([resume_at] if resume_at is not None else [])
                arena = None if cache is not None else self._arena_for(model)
                output, checkpoints, marks = plan.run_recording(
                    images, wanted, arena=arena, monitor=monitor
                )
            finally:
                if monitor is not None:
                    monitor.enabled = False
            events = monitor.collect() if monitor is not None else None
            if cache is not None:
                cache.put(
                    cache_key, output, checkpoints, marks, events, batch_shape=images.shape
                )
            boundary = checkpoints.get(resume_at) if resume_at is not None else None
            return output, boundary, marks, events
        output = self.task.infer(model, images, batch)
        if cache is not None:
            cache.put(cache_key, output, batch_shape=images.shape)
        return output, None, None, None

    def _cache_lane_key(
        self, lane: str, model: Module, cache_key: tuple, images: np.ndarray
    ) -> tuple:
        """Full golden-cache key: lane, weight fingerprint, ids, image digest.

        The per-batch content digest guards spillover reuse against a
        changed dataset whose image ids happen to collide with an earlier
        campaign's.
        """
        if self.golden_cache is None:
            return (lane,) + cache_key
        batch_digest = bytes_digest(np.ascontiguousarray(images).tobytes())
        return (lane, self._model_fingerprint(model)) + cache_key + (batch_digest,)

    @staticmethod
    def _inherit_prefix_events(
        events: MonitorResult | None,
        marks: list | None,
        resume_at: int | None,
        suffix: MonitorResult,
    ) -> MonitorResult:
        """Prepend the golden prefix's monitor events to a suffix-only result.

        A suffix-only faulty pass never executes the prefix layers, but their
        activations (hence their NaN/Inf/custom events) are bit-identical to
        the golden pass's — inheriting them reproduces the full-forward
        monitor result exactly.
        """
        if resume_at is None or events is None or marks is None:
            return suffix
        n_nan, n_inf, n_custom = marks[resume_at]
        return MonitorResult(
            nan_layers=list(events.nan_layers[:n_nan]) + suffix.nan_layers,
            inf_layers=list(events.inf_layers[:n_inf]) + suffix.inf_layers,
            custom_events=list(events.custom_events[:n_custom]) + suffix.custom_events,
        )

    def _run_step(
        self,
        batch: list[ImageRecord],
        epoch: int,
        step: int,
        group,
        group_index: int,
        collect_applied: bool,
        resil_group,
    ) -> None:
        task = self.task
        images = AlfiDataLoaderWrapper.stack_images(batch)
        cache_key = tuple(record.image_id for record in batch)

        # Plans are traced before the patch session opens (the faulty model
        # object exists, and is fault-free, outside the ``with group`` scope).
        golden_plan = self._plan_for(self.model, images)
        faulty_model = group.model
        faulty_plan = (
            golden_plan if faulty_model is self.model else self._plan_for(faulty_model, images)
        )
        resume_at = self._resume_index(golden_plan, faulty_plan, self.wrapper, group)

        # Golden pass runs before the patch is applied.  The monitor scan on
        # the golden pass is only paid when something consumes its events: a
        # suffix-only resume (prefix inheritance) or a cache recording.
        golden_raw, boundary, marks, golden_events = self._golden_pass(
            self.model,
            golden_plan,
            images,
            batch,
            self._cache_lane_key("golden", self.model, cache_key, images),
            resume_at,
            with_monitor=golden_plan is not None
            and (self.golden_cache is not None or resume_at is not None),
        )
        golden = task.finish(golden_raw)

        with group:
            monitor = self._monitors.monitor_for(group.model)
            monitor.reset()
            monitor.enabled = True
            try:
                if resume_at is not None and boundary is not None:
                    corrupted = task.finish(faulty_plan.resume(resume_at, boundary))
                else:
                    resume_at = None
                    corrupted = task.infer(group.model, images, batch)
            finally:
                monitor.enabled = False
            monitor_result = self._inherit_prefix_events(
                golden_events, marks, resume_at, monitor.collect()
            )
        applied = [fault.as_dict() for fault in group.applied_faults]
        resil_golden = resil_out = None
        if resil_group is not None:
            # The hardened model is judged against its *own* fault-free
            # baseline, so that range clamping of rare fault-free activations
            # is not misattributed to the injected fault.  Its golden pass
            # must run before the patch session opens.
            resil_plan = self._plan_for(self.resil_model, images)
            resil_faulty = resil_group.model
            resil_faulty_plan = (
                resil_plan
                if resil_faulty is self.resil_model
                else self._plan_for(resil_faulty, images)
            )
            resil_resume = self._resume_index(
                resil_plan, resil_faulty_plan, self.resil_wrapper, resil_group
            )
            resil_golden_raw, resil_boundary, _, _ = self._golden_pass(
                self.resil_model,
                resil_plan,
                images,
                batch,
                self._cache_lane_key("resil", self.resil_model, cache_key, images),
                resil_resume,
                with_monitor=False,
            )
            resil_golden = task.finish(resil_golden_raw)
            with resil_group:
                if resil_resume is not None and resil_boundary is not None:
                    resil_out = task.finish(resil_faulty_plan.resume(resil_resume, resil_boundary))
                else:
                    resil_out = task.infer(resil_group.model, images, batch)
        task.consume(
            StepContext(
                batch=batch,
                epoch=epoch,
                step=step,
                group_index=group_index,
                golden=golden,
                corrupted=corrupted,
                applied=applied,
                monitor=monitor_result,
                collect_applied=collect_applied,
                resil_golden=resil_golden,
                resil=resil_out,
            )
        )


# --------------------------------------------------------------------------- #
# sharded parallel execution
# --------------------------------------------------------------------------- #
@dataclass
class _ShardJob:
    """Self-contained, picklable description of one campaign shard."""

    index: int
    start: int
    stop: int
    model: Module
    resil_model: Module | None
    dataset: object
    task: CampaignTask
    scenario: ScenarioConfig
    error_model: ErrorModel | None
    input_shape: tuple[int, ...]
    dl_shuffle: bool
    fault_matrix: object
    shard_dir: str | None
    campaign_name: str
    prefix_reuse: bool = True
    cache_budget: int | None = None
    cache_spill_dir: str | None = None
    executor: str = "interpreter"


def _execute_shard(job: _ShardJob) -> tuple[int, object, dict[str, str]]:
    """Run one shard (in a worker process or in-process) and return its state."""
    # A fresh, unstarted task copy per attempt: an in-process retry must not
    # inherit the partial state a failed attempt accumulated into job.task.
    task = job.task.fresh()
    writer = (
        CampaignResultWriter(job.shard_dir, campaign_name=job.campaign_name)
        if job.shard_dir is not None
        else None
    )
    wrapper = ptfiwrap(
        job.model,
        scenario=job.scenario,
        input_shape=job.input_shape,
        fault_matrix=job.fault_matrix,
    )
    golden_cache = (
        GoldenCache(job.cache_budget, spill_dir=job.cache_spill_dir)
        if job.cache_budget is not None
        else None
    )
    core = CampaignCore(
        job.model,
        job.dataset,
        task,
        scenario=job.scenario,
        writer=writer,
        error_model=job.error_model,
        input_shape=job.input_shape,
        dl_shuffle=job.dl_shuffle,
        resil_model=job.resil_model,
        wrapper=wrapper,
        prefix_reuse=job.prefix_reuse,
        golden_cache=golden_cache,
        executor=job.executor,
    )
    stream_paths = core.run(start=job.start, stop=job.stop)
    return job.index, task.state, stream_paths


class ShardedCampaignExecutor:
    """Partition a campaign into contiguous shards and run them in parallel.

    The campaign's global step sequence is split into ``num_shards``
    contiguous, balanced ranges.  Each shard re-derives its exact slice of
    the work deterministically — the seeded epoch permutations, the shared
    pre-generated fault matrix and the shard's fault-group range — runs it
    through its own :class:`CampaignCore`, and streams records into a
    per-shard directory (``<output>/shards/shard_XX``).  Afterwards the shard
    states are merged in shard order and the per-shard record files are
    concatenated byte-identically to a single-process run.

    Execution is fault tolerant: shards are dispatched through a
    :class:`~repro.alficore.resilience.ShardSupervisor`, so a worker that
    raises, hangs past the per-shard timeout or dies (e.g. is OOM-killed) is
    re-queued by its deterministic step range with capped exponential
    backoff until the retry budget of the :class:`ExecutionPolicy` is
    exhausted — at which point a structured
    :class:`~repro.alficore.resilience.ShardError` is raised.  When a writer
    is configured, each shard streams into a ``shard_XX.wip`` directory that
    is atomically renamed to ``shard_XX`` on completion, and a crash-safe
    run manifest (``<campaign>_manifest.json``) tracks completed shard
    ranges; ``policy.resume=True`` skips the recorded shards and merges
    byte-identically to an uninterrupted run.

    ``workers=1`` executes the shards sequentially in-process (no
    subprocesses, no pickling) with the same retry budget and
    ``ShardError`` semantics; ``workers>1`` uses supervised worker
    processes.

    Args:
        core: the configured campaign (model, dataset, task, scenario...).
        workers: number of worker processes (1 = in-process execution).
        num_shards: number of shards (defaults to ``workers``).
        policy: retry/timeout/backoff/resume configuration (defaults to
            :class:`~repro.alficore.resilience.ExecutionPolicy`).
    """

    SHARD_STATE_FILENAME = "shard_state.pkl"

    def __init__(
        self,
        core: CampaignCore,
        workers: int = 1,
        num_shards: int | None = None,
        policy: ExecutionPolicy | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.core = core
        self.workers = int(workers)
        num_shards = self.workers if num_shards is None else int(num_shards)
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = min(num_shards, core.total_steps)
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.policy.validate()
        #: per-shard failure history of the last run (index -> attempts)
        self.attempt_log: dict[int, list[dict]] = {}

    def shard_bounds(self) -> list[tuple[int, int]]:
        """Contiguous, balanced ``[start, stop)`` step ranges of the shards."""
        total = self.core.total_steps
        n = self.num_shards
        return [(i * total // n, (i + 1) * total // n) for i in range(n)]

    def run(self) -> tuple[object, dict[str, str]]:
        """Execute all shards and return ``(merged_state, merged_stream_paths)``.

        The merged state is also installed as ``core.task.state`` so callers
        can keep reading results from the task they configured.
        """
        core = self.core
        policy = self.policy
        if policy.resume and core.writer is None:
            raise ValueError(
                "resume=True requires a result writer: the run manifest and the "
                "per-shard record files live under the campaign output directory"
            )
        if self.num_shards <= 1 and not policy.resume:
            stream_paths = core.run()
            return core.task.state, stream_paths

        bounds = self.shard_bounds()
        manifest: RunManifest | None = None
        shards_root: Path | None = None
        scratch_dir: Path | None = None
        completed: dict[int, tuple[int, object, dict[str, str]]] = {}
        if core.writer is not None:
            shards_root = core.writer.output_dir / "shards"
            manifest_path = (
                core.writer.output_dir / f"{core.writer.campaign_name}_manifest.json"
            )
            config = self._manifest_config(bounds)
            existing = RunManifest.load(manifest_path) if policy.resume else None
            if existing is not None:
                if not existing.matches(config):
                    raise ValueError(
                        f"cannot resume from {manifest_path}: it records a different "
                        "campaign configuration (model, scenario or shard geometry "
                        "changed); delete the manifest or re-run without resume"
                    )
                manifest = existing
                completed = self._load_completed(manifest, shards_root)
            else:
                manifest = RunManifest.fresh(manifest_path, config)
            self._clean_stale_wip(shards_root)
            scratch_dir = core.writer.output_dir / ".supervisor"

        cache = core.golden_cache
        cache_budget = cache.byte_budget if cache is not None else None
        cache_spill_dir = None
        if cache is not None:
            # Shards are separate processes: a shared spillover directory is
            # what lets them reuse each other's golden passes.
            if cache.spill_dir is not None:
                cache_spill_dir = str(cache.spill_dir)
            elif core.writer is not None:
                cache_spill_dir = str(core.writer.output_dir / "golden_cache")
        jobs = []
        for index, (start, stop) in enumerate(bounds):
            if index in completed:
                continue
            shard_dir = None
            if shards_root is not None:
                # Shards stream into a .wip directory that the finalizer
                # renames atomically on completion: a half-written shard is
                # never mistaken for a finished one.
                shard_dir = str(shards_root / f"shard_{index:02d}.wip")
            jobs.append(
                _ShardJob(
                    index=index,
                    start=start,
                    stop=stop,
                    model=core.model,
                    resil_model=core.resil_model,
                    dataset=core.dataset,
                    task=core.task.fresh(),
                    scenario=core.scenario,
                    error_model=core._error_model,
                    input_shape=core.input_shape,
                    dl_shuffle=core.dl_shuffle,
                    fault_matrix=core.wrapper.get_fault_matrix(),
                    shard_dir=shard_dir,
                    campaign_name=core.writer.campaign_name if core.writer is not None else "campaign",
                    prefix_reuse=core.prefix_reuse,
                    cache_budget=cache_budget,
                    cache_spill_dir=cache_spill_dir,
                    executor=core.executor,
                )
            )

        results: dict[int, tuple[int, object, dict[str, str]]] = dict(completed)
        if jobs:
            supervisor = ShardSupervisor(
                jobs,
                _execute_shard,
                workers=self.workers,
                policy=policy,
                scratch_dir=scratch_dir,
                prepare=self._prepare_attempt,
                finalize=self._make_finalizer(manifest, shards_root),
            )
            run_results = supervisor.run() if self.workers > 1 else supervisor.run_serial()
            self.attempt_log = supervisor.attempt_log
            for index, state, paths in run_results:
                results[index] = (index, state, paths)

        ordered = [results[index] for index in sorted(results)]
        merged_state = type(core.task).merge_states([state for _, state, _ in ordered])
        core.task.state = merged_state
        merged_paths: dict[str, str] = {}
        if core.writer is not None:
            merged_paths = self._merge_stream_files([paths for _, _, paths in ordered])
            if scratch_dir is not None:
                shutil.rmtree(scratch_dir, ignore_errors=True)
        return merged_state, merged_paths

    # ------------------------------------------------------------------ #
    # fault tolerance plumbing
    # ------------------------------------------------------------------ #
    def _manifest_config(self, bounds: list[tuple[int, int]]) -> dict:
        """Campaign configuration the manifest digest is derived from.

        Execution-policy knobs (retries, timeout, resume itself) are
        deliberately excluded: changing them between the interrupted run and
        the resume is legitimate and must not invalidate the manifest.
        """
        core = self.core
        return {
            "campaign_name": core.writer.campaign_name if core.writer is not None else "campaign",
            "task": type(core.task).__name__,
            "total_steps": core.total_steps,
            "num_shards": self.num_shards,
            "bounds": [[start, stop] for start, stop in bounds],
            "scenario": core.scenario.as_dict(),
        }

    @staticmethod
    def _prepare_attempt(job: _ShardJob, attempt: int) -> None:
        """Reset the shard's .wip directory before every (re-)attempt."""
        if job.shard_dir is None:
            return
        wip = Path(job.shard_dir)
        if wip.exists():
            shutil.rmtree(wip)
        wip.mkdir(parents=True, exist_ok=True)

    def _make_finalizer(self, manifest: RunManifest | None, shards_root: Path | None):
        """Parent-side success hook: commit the shard dir, update the manifest."""

        def finalize(
            job: _ShardJob, result: tuple[int, object, dict[str, str]]
        ) -> tuple[int, object, dict[str, str]]:
            index, state, stream_paths = result
            if job.shard_dir is None or shards_root is None:
                return result
            wip = Path(job.shard_dir)
            final = shards_root / f"shard_{index:02d}"
            files = {tag: Path(path).name for tag, path in stream_paths.items()}
            # The shard's merged-state payload travels with its record files
            # so a resumed run can rebuild the full result without re-running
            # the shard.
            atomic_write_pickle(
                wip / self.SHARD_STATE_FILENAME, {"state": state, "files": files}
            )
            if final.exists():
                shutil.rmtree(final)
            os.replace(wip, final)
            new_paths = {tag: str(final / name) for tag, name in files.items()}
            if manifest is not None:
                manifest.mark_completed(index, job.start, job.stop)
            return index, state, new_paths

        return finalize

    def _load_completed(
        self, manifest: RunManifest, shards_root: Path
    ) -> dict[int, tuple[int, object, dict[str, str]]]:
        """Rebuild results of manifest-recorded shards from their directories.

        A recorded shard whose directory or state pickle is missing or
        unreadable is demoted back to pending and simply re-run — resume
        never trusts bytes it cannot load.
        """
        completed: dict[int, tuple[int, object, dict[str, str]]] = {}
        for index in manifest.completed_indices():
            final = shards_root / f"shard_{index:02d}"
            try:
                with open(final / self.SHARD_STATE_FILENAME, "rb") as handle:
                    payload = pickle.load(handle)
                state = payload["state"]
                files = dict(payload["files"])
            except Exception:
                manifest.mark_pending(index)
                continue
            paths = {tag: str(final / name) for tag, name in files.items()}
            completed[index] = (index, state, paths)
        return completed

    @staticmethod
    def _clean_stale_wip(shards_root: Path) -> None:
        """Remove .wip leftovers of attempts killed before completion."""
        if not shards_root.exists():
            return
        for leftover in shards_root.glob("shard_*.wip"):
            shutil.rmtree(leftover, ignore_errors=True)

    def _merge_stream_files(self, shard_paths: list[dict[str, str]]) -> dict[str, str]:
        """Concatenate the shards' record files into the campaign directory."""
        merged: dict[str, str] = {}
        tags: list[str] = []
        for paths in shard_paths:
            for tag in paths:
                if tag not in tags:
                    tags.append(tag)
        for tag in tags:
            parts = [Path(paths[tag]) for paths in shard_paths if tag in paths]
            out_path = self.core.writer.output_dir / parts[0].name
            if parts[0].suffix == ".csv":
                merge_csv_files(parts, out_path)
            else:
                merge_json_array_files(parts, out_path)
            merged[tag] = str(out_path)
        return merged


# --------------------------------------------------------------------------- #
# the streaming classification campaign runner (PR-1 interface)
# --------------------------------------------------------------------------- #
class CampaignRunner:
    """Run a classification fault-injection campaign without model clones.

    A thin facade over :class:`CampaignCore` + :class:`ClassificationTask`:
    golden and faulty inference run batch-wise in lock-step through the
    clone-free sessions, per-inference records are streamed (not buffered)
    and only aggregate KPIs are kept and returned as a
    :class:`CampaignSummary`.

    Args:
        model: the fault-free baseline classifier (restored bit-exactly after
            every weight fault group).
        dataset: map-style dataset yielding ``(image, label)``.
        scenario: campaign configuration.
        writer: optional :class:`CampaignResultWriter`; when given, the meta
            file, fault matrix, applied-fault log and per-inference golden /
            corrupted CSVs are written (records are streamed, not buffered).
        error_model: overrides the error model derived from the scenario.
        input_shape: per-sample input shape used for model profiling.
        custom_monitors: extra monitoring callbacks attached alongside the
            NaN/Inf monitor.
        dl_shuffle: shuffle the dataset between epochs (seeded).
        workers: worker processes for sharded execution (1 = serial).
        num_shards: campaign shards (defaults to ``workers``); the merged
            output of any shard count is bit-identical to a serial run.
        prefix_reuse: suffix-only faulty forwards from the first faulted
            layer (bit-identical to full forwards; on by default).
        golden_cache: optional epoch-invariant :class:`GoldenCache` shared
            by all epochs (and, via file spillover, all shards).
    """

    def __init__(
        self,
        model: Module,
        dataset,
        scenario: ScenarioConfig | None = None,
        writer: CampaignResultWriter | None = None,
        error_model: ErrorModel | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        custom_monitors: list[Callable] | None = None,
        dl_shuffle: bool = False,
        workers: int = 1,
        num_shards: int | None = None,
        prefix_reuse: bool = True,
        golden_cache: GoldenCache | None = None,
    ):
        warn_once("CampaignRunner", "run()")
        self.task = ClassificationTask()
        self.core = CampaignCore(
            model,
            dataset,
            self.task,
            scenario=scenario,
            writer=writer,
            error_model=error_model,
            input_shape=input_shape,
            custom_monitors=custom_monitors,
            dl_shuffle=dl_shuffle,
            prefix_reuse=prefix_reuse,
            golden_cache=golden_cache,
        )
        self.workers = workers
        self.num_shards = num_shards

    @property
    def model(self) -> Module:
        return self.core.model

    @property
    def dataset(self):
        return self.core.dataset

    @property
    def scenario(self) -> ScenarioConfig:
        return self.core.scenario

    @property
    def writer(self) -> CampaignResultWriter | None:
        return self.core.writer

    @property
    def wrapper(self) -> ptfiwrap:
        return self.core.wrapper

    def run(self) -> CampaignSummary:
        """Execute the campaign and return the aggregate KPIs.

        Delegates to the unified Experiment API entry point with the
        pre-built :class:`CampaignCore` as an artifact, so the streamed
        record files are byte-identical to a pure-spec run.
        """
        from repro.experiments.runner import Artifacts, facade_spec, run

        self.task.reset()
        # prefix_reuse/caching in the spec are informational here: the
        # pre-built core (passed as an artifact) already carries them.  The
        # kpi file is written by _summarize in the runner's own shape, so the
        # task plug-in's kpis write is turned off.
        spec = facade_spec(
            name=self.scenario.model_name,
            task="classification",
            scenario=self.scenario,
            workers=self.workers,
            num_shards=self.num_shards,
            prefix_reuse=self.core.prefix_reuse,
            task_options={"write_kpis": False},
        )
        result = run(spec, artifacts=Artifacts(core=self.core))
        return self._summarize(result.state, result.output_files)

    def _summarize(self, state: ClassificationState, stream_paths: dict[str, str]) -> CampaignSummary:
        n = state.inferences
        outcome_counts = {outcome.value: state.outcomes.get(outcome, 0) for outcome in FaultOutcome}
        output_files: dict[str, str] = {}
        writer = self.core.writer
        if writer is not None:
            # The Experiment-API write path persisted the meta yml and the
            # fault matrix (its kpis write is disabled via task_options); the
            # runner-shaped kpi summary is written below.
            output_files = dict(stream_paths)
        summary = CampaignSummary(
            model_name=self.scenario.model_name,
            num_inferences=n,
            num_fault_groups=state.groups,
            num_applied_faults=state.applied_faults,
            golden_top1_accuracy=state.golden_top1_hits / n if n else 0.0,
            golden_top5_accuracy=state.golden_top5_hits / n if n else 0.0,
            corrupted_top1_accuracy=state.corrupted_top1_hits / n if n else 0.0,
            masked_rate=state.outcomes.get(FaultOutcome.MASKED, 0) / n if n else 0.0,
            sde_rate=state.outcomes.get(FaultOutcome.SDE, 0) / n if n else 0.0,
            due_rate=state.outcomes.get(FaultOutcome.DUE, 0) / n if n else 0.0,
            outcome_counts=outcome_counts,
            output_files=output_files,
        )
        if writer is not None:
            summary.output_files["kpis"] = str(writer.write_kpi_summary(summary.as_dict()))
        return summary
