"""Scenario configuration (the ``default.yml`` of the paper).

All parameters of a fault injection campaign are defined in a single
configuration object that can be loaded from / stored to a yml file, is
validated on construction, and is accessible (and modifiable) at run time for
iterative experiments via ``ptfiwrap.get_scenario()`` /
``ptfiwrap.set_scenario()``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path

import yaml

# Version of the serialized scenario schema.  Bump when a field is added,
# removed or changes meaning; ``from_dict`` refuses documents written by a
# *newer* schema (older documents without the key load as version 1).
SCENARIO_SCHEMA_VERSION = 1

# Allowed values for the categorical scenario fields.
INJECTION_TARGETS = ("neurons", "weights")
VALUE_TYPES = ("bitflip", "number", "stuck_at")
INJECTION_POLICIES = ("per_image", "per_batch", "per_epoch")
FAULT_PERSISTENCE = ("transient", "permanent")
LAYER_TYPES = ("conv2d", "conv3d", "fcc")
SUPPORTED_QUANTIZATION = ("float32", "float16", "float64", "int8", "int16", "int32")

# Value types contributed by plug-ins (``repro.experiments.register_error_model``)
# on top of the built-in VALUE_TYPES.
_EXTRA_VALUE_TYPES: set[str] = set()


def register_value_type(name: str) -> None:
    """Allow ``rnd_value_type=name`` in scenarios (plug-in error models)."""
    name = str(name)
    if name not in VALUE_TYPES:
        _EXTRA_VALUE_TYPES.add(name)


def unregister_value_type(name: str) -> None:
    """Inverse of :func:`register_value_type` (built-ins are untouched)."""
    _EXTRA_VALUE_TYPES.discard(str(name))


def known_value_types() -> tuple[str, ...]:
    """All accepted ``rnd_value_type`` values (built-in + registered)."""
    return VALUE_TYPES + tuple(sorted(_EXTRA_VALUE_TYPES))


def coerce_schema_version(value, supported: int, label: str) -> int:
    """Normalize a document's ``schema_version`` value.

    Missing/``None`` means "current"; non-integers and versions newer than
    ``supported`` raise ``ValueError``.  Shared by the scenario and the
    experiment-spec loaders so the version policy has one implementation.
    """
    if value is None:
        return supported
    if isinstance(value, bool):
        raise ValueError(f"{label} schema_version must be an integer, got {value!r}")
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{label} schema_version must be an integer, got {value!r}") from None
    if value > supported:
        raise ValueError(
            f"{label} schema version {value} is newer than the supported "
            f"version {supported}; upgrade the package to load it"
        )
    return value


@dataclass
class ScenarioConfig:
    """Complete description of a fault injection campaign.

    The field names follow the paper's ``default.yml``: the total number of
    pre-generated faults is ``dataset_size * num_runs * max_faults_per_image``
    (Section V-C), faults target either neurons or weights, values are
    corrupted by bit flips within ``rnd_bit_range`` or replaced by random
    numbers in ``[rnd_value_min, rnd_value_max]``, and the fault locations can
    be restricted to layer types, explicit layer ranges and optionally
    weighted by relative layer size (Eq. 1).
    """

    # ---------------------------------------------------------------- #
    # campaign extent
    # ---------------------------------------------------------------- #
    dataset_size: int = 10
    num_runs: int = 1
    max_faults_per_image: int = 1
    batch_size: int = 1

    # ---------------------------------------------------------------- #
    # fault target and model
    # ---------------------------------------------------------------- #
    injection_target: str = "neurons"  # "neurons" | "weights"
    inj_policy: str = "per_image"  # "per_image" | "per_batch" | "per_epoch"
    fault_persistence: str = "transient"  # "transient" | "permanent"

    # ---------------------------------------------------------------- #
    # value corruption
    # ---------------------------------------------------------------- #
    rnd_value_type: str = "bitflip"  # "bitflip" | "number" | "stuck_at"
    rnd_bit_range: tuple[int, int] = (0, 31)
    rnd_value_min: float = -1.0
    rnd_value_max: float = 1.0
    quantization: str = "float32"
    stuck_at_value: int = 1

    # ---------------------------------------------------------------- #
    # location selection
    # ---------------------------------------------------------------- #
    layer_types: tuple[str, ...] = ("conv2d", "conv3d", "fcc")
    layer_range: tuple[int, int] | None = None  # inclusive (start, end); None = all layers
    weighted_layer_selection: bool = True

    # ---------------------------------------------------------------- #
    # bookkeeping
    # ---------------------------------------------------------------- #
    model_name: str = "model"
    dataset_name: str = "dataset"
    random_seed: int = 1234
    # Path of a pre-generated fault matrix to reuse; normalized to
    # ``Path | None`` by ``validate`` (strings are accepted on input).
    fault_file: str | Path | None = None

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check all fields for consistency; raise ``ValueError`` on problems."""
        if self.dataset_size <= 0:
            raise ValueError(f"dataset_size must be positive, got {self.dataset_size}")
        if self.num_runs <= 0:
            raise ValueError(f"num_runs must be positive, got {self.num_runs}")
        if self.max_faults_per_image <= 0:
            raise ValueError(
                f"max_faults_per_image must be positive, got {self.max_faults_per_image}"
            )
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.injection_target not in INJECTION_TARGETS:
            raise ValueError(
                f"injection_target must be one of {INJECTION_TARGETS}, got {self.injection_target!r}"
            )
        if self.inj_policy not in INJECTION_POLICIES:
            raise ValueError(
                f"inj_policy must be one of {INJECTION_POLICIES}, got {self.inj_policy!r}"
            )
        if self.fault_persistence not in FAULT_PERSISTENCE:
            raise ValueError(
                f"fault_persistence must be one of {FAULT_PERSISTENCE}, got {self.fault_persistence!r}"
            )
        if self.rnd_value_type not in VALUE_TYPES and self.rnd_value_type not in _EXTRA_VALUE_TYPES:
            raise ValueError(
                f"rnd_value_type must be one of {known_value_types()}, got {self.rnd_value_type!r}"
            )
        self.fault_file = Path(self.fault_file) if self.fault_file else None
        if self.quantization not in SUPPORTED_QUANTIZATION:
            raise ValueError(
                f"quantization must be one of {SUPPORTED_QUANTIZATION}, got {self.quantization!r}"
            )
        self.rnd_bit_range = (int(self.rnd_bit_range[0]), int(self.rnd_bit_range[1]))
        low, high = self.rnd_bit_range
        max_bit = {"float32": 31, "float64": 63, "float16": 15, "int8": 7, "int16": 15, "int32": 31}[
            self.quantization
        ]
        if not (0 <= low <= high <= max_bit):
            raise ValueError(
                f"rnd_bit_range {self.rnd_bit_range} invalid for {self.quantization} "
                f"(bits 0..{max_bit})"
            )
        if self.rnd_value_min > self.rnd_value_max:
            raise ValueError(
                f"rnd_value_min ({self.rnd_value_min}) must not exceed rnd_value_max "
                f"({self.rnd_value_max})"
            )
        if self.stuck_at_value not in (0, 1):
            raise ValueError(f"stuck_at_value must be 0 or 1, got {self.stuck_at_value}")
        self.layer_types = tuple(self.layer_types)
        for layer_type in self.layer_types:
            if layer_type not in LAYER_TYPES:
                raise ValueError(
                    f"layer type {layer_type!r} not supported; choose from {LAYER_TYPES}"
                )
        if not self.layer_types:
            raise ValueError("layer_types must contain at least one entry")
        if self.layer_range is not None:
            self.layer_range = (int(self.layer_range[0]), int(self.layer_range[1]))
            if self.layer_range[0] > self.layer_range[1] or self.layer_range[0] < 0:
                raise ValueError(f"invalid layer_range {self.layer_range}")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def total_faults(self) -> int:
        """Number of faults to pre-generate: ``n = a * b * c`` (Section V-C)."""
        return self.dataset_size * self.num_runs * self.max_faults_per_image

    @property
    def number_of_inferences(self) -> int:
        """Number of single-image inferences in the campaign."""
        return self.dataset_size * self.num_runs

    # ------------------------------------------------------------------ #
    # conversion / persistence
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Return the configuration as a plain (yml-serialisable) dictionary."""
        raw = dataclasses.asdict(self)
        raw["schema_version"] = SCENARIO_SCHEMA_VERSION
        raw["rnd_bit_range"] = list(self.rnd_bit_range)
        raw["layer_types"] = list(self.layer_types)
        raw["layer_range"] = list(self.layer_range) if self.layer_range is not None else None
        raw["fault_file"] = str(self.fault_file) if self.fault_file is not None else None
        return raw

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        """Build a configuration from a dictionary; unknown keys are an error."""
        data = dict(data)
        coerce_schema_version(data.pop("schema_version", None), SCENARIO_SCHEMA_VERSION, "scenario")
        known = {f.name for f in dataclasses.fields(cls)}
        filtered = {key: value for key, value in data.items() if key in known}
        unknown = set(data) - known
        if unknown:
            raise KeyError(
                f"unknown scenario keys: {sorted(unknown)}; known keys: {sorted(known)}"
            )
        if "rnd_bit_range" in filtered and filtered["rnd_bit_range"] is not None:
            filtered["rnd_bit_range"] = tuple(filtered["rnd_bit_range"])
        if "layer_types" in filtered and filtered["layer_types"] is not None:
            filtered["layer_types"] = tuple(filtered["layer_types"])
        if "layer_range" in filtered and filtered["layer_range"] is not None:
            filtered["layer_range"] = tuple(filtered["layer_range"])
        return cls(**filtered)

    def copy(self, **overrides) -> "ScenarioConfig":
        """Return a copy with selected fields replaced (and re-validated)."""
        data = self.as_dict()
        data.update(overrides)
        return ScenarioConfig.from_dict(data)


def default_scenario(**overrides) -> ScenarioConfig:
    """Return the default scenario, optionally with overridden fields."""
    return ScenarioConfig().copy(**overrides) if overrides else ScenarioConfig()


SCENARIO_FILE_HEADER = (
    "# PyTorchALFI scenario configuration\n"
    "# Total faults = dataset_size * num_runs * max_faults_per_image\n"
)


def save_scenario(config: ScenarioConfig, path: str | Path) -> Path:
    """Write a scenario configuration to a yml file (the meta-file of a run)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(SCENARIO_FILE_HEADER)
        yaml.safe_dump(config.as_dict(), handle, default_flow_style=False, sort_keys=True)
    return path


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Load a scenario configuration from a yml file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"scenario file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        data = yaml.safe_load(handle) or {}
    if not isinstance(data, dict):
        raise ValueError(f"scenario file {path} does not contain a mapping")
    return ScenarioConfig.from_dict(data)
