"""High-level campaign runner for image classification networks.

``TestErrorModels_ImgClass`` encapsulates the complete workflow of Section
V-B for classification CNNs: it wraps the dataset with the metadata-enriched
loader, builds the ``ptfiwrap`` wrapper, pre-generates (or reloads) the fault
matrix, runs golden / corrupted / optionally hardened inference in lock-step
over the dataset, monitors NaN/Inf events, writes the three result file sets
(meta yml, fault binaries, CSV outputs) and finally computes the KPIs
(top-k accuracy, masked/SDE/DUE rates).

Faulty inference goes through the clone-free fault group sessions: weight
faults are patched into the original model in place (and restored bit-exactly
after each group), neuron faults reuse one hooked clone.  The applied-fault
log is collected per group from the sessions — the injector's shared log is
no longer grown across campaign iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.alficore.monitoring import InferenceMonitor, output_has_nan_or_inf
from repro.alficore.results import CampaignResultWriter, ClassificationRecord
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.data.wrapper import AlfiDataLoaderWrapper
from repro.eval.classification import (
    ClassificationCampaignResult,
    evaluate_classification_campaign,
    top_k_predictions,
)
from repro.nn.module import Module


@dataclass
class ImgClassCampaignOutput:
    """Everything a classification campaign produces."""

    corrupted: ClassificationCampaignResult
    resil: ClassificationCampaignResult | None
    golden_logits: np.ndarray
    corrupted_logits: np.ndarray
    resil_logits: np.ndarray | None
    labels: np.ndarray
    due_flags: np.ndarray
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly KPI summary."""
        summary = {"corrupted": self.corrupted.as_dict(), "output_files": dict(self.output_files)}
        if self.resil is not None:
            summary["resil"] = self.resil.as_dict()
        return summary


class TestErrorModels_ImgClass:
    """Turnkey fault injection campaigns for classification models.

    Args:
        model: the fault-free baseline classifier.
        resil_model: optional hardened ("resil") variant of the same
            architecture; it is evaluated under the exact same faults.
        model_name: name used in result files.
        dataset: a map-style dataset yielding ``(image, label)`` tuples.
        config_location: optional path of a scenario yml file.
        scenario: optional explicit :class:`ScenarioConfig` (overrides
            ``config_location``).
        output_dir: directory for the result files; ``None`` disables writing.
        input_shape: per-sample input shape used for model profiling.
        dl_shuffle: shuffle the dataset between epochs.
        device: accepted for API compatibility; unused by the numpy substrate.
    """

    def __init__(
        self,
        model: Module,
        resil_model: Module | None = None,
        model_name: str = "model",
        dataset=None,
        config_location: str | Path | None = None,
        scenario: ScenarioConfig | None = None,
        output_dir: str | Path | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        dl_shuffle: bool = False,
        device: str = "cpu",
    ):
        if dataset is None:
            raise ValueError("a dataset is required to run a fault injection campaign")
        self.model = model.eval()
        self.resil_model = resil_model.eval() if resil_model is not None else None
        self.model_name = model_name
        self.dataset = dataset
        self.input_shape = tuple(input_shape)
        self.dl_shuffle = dl_shuffle
        self.device = device
        if scenario is not None:
            self._base_scenario = scenario
        elif config_location is not None:
            self._base_scenario = load_scenario(config_location)
        else:
            self._base_scenario = default_scenario()
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.wrapper: ptfiwrap | None = None
        self.resil_wrapper: ptfiwrap | None = None
        # Campaign-wide applied-fault log, collected per group from the
        # clone-free sessions (the injector's shared log stays empty).
        self.applied_faults: list[dict] = []

    # ------------------------------------------------------------------ #
    # campaign entry point
    # ------------------------------------------------------------------ #
    def test_rand_ImgClass_SBFs_inj(
        self,
        fault_file: str = "",
        num_faults: int = 1,
        inj_policy: str = "per_image",
        num_runs: int = 1,
    ) -> ImgClassCampaignOutput:
        """Run a random single/multi bit-flip injection campaign.

        Args:
            fault_file: optional path of a previously stored fault matrix to
                replay; empty string generates a fresh fault set.
            num_faults: faults applied concurrently per image
                (``max_faults_per_image``).
            inj_policy: ``per_image``, ``per_batch`` or ``per_epoch``.
            num_runs: number of epochs over the dataset.

        Returns:
            :class:`ImgClassCampaignOutput` with KPI objects, raw logits and
            the paths of all written result files.
        """
        scenario = self._base_scenario.copy(
            dataset_size=len(self.dataset),
            max_faults_per_image=num_faults,
            inj_policy=inj_policy,
            num_runs=num_runs,
            model_name=self.model_name,
            # The campaign loop below feeds images one at a time, so fault
            # batch positions must stay within a batch of one.
            batch_size=1,
        )
        self.wrapper = ptfiwrap(self.model, scenario=scenario, input_shape=self.input_shape)
        if fault_file:
            self.wrapper.update_scenario(fault_file=fault_file)

        fault_matrix = self.wrapper.get_fault_matrix()
        if self.resil_model is not None:
            self.resil_wrapper = ptfiwrap(
                self.resil_model, scenario=scenario, input_shape=self.input_shape
            )
            self.resil_wrapper.set_fault_matrix(fault_matrix)

        loader = AlfiDataLoaderWrapper(
            self.dataset, batch_size=1, shuffle=self.dl_shuffle, seed=scenario.random_seed
        )
        return self._run_campaign(scenario, loader)

    # ------------------------------------------------------------------ #
    # campaign execution
    # ------------------------------------------------------------------ #
    def _run_campaign(
        self,
        scenario: ScenarioConfig,
        loader: AlfiDataLoaderWrapper,
    ) -> ImgClassCampaignOutput:
        assert self.wrapper is not None
        golden_logits: list[np.ndarray] = []
        corrupted_logits: list[np.ndarray] = []
        resil_logits: list[np.ndarray] = []
        resil_golden_logits: list[np.ndarray] = []
        labels: list[int] = []
        due_flags: list[bool] = []
        corrupted_records: list[ClassificationRecord] = []
        golden_records: list[ClassificationRecord] = []
        resil_records: list[ClassificationRecord] = []

        self.applied_faults = []
        groups = self.wrapper.get_fault_group_iter()
        resil_groups = (
            self.resil_wrapper.get_fault_group_iter() if self.resil_wrapper is not None else None
        )
        for epoch in range(scenario.num_runs):
            for batch in loader:
                record = batch[0]
                image = record.image[None, ...]
                label = int(record.target)
                golden_out = np.asarray(self.model(image))
                group = next(groups)
                with group:
                    monitor = InferenceMonitor(group.model)
                    with monitor:
                        corrupted_out = np.asarray(group.model(image))
                    monitor_result = monitor.collect()
                # The sessions log per group: no shared, unbounded fault log.
                applied = [fault.as_dict() for fault in group.applied_faults]
                self.applied_faults.extend(applied)
                out_nan, out_inf = output_has_nan_or_inf(corrupted_out)
                nan_detected = monitor_result.nan_detected or out_nan
                inf_detected = monitor_result.inf_detected or out_inf

                golden_logits.append(golden_out[0])
                corrupted_logits.append(corrupted_out[0])
                labels.append(label)
                due_flags.append(nan_detected or inf_detected)

                golden_records.append(
                    self._make_record(record, label, golden_out, [], False, False, "golden")
                )
                corrupted_records.append(
                    self._make_record(
                        record, label, corrupted_out, applied, nan_detected, inf_detected, "corrupted"
                    )
                )
                if resil_groups is not None:
                    # The hardened model is judged against its *own* fault-free
                    # baseline, so that range clamping of rare fault-free
                    # activations is not misattributed to the injected fault.
                    # Its golden pass must run before the patch session opens.
                    resil_golden_logits.append(np.asarray(self.resil_model(image))[0])
                    with next(resil_groups) as resil_group:
                        resil_out = np.asarray(resil_group.model(image))
                    resil_nan, resil_inf = output_has_nan_or_inf(resil_out)
                    resil_logits.append(resil_out[0])
                    resil_records.append(
                        self._make_record(
                            record, label, resil_out, applied, resil_nan, resil_inf, "resil"
                        )
                    )
        groups.close()
        if resil_groups is not None:
            resil_groups.close()

        golden_arr = np.stack(golden_logits)
        corrupted_arr = np.stack(corrupted_logits)
        labels_arr = np.asarray(labels, dtype=np.int64)
        due_arr = np.asarray(due_flags, dtype=bool)
        corrupted_result = evaluate_classification_campaign(
            golden_arr, corrupted_arr, labels_arr, due_arr, model_name=self.model_name
        )
        resil_result = None
        resil_arr = None
        if resil_logits:
            resil_arr = np.stack(resil_logits)
            resil_golden_arr = np.stack(resil_golden_logits)
            resil_result = evaluate_classification_campaign(
                resil_golden_arr, resil_arr, labels_arr, model_name=f"{self.model_name}_resil"
            )

        output_files = self._write_outputs(
            scenario, golden_records, corrupted_records, resil_records, corrupted_result, resil_result
        )
        return ImgClassCampaignOutput(
            corrupted=corrupted_result,
            resil=resil_result,
            golden_logits=golden_arr,
            corrupted_logits=corrupted_arr,
            resil_logits=resil_arr,
            labels=labels_arr,
            due_flags=due_arr,
            output_files=output_files,
        )

    def _make_record(
        self,
        record,
        label: int,
        logits: np.ndarray,
        applied: list[dict],
        nan_detected: bool,
        inf_detected: bool,
        tag: str,
    ) -> ClassificationRecord:
        classes, probabilities = top_k_predictions(np.asarray(logits), k=5)
        return ClassificationRecord(
            image_id=record.image_id,
            file_name=record.file_name,
            ground_truth=label,
            top5_classes=[int(c) for c in classes[0]],
            top5_probabilities=[float(p) for p in probabilities[0]],
            fault_positions=applied,
            nan_detected=nan_detected,
            inf_detected=inf_detected,
            model_tag=tag,
        )

    def _write_outputs(
        self,
        scenario: ScenarioConfig,
        golden_records: list[ClassificationRecord],
        corrupted_records: list[ClassificationRecord],
        resil_records: list[ClassificationRecord],
        corrupted_result: ClassificationCampaignResult,
        resil_result: ClassificationCampaignResult | None,
    ) -> dict[str, str]:
        if self.output_dir is None or self.wrapper is None:
            return {}
        writer = CampaignResultWriter(self.output_dir, campaign_name=self.model_name)
        paths = {
            "meta": str(writer.write_meta(scenario, extra={"model_name": self.model_name})),
            "faults": str(writer.write_fault_matrix(self.wrapper.get_fault_matrix())),
            "applied_faults": str(writer.write_applied_faults(self.applied_faults)),
            "golden_csv": str(writer.write_classification_csv(golden_records, tag="golden")),
            "corrupted_csv": str(writer.write_classification_csv(corrupted_records, tag="corrupted")),
        }
        kpis = {"corrupted": corrupted_result.as_dict()}
        if resil_records:
            paths["resil_csv"] = str(writer.write_classification_csv(resil_records, tag="resil"))
        if resil_result is not None:
            kpis["resil"] = resil_result.as_dict()
        paths["kpis"] = str(writer.write_kpi_summary(kpis))
        return paths
