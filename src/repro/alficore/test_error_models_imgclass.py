"""Deprecated facade for image classification campaigns.

``TestErrorModels_ImgClass`` is kept as a thin shim over the unified
Experiment API (:mod:`repro.experiments`): it builds an
:class:`~repro.experiments.spec.ExperimentSpec` from its constructor
arguments, hands its in-memory model/dataset objects over as
:class:`~repro.experiments.runner.Artifacts` and delegates to
:func:`repro.experiments.run` — so facade runs and pure-spec runs share one
code path and produce byte-identical result files.  New code should define
a spec (YAML or ``Experiment.builder()``) and call ``run`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.alficore._deprecation import warn_once
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.eval.classification import ClassificationCampaignResult
from repro.nn.module import Module


@dataclass
class ImgClassCampaignOutput:
    """Everything a classification campaign produces."""

    corrupted: ClassificationCampaignResult
    resil: ClassificationCampaignResult | None
    golden_logits: np.ndarray
    corrupted_logits: np.ndarray
    resil_logits: np.ndarray | None
    labels: np.ndarray
    due_flags: np.ndarray
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly KPI summary."""
        summary = {"corrupted": self.corrupted.as_dict(), "output_files": dict(self.output_files)}
        if self.resil is not None:
            summary["resil"] = self.resil.as_dict()
        return summary


class TestErrorModels_ImgClass:
    """Turnkey fault injection campaigns for classification models.

    Args:
        model: the fault-free baseline classifier.
        resil_model: optional hardened ("resil") variant of the same
            architecture; it is evaluated under the exact same faults.
        model_name: name used in result files.
        dataset: a map-style dataset yielding ``(image, label)`` tuples.
        config_location: optional path of a scenario yml file.
        scenario: optional explicit :class:`ScenarioConfig` (overrides
            ``config_location``).
        output_dir: directory for the result files; ``None`` disables writing.
        input_shape: per-sample input shape used for model profiling.
        dl_shuffle: shuffle the dataset between epochs.
        device: accepted for API compatibility; unused by the numpy substrate.
        workers: worker processes for sharded campaign execution (1 = serial).
        num_shards: campaign shards (defaults to ``workers``).
        prefix_reuse: suffix-only faulty forwards from the first faulted
            layer (bit-identical to full forwards; on by default).
        golden_cache: optional epoch-invariant
            :class:`~repro.alficore.goldencache.GoldenCache` so per-epoch
            campaigns compute golden outputs once per image.
    """

    def __init__(
        self,
        model: Module,
        resil_model: Module | None = None,
        model_name: str = "model",
        dataset=None,
        config_location: str | Path | None = None,
        scenario: ScenarioConfig | None = None,
        output_dir: str | Path | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        dl_shuffle: bool = False,
        device: str = "cpu",
        workers: int = 1,
        num_shards: int | None = None,
        prefix_reuse: bool = True,
        golden_cache=None,
    ):
        warn_once("TestErrorModels_ImgClass", "run()")
        if dataset is None:
            raise ValueError("a dataset is required to run a fault injection campaign")
        self.model = model.eval()
        self.resil_model = resil_model.eval() if resil_model is not None else None
        self.model_name = model_name
        self.dataset = dataset
        self.input_shape = tuple(input_shape)
        self.dl_shuffle = dl_shuffle
        self.device = device
        self.workers = workers
        self.num_shards = num_shards
        self.prefix_reuse = prefix_reuse
        self.golden_cache = golden_cache
        if scenario is not None:
            self._base_scenario = scenario
        elif config_location is not None:
            self._base_scenario = load_scenario(config_location)
        else:
            self._base_scenario = default_scenario()
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.wrapper: ptfiwrap | None = None
        self.resil_wrapper: ptfiwrap | None = None
        # Campaign-wide applied-fault log, collected per group from the
        # clone-free sessions (the injector's shared log stays empty).
        self.applied_faults: list[dict] = []

    # ------------------------------------------------------------------ #
    # campaign entry point
    # ------------------------------------------------------------------ #
    def test_rand_ImgClass_SBFs_inj(
        self,
        fault_file: str = "",
        num_faults: int = 1,
        inj_policy: str = "per_image",
        num_runs: int = 1,
    ) -> ImgClassCampaignOutput:
        """Run a random single/multi bit-flip injection campaign.

        Args:
            fault_file: optional path of a previously stored fault matrix to
                replay; empty string generates a fresh fault set.
            num_faults: faults applied concurrently per image
                (``max_faults_per_image``).
            inj_policy: ``per_image``, ``per_batch`` or ``per_epoch``.
            num_runs: number of epochs over the dataset.

        Returns:
            :class:`ImgClassCampaignOutput` with KPI objects, raw logits and
            the paths of all written result files.
        """
        from repro.experiments.runner import Artifacts, facade_run_scenario, facade_spec, run

        spec = facade_spec(
            name=self.model_name,
            task="classification",
            scenario=facade_run_scenario(
                self._base_scenario,
                num_faults=num_faults,
                inj_policy=inj_policy,
                num_runs=num_runs,
                model_name=self.model_name,
                fault_file=fault_file,
            ),
            workers=self.workers,
            num_shards=self.num_shards,
            prefix_reuse=self.prefix_reuse,
            input_shape=self.input_shape,
            dl_shuffle=self.dl_shuffle,
            output_dir=self.output_dir,
        )
        result = run(
            spec,
            artifacts=Artifacts(
                model=self.model,
                resil_model=self.resil_model,
                dataset=self.dataset,
                golden_cache=self.golden_cache,
            ),
        )
        self.wrapper = result.wrapper
        self.resil_wrapper = result.core.resil_wrapper
        self.applied_faults = list(result.state.applied_log)
        return ImgClassCampaignOutput(
            corrupted=result.results["corrupted"],
            resil=result.results.get("resil"),
            golden_logits=result.extras["golden_logits"],
            corrupted_logits=result.extras["corrupted_logits"],
            resil_logits=result.extras["resil_logits"],
            labels=result.extras["labels"],
            due_flags=result.extras["due_flags"],
            output_files=result.output_files,
        )
