"""High-level campaign runner for image classification networks.

``TestErrorModels_ImgClass`` encapsulates the complete workflow of Section
V-B for classification CNNs as a thin facade over the task-pluggable
:class:`~repro.alficore.campaign.CampaignCore`: it wraps the dataset with the
metadata-enriched loader, builds the ``ptfiwrap`` wrapper, pre-generates (or
reloads) the fault matrix, runs golden / corrupted / optionally hardened
inference in lock-step over the dataset, monitors NaN/Inf events, streams the
result file sets (meta yml, fault binaries, CSV outputs) and finally computes
the KPIs (top-k accuracy, masked/SDE/DUE rates).

Faulty inference goes through the clone-free fault group sessions: weight
faults are patched into the original model in place (and restored bit-exactly
after each group), neuron faults reuse one hooked clone.  The applied-fault
log is collected per group from the sessions — the injector's shared log is
no longer grown across campaign iterations.  With ``workers`` / ``num_shards``
the campaign is partitioned into contiguous shards and executed in parallel;
the merged output is bit-identical to a serial run of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.alficore.campaign import (
    CampaignCore,
    ClassificationTask,
    ShardedCampaignExecutor,
    normalize_campaign_scenario,
)
from repro.alficore.results import CampaignResultWriter
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.eval.classification import (
    ClassificationCampaignResult,
    evaluate_classification_campaign,
)
from repro.nn.module import Module


@dataclass
class ImgClassCampaignOutput:
    """Everything a classification campaign produces."""

    corrupted: ClassificationCampaignResult
    resil: ClassificationCampaignResult | None
    golden_logits: np.ndarray
    corrupted_logits: np.ndarray
    resil_logits: np.ndarray | None
    labels: np.ndarray
    due_flags: np.ndarray
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly KPI summary."""
        summary = {"corrupted": self.corrupted.as_dict(), "output_files": dict(self.output_files)}
        if self.resil is not None:
            summary["resil"] = self.resil.as_dict()
        return summary


class TestErrorModels_ImgClass:
    """Turnkey fault injection campaigns for classification models.

    Args:
        model: the fault-free baseline classifier.
        resil_model: optional hardened ("resil") variant of the same
            architecture; it is evaluated under the exact same faults.
        model_name: name used in result files.
        dataset: a map-style dataset yielding ``(image, label)`` tuples.
        config_location: optional path of a scenario yml file.
        scenario: optional explicit :class:`ScenarioConfig` (overrides
            ``config_location``).
        output_dir: directory for the result files; ``None`` disables writing.
        input_shape: per-sample input shape used for model profiling.
        dl_shuffle: shuffle the dataset between epochs.
        device: accepted for API compatibility; unused by the numpy substrate.
        workers: worker processes for sharded campaign execution (1 = serial).
        num_shards: campaign shards (defaults to ``workers``).
        prefix_reuse: suffix-only faulty forwards from the first faulted
            layer (bit-identical to full forwards; on by default).
        golden_cache: optional epoch-invariant
            :class:`~repro.alficore.goldencache.GoldenCache` so per-epoch
            campaigns compute golden outputs once per image.
    """

    def __init__(
        self,
        model: Module,
        resil_model: Module | None = None,
        model_name: str = "model",
        dataset=None,
        config_location: str | Path | None = None,
        scenario: ScenarioConfig | None = None,
        output_dir: str | Path | None = None,
        input_shape: tuple[int, ...] = (3, 32, 32),
        dl_shuffle: bool = False,
        device: str = "cpu",
        workers: int = 1,
        num_shards: int | None = None,
        prefix_reuse: bool = True,
        golden_cache=None,
    ):
        if dataset is None:
            raise ValueError("a dataset is required to run a fault injection campaign")
        self.model = model.eval()
        self.resil_model = resil_model.eval() if resil_model is not None else None
        self.model_name = model_name
        self.dataset = dataset
        self.input_shape = tuple(input_shape)
        self.dl_shuffle = dl_shuffle
        self.device = device
        self.workers = workers
        self.num_shards = num_shards
        self.prefix_reuse = prefix_reuse
        self.golden_cache = golden_cache
        if scenario is not None:
            self._base_scenario = scenario
        elif config_location is not None:
            self._base_scenario = load_scenario(config_location)
        else:
            self._base_scenario = default_scenario()
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.wrapper: ptfiwrap | None = None
        self.resil_wrapper: ptfiwrap | None = None
        # Campaign-wide applied-fault log, collected per group from the
        # clone-free sessions (the injector's shared log stays empty).
        self.applied_faults: list[dict] = []

    # ------------------------------------------------------------------ #
    # campaign entry point
    # ------------------------------------------------------------------ #
    def test_rand_ImgClass_SBFs_inj(
        self,
        fault_file: str = "",
        num_faults: int = 1,
        inj_policy: str = "per_image",
        num_runs: int = 1,
    ) -> ImgClassCampaignOutput:
        """Run a random single/multi bit-flip injection campaign.

        Args:
            fault_file: optional path of a previously stored fault matrix to
                replay; empty string generates a fresh fault set.
            num_faults: faults applied concurrently per image
                (``max_faults_per_image``).
            inj_policy: ``per_image``, ``per_batch`` or ``per_epoch``.
            num_runs: number of epochs over the dataset.

        Returns:
            :class:`ImgClassCampaignOutput` with KPI objects, raw logits and
            the paths of all written result files.
        """
        scenario = normalize_campaign_scenario(
            self._base_scenario.copy(
                max_faults_per_image=num_faults,
                inj_policy=inj_policy,
                num_runs=num_runs,
                model_name=self.model_name,
            ),
            self.dataset,
        )
        self.wrapper = ptfiwrap(self.model, scenario=scenario, input_shape=self.input_shape)
        if fault_file:
            self.wrapper.update_scenario(fault_file=fault_file)

        writer = (
            CampaignResultWriter(self.output_dir, campaign_name=self.model_name)
            if self.output_dir is not None
            else None
        )
        task = ClassificationTask(collect_outputs=True)
        core = CampaignCore(
            self.model,
            self.dataset,
            task,
            scenario=scenario,
            writer=writer,
            input_shape=self.input_shape,
            dl_shuffle=self.dl_shuffle,
            resil_model=self.resil_model,
            wrapper=self.wrapper,
            prefix_reuse=self.prefix_reuse,
            golden_cache=self.golden_cache,
        )
        self.resil_wrapper = core.resil_wrapper
        executor = ShardedCampaignExecutor(core, workers=self.workers, num_shards=self.num_shards)
        state, stream_paths = executor.run()
        self.applied_faults = list(state.applied_log)

        golden_arr = np.stack(state.golden_logits)
        corrupted_arr = np.stack(state.corrupted_logits)
        labels_arr = np.asarray(state.labels, dtype=np.int64)
        due_arr = np.asarray(state.due_flags, dtype=bool)
        corrupted_result = evaluate_classification_campaign(
            golden_arr, corrupted_arr, labels_arr, due_arr, model_name=self.model_name
        )
        resil_result = None
        resil_arr = None
        if state.resil_logits:
            resil_arr = np.stack(state.resil_logits)
            resil_golden_arr = np.stack(state.resil_golden_logits)
            resil_result = evaluate_classification_campaign(
                resil_golden_arr, resil_arr, labels_arr, model_name=f"{self.model_name}_resil"
            )

        output_files = self._write_outputs(writer, scenario, stream_paths, corrupted_result, resil_result)
        return ImgClassCampaignOutput(
            corrupted=corrupted_result,
            resil=resil_result,
            golden_logits=golden_arr,
            corrupted_logits=corrupted_arr,
            resil_logits=resil_arr,
            labels=labels_arr,
            due_flags=due_arr,
            output_files=output_files,
        )

    def _write_outputs(
        self,
        writer: CampaignResultWriter | None,
        scenario: ScenarioConfig,
        stream_paths: dict[str, str],
        corrupted_result: ClassificationCampaignResult,
        resil_result: ClassificationCampaignResult | None,
    ) -> dict[str, str]:
        if writer is None or self.wrapper is None:
            return {}
        paths = {
            "meta": str(writer.write_meta(scenario, extra={"model_name": self.model_name})),
            "faults": str(writer.write_fault_matrix(self.wrapper.get_fault_matrix())),
            **stream_paths,
        }
        kpis = {"corrupted": corrupted_result.as_dict()}
        if resil_result is not None:
            kpis["resil"] = resil_result.as_dict()
        paths["kpis"] = str(writer.write_kpi_summary(kpis))
        return paths
