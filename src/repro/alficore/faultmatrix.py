"""Pre-generated fault matrices (Table I of the paper).

All faults of a campaign are generated *before* the inference run and stored
as a matrix: each column is one fault, and the rows encode its location and
value.  For neuron faults the rows are (Table I)

    1. batch    -- number of the image within a batch
    2. layer    -- n-th layer out of all injectable layers
    3. channel  -- n-th channel of the layer output
    4. depth    -- additional index for conv3d layers
    5. height   -- y position in the output
    6. width    -- x position in the output
    7. value    -- either a number or the index of the bit position to flip

Weight fault matrices use the same layout with the first rows re-interpreted:
row 1 is the layer index and rows 2/3 are the weight's output and input
channel.  The matrix is persisted as a binary file so the identical set of
faults can be reused across experiments (e.g. to compare a hardened model
against the unprotected baseline under exactly the same faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.alficore.layerweights import weighted_layer_choice
from repro.alficore.scenario import ScenarioConfig
from repro.pytorchfi.core import UNSET, FaultInjection, NeuronFault, WeightFault

NEURON_ROWS = ("batch", "layer", "channel", "depth", "height", "width", "value")
WEIGHT_ROWS = ("layer", "out_channel", "in_channel", "depth", "height", "width", "value")
NUM_ROWS = 7


@dataclass
class FaultMatrix:
    """A pre-generated set of faults (one column per fault).

    Attributes:
        matrix: array of shape ``(7, num_faults)``.
        injection_target: ``"neurons"`` or ``"weights"``.
        metadata: free-form campaign metadata (scenario dict, model name, ...).
    """

    matrix: np.ndarray
    injection_target: str
    metadata: dict

    def __post_init__(self):
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != NUM_ROWS:
            raise ValueError(
                f"fault matrix must have shape (7, n), got {self.matrix.shape}"
            )
        if self.injection_target not in ("neurons", "weights"):
            raise ValueError(f"invalid injection target {self.injection_target!r}")

    @property
    def rows(self) -> tuple[str, ...]:
        """Row labels of the matrix (depends on the injection target)."""
        return NEURON_ROWS if self.injection_target == "neurons" else WEIGHT_ROWS

    @property
    def num_faults(self) -> int:
        """Number of faults (columns) in the matrix."""
        return self.matrix.shape[1]

    def column(self, index: int) -> np.ndarray:
        """Return one fault column."""
        if not 0 <= index < self.num_faults:
            raise IndexError(f"fault column {index} out of range (0..{self.num_faults - 1})")
        return self.matrix[:, index]

    def columns(self, indices: list[int] | np.ndarray) -> np.ndarray:
        """Return a sub-matrix containing the selected fault columns."""
        return self.matrix[:, np.asarray(indices, dtype=np.int64)]

    # ------------------------------------------------------------------ #
    # conversion to injector fault objects
    # ------------------------------------------------------------------ #
    def to_neuron_faults(self, indices: list[int] | np.ndarray) -> list[NeuronFault]:
        """Convert the selected columns into :class:`NeuronFault` objects."""
        if self.injection_target != "neurons":
            raise ValueError("matrix holds weight faults, not neuron faults")
        faults = []
        for column_index in np.asarray(indices, dtype=np.int64):
            column = self.column(int(column_index))
            faults.append(
                NeuronFault(
                    batch=int(column[0]),
                    layer=int(column[1]),
                    channel=int(column[2]),
                    depth=int(column[3]),
                    height=int(column[4]),
                    width=int(column[5]),
                    value=float(column[6]),
                )
            )
        return faults

    def to_weight_faults(self, indices: list[int] | np.ndarray) -> list[WeightFault]:
        """Convert the selected columns into :class:`WeightFault` objects."""
        if self.injection_target != "weights":
            raise ValueError("matrix holds neuron faults, not weight faults")
        faults = []
        for column_index in np.asarray(indices, dtype=np.int64):
            column = self.column(int(column_index))
            faults.append(
                WeightFault(
                    layer=int(column[0]),
                    out_channel=int(column[1]),
                    in_channel=int(column[2]),
                    depth=int(column[3]),
                    height=int(column[4]),
                    width=int(column[5]),
                    value=float(column[6]),
                )
            )
        return faults

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the matrix (and metadata) as a binary ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        metadata_json = np.asarray(_encode_metadata(self.metadata))
        np.savez(
            path,
            matrix=self.matrix,
            injection_target=np.asarray(self.injection_target),
            metadata=metadata_json,
        )
        # numpy appends .npz if missing; normalise the returned path.
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "FaultMatrix":
        """Load a matrix previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists() and path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        if not path.exists():
            raise FileNotFoundError(f"fault file not found: {path}")
        with np.load(path, allow_pickle=False) as archive:
            matrix = archive["matrix"]
            target = str(archive["injection_target"])
            metadata = _decode_metadata(str(archive["metadata"]))
        return cls(matrix=matrix, injection_target=target, metadata=metadata)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultMatrix):
            return NotImplemented
        return (
            self.injection_target == other.injection_target
            and self.matrix.shape == other.matrix.shape
            and np.allclose(self.matrix, other.matrix, equal_nan=True)
        )


def _encode_metadata(metadata: dict) -> str:
    import json

    return json.dumps(metadata, sort_keys=True, default=str)


def _decode_metadata(blob: str) -> dict:
    import json

    return json.loads(blob) if blob else {}


class FaultMatrixGenerator:
    """Generate a :class:`FaultMatrix` from a scenario and a profiled model.

    Args:
        fi: profiled :class:`FaultInjection` core (layer shapes).
        scenario: campaign configuration.
        rng: optional random generator; defaults to one seeded from the
            scenario's ``random_seed`` so fault sets are reproducible.
    """

    def __init__(
        self,
        fi: FaultInjection,
        scenario: ScenarioConfig,
        rng: np.random.Generator | None = None,
    ):
        self.fi = fi
        self.scenario = scenario
        self.rng = rng if rng is not None else np.random.default_rng(scenario.random_seed)
        self._check_layer_range()

    def _check_layer_range(self) -> None:
        if self.scenario.layer_range is None:
            return
        start, end = self.scenario.layer_range
        if end >= self.fi.num_layers:
            raise ValueError(
                f"scenario layer_range {self.scenario.layer_range} exceeds the model's "
                f"{self.fi.num_layers} injectable layers"
            )

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def generate(self, num_faults: int | None = None, method: str = "vectorized") -> FaultMatrix:
        """Generate the full fault matrix for the campaign.

        The default ``"vectorized"`` method batches every random draw of the
        campaign into a single ``rng.integers`` call with per-draw bounds and
        assembles the ``(7, n)`` matrix with array operations.  Because numpy
        consumes the underlying bit stream identically for batched and
        sequential bounded draws, the result is **bit-identical** to the
        ``"percolumn"`` reference path (one Python iteration per fault) for
        the same seed — at orders of magnitude higher throughput.

        Scenarios with ``rnd_value_type="number"`` interleave a uniform draw
        into the integer stream for every column; they always take the
        per-column path so the stream stays reproducible.

        Args:
            num_faults: number of faults; defaults to the scenario's
                ``total_faults`` (= dataset_size * num_runs * max_faults_per_image).
            method: ``"vectorized"`` (default) or ``"percolumn"``.
        """
        if method not in ("vectorized", "percolumn"):
            raise ValueError(f"unknown generation method {method!r}")
        count = num_faults if num_faults is not None else self.scenario.total_faults
        if count <= 0:
            raise ValueError(f"number of faults must be positive, got {count}")
        layers = np.asarray(
            weighted_layer_choice(
                self.fi,
                self.scenario.injection_target,
                self.rng,
                size=count,
                layer_range=self.scenario.layer_range,
                weighted=self.scenario.weighted_layer_selection,
            ),
            dtype=np.int64,
        )
        if method == "vectorized" and self.scenario.rnd_value_type in ("bitflip", "stuck_at"):
            matrix = self._assemble_vectorized(count, layers)
        else:
            matrix = self._assemble_percolumn(count, layers)
        metadata = {
            "scenario": self.scenario.as_dict(),
            "model_name": self.scenario.model_name,
            "dataset_name": self.scenario.dataset_name,
            "num_faults": count,
            "layer_names": [info.name for info in self.fi.layers],
        }
        return FaultMatrix(
            matrix=matrix,
            injection_target=self.scenario.injection_target,
            metadata=metadata,
        )

    def _assemble_percolumn(self, count: int, layers: np.ndarray) -> np.ndarray:
        """Reference path: draw and assemble one fault column at a time."""
        matrix = np.zeros((NUM_ROWS, count), dtype=np.float64)
        for column in range(count):
            layer_index = int(layers[column])
            if self.scenario.injection_target == "neurons":
                matrix[:, column] = self._neuron_column(column, layer_index)
            else:
                matrix[:, column] = self._weight_column(layer_index)
        return matrix

    def _assemble_vectorized(self, count: int, layers: np.ndarray) -> np.ndarray:
        """Batch all bounded draws into one call and scatter them into rows.

        The flat draw sequence replays exactly what the per-column path would
        draw: for each column in order — the batch position (neurons, drawn
        policies only), the coordinate rows of the column's layer, then the
        bit-position value row.
        """
        scenario = self.scenario
        neurons = scenario.injection_target == "neurons"
        draw_batch = neurons and scenario.inj_policy != "per_image"
        low_bit, high_bit = scenario.rnd_bit_range

        # Per-layer draw plans: matrix rows and integer bounds in draw order.
        plans: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        counts = np.zeros(self.fi.num_layers, dtype=np.int64)
        for layer_index in np.unique(layers):
            rows, lows, highs = self._layer_draw_plan(int(layer_index), draw_batch, low_bit, high_bit)
            plans[int(layer_index)] = (rows, lows, highs)
            counts[layer_index] = len(rows)

        col_counts = counts[layers]
        offsets = np.concatenate(([0], np.cumsum(col_counts)))
        total = int(offsets[-1])
        draw_rows = np.empty(total, dtype=np.int64)
        draw_lows = np.empty(total, dtype=np.int64)
        draw_highs = np.empty(total, dtype=np.int64)
        for layer_index, (rows, lows, highs) in plans.items():
            columns = np.nonzero(layers == layer_index)[0]
            slots = offsets[columns][:, None] + np.arange(len(rows))[None, :]
            draw_rows[slots] = rows[None, :]
            draw_lows[slots] = lows[None, :]
            draw_highs[slots] = highs[None, :]

        draws = self.rng.integers(draw_lows, draw_highs)

        matrix = np.zeros((NUM_ROWS, count), dtype=np.float64)
        if neurons:
            matrix[1, :] = layers
            matrix[2:6, :] = UNSET
            if scenario.inj_policy == "per_image":
                image_index = np.arange(count) // scenario.max_faults_per_image
                matrix[0, :] = image_index % scenario.batch_size
        else:
            matrix[0, :] = layers
            matrix[3:6, :] = UNSET
        draw_columns = np.repeat(np.arange(count), col_counts)
        matrix[draw_rows, draw_columns] = draws
        return matrix

    def _layer_draw_plan(
        self, layer_index: int, draw_batch: bool, low_bit: int, high_bit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rows and integer bounds drawn per column of ``layer_index``.

        Returns ``(rows, lows, highs)`` aligned with the per-column draw
        order of the reference path.
        """
        info = self.fi.get_layer_info(layer_index)
        rows: list[int] = []
        lows: list[int] = []
        highs: list[int] = []
        if draw_batch:
            rows.append(0)
            lows.append(0)
            highs.append(self.scenario.batch_size)
        if self.scenario.injection_target == "neurons":
            shape = info.output_shape
            if shape is None:
                raise RuntimeError(
                    f"layer {info.name} has no recorded output shape; neuron faults need profiling"
                )
            if len(shape) == 2:  # (N, features): feature index in the channel row
                coord_rows = (2,)
            elif len(shape) == 4:  # (N, C, H, W)
                coord_rows = (2, 4, 5)
            elif len(shape) == 5:  # (N, C, D, H, W)
                coord_rows = (2, 3, 4, 5)
            else:
                raise ValueError(f"unsupported output rank {len(shape)} for layer {info.name}")
        else:
            shape = info.weight_shape
            if len(shape) == 2:  # Linear (out_features, in_features)
                coord_rows = (1, 2)
            elif len(shape) == 4:  # Conv2d (out, in, kh, kw)
                coord_rows = (1, 2, 4, 5)
            elif len(shape) == 5:  # Conv3d (out, in, kd, kh, kw)
                coord_rows = (1, 2, 3, 4, 5)
            else:
                raise ValueError(f"unsupported weight rank {len(shape)} for layer {info.name}")
        for row, dim in zip(coord_rows, shape[1:] if self.scenario.injection_target == "neurons" else shape):
            rows.append(row)
            lows.append(0)
            highs.append(int(dim))
        rows.append(6)
        lows.append(low_bit)
        highs.append(high_bit + 1)
        return np.asarray(rows), np.asarray(lows), np.asarray(highs)

    def _neuron_column(self, column: int, layer_index: int) -> np.ndarray:
        info = self.fi.get_layer_info(layer_index)
        if info.output_shape is None:
            raise RuntimeError(
                f"layer {info.name} has no recorded output shape; neuron faults need profiling"
            )
        batch_position = self._batch_position(column)
        shape = info.output_shape
        channel, depth, height, width = UNSET, UNSET, UNSET, UNSET
        if len(shape) == 2:  # (N, features): store the feature index in the channel row
            channel = int(self.rng.integers(0, shape[1]))
        elif len(shape) == 4:  # (N, C, H, W)
            channel = int(self.rng.integers(0, shape[1]))
            height = int(self.rng.integers(0, shape[2]))
            width = int(self.rng.integers(0, shape[3]))
        elif len(shape) == 5:  # (N, C, D, H, W)
            channel = int(self.rng.integers(0, shape[1]))
            depth = int(self.rng.integers(0, shape[2]))
            height = int(self.rng.integers(0, shape[3]))
            width = int(self.rng.integers(0, shape[4]))
        else:
            raise ValueError(f"unsupported output rank {len(shape)} for layer {info.name}")
        return np.asarray(
            [batch_position, layer_index, channel, depth, height, width, self._value()],
            dtype=np.float64,
        )

    def _weight_column(self, layer_index: int) -> np.ndarray:
        info = self.fi.get_layer_info(layer_index)
        shape = info.weight_shape
        out_channel, in_channel = 0, 0
        depth, height, width = UNSET, UNSET, UNSET
        if len(shape) == 2:  # Linear (out_features, in_features)
            out_channel = int(self.rng.integers(0, shape[0]))
            in_channel = int(self.rng.integers(0, shape[1]))
        elif len(shape) == 4:  # Conv2d (out, in, kh, kw)
            out_channel = int(self.rng.integers(0, shape[0]))
            in_channel = int(self.rng.integers(0, shape[1]))
            height = int(self.rng.integers(0, shape[2]))
            width = int(self.rng.integers(0, shape[3]))
        elif len(shape) == 5:  # Conv3d (out, in, kd, kh, kw)
            out_channel = int(self.rng.integers(0, shape[0]))
            in_channel = int(self.rng.integers(0, shape[1]))
            depth = int(self.rng.integers(0, shape[2]))
            height = int(self.rng.integers(0, shape[3]))
            width = int(self.rng.integers(0, shape[4]))
        else:
            raise ValueError(f"unsupported weight rank {len(shape)} for layer {info.name}")
        return np.asarray(
            [layer_index, out_channel, in_channel, depth, height, width, self._value()],
            dtype=np.float64,
        )

    def _batch_position(self, column: int) -> int:
        """Position of the targeted image within its batch.

        For the ``per_image`` policy every group of ``max_faults_per_image``
        columns belongs to one image, so the batch position follows from the
        image index; for the coarser policies the position is drawn randomly.
        """
        if self.scenario.inj_policy == "per_image":
            image_index = column // self.scenario.max_faults_per_image
            return image_index % self.scenario.batch_size
        return int(self.rng.integers(0, self.scenario.batch_size))

    def _value(self) -> float:
        """Draw the value row according to the configured value corruption."""
        if self.scenario.rnd_value_type in ("bitflip", "stuck_at"):
            low, high = self.scenario.rnd_bit_range
            return float(self.rng.integers(low, high + 1))
        return float(self.rng.uniform(self.scenario.rnd_value_min, self.scenario.rnd_value_max))
