"""Layer selection weighting (Eq. 1 of the paper).

When faults are placed at random layers, each layer's relative size can be
taken into account so that larger layers are proportionally more likely to be
hit — matching the physical reality that a larger layer occupies more
hardware resources.  The weight factor of layer ``i`` is

    F_i = prod_j d_ij / sum_i prod_j d_ij

where ``d_ij`` are the sizes of the different dimensions of the layer's
tensor (the weight tensor for weight faults, the output activation tensor
for neuron faults).
"""

from __future__ import annotations

import numpy as np

from repro.pytorchfi.core import FaultInjection


def layer_weight_factors(sizes: list[int]) -> np.ndarray:
    """Normalise per-layer element counts into sampling probabilities (Eq. 1).

    Args:
        sizes: number of elements per layer (``prod_j d_ij`` for each layer).

    Returns:
        Array of probabilities summing to 1.  If every layer has zero
        elements a uniform distribution is returned.
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    if sizes_arr.ndim != 1 or len(sizes_arr) == 0:
        raise ValueError("sizes must be a non-empty 1D sequence")
    if (sizes_arr < 0).any():
        raise ValueError("layer sizes must be non-negative")
    total = sizes_arr.sum()
    if total == 0:
        return np.full(len(sizes_arr), 1.0 / len(sizes_arr))
    return sizes_arr / total


def layer_sizes_for_target(fi: FaultInjection, injection_target: str) -> list[int]:
    """Per-layer element counts for the given injection target.

    The relative size of each layer is calculated separately for weights and
    neurons (Section V-C of the paper).
    """
    if injection_target == "weights":
        return fi.layer_weight_counts()
    if injection_target == "neurons":
        return fi.layer_neuron_counts()
    raise ValueError(f"injection_target must be 'weights' or 'neurons', got {injection_target!r}")


def weighted_layer_choice(
    fi: FaultInjection,
    injection_target: str,
    rng: np.random.Generator,
    size: int = 1,
    layer_range: tuple[int, int] | None = None,
    weighted: bool = True,
) -> np.ndarray:
    """Draw layer indices, optionally weighted by relative layer size.

    Args:
        fi: profiled fault injection core (provides layer sizes).
        injection_target: ``"neurons"`` or ``"weights"``.
        rng: random generator.
        size: number of draws.
        layer_range: inclusive ``(start, end)`` restriction of eligible layers.
        weighted: apply Eq. 1 weighting; otherwise uniform over eligible layers.

    Returns:
        Array of ``size`` layer indices.
    """
    sizes = np.asarray(layer_sizes_for_target(fi, injection_target), dtype=np.float64)
    eligible = np.arange(len(sizes))
    if layer_range is not None:
        start, end = layer_range
        if start < 0 or end >= len(sizes) or start > end:
            raise ValueError(
                f"layer_range {layer_range} invalid for model with {len(sizes)} injectable layers"
            )
        eligible = eligible[(eligible >= start) & (eligible <= end)]
    eligible_sizes = sizes[eligible]
    if weighted:
        probabilities = layer_weight_factors(list(eligible_sizes))
    else:
        probabilities = np.full(len(eligible), 1.0 / len(eligible))
    return rng.choice(eligible, size=size, p=probabilities)
