"""High-level campaign runner for object detection networks.

``TestErrorModels_ObjDet`` mirrors :class:`TestErrorModels_ImgClass` for
detectors: it runs golden / corrupted (and optionally hardened) inference in
lock-step over a CoCo-style dataset, stores ground truth + per-image
intermediate result JSON files, and computes CoCo-style mAP plus the IVMOD
vulnerability metrics (Fig. 2b of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.alficore.monitoring import InferenceMonitor
from repro.alficore.results import CampaignResultWriter, DetectionRecord
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.data.wrapper import AlfiDataLoaderWrapper
from repro.eval.detection import DetectionCampaignResult, evaluate_detection_campaign
from repro.models.detection.detectors import Detection
from repro.nn.module import Module


@dataclass
class ObjDetCampaignOutput:
    """Everything a detection campaign produces."""

    corrupted: DetectionCampaignResult
    resil: DetectionCampaignResult | None
    golden_predictions: list[dict]
    corrupted_predictions: list[dict]
    resil_predictions: list[dict] | None
    targets: list[dict]
    due_flags: list[bool]
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly KPI summary."""
        summary = {"corrupted": self.corrupted.as_dict(), "output_files": dict(self.output_files)}
        if self.resil is not None:
            summary["resil"] = self.resil.as_dict()
        return summary


def _detection_to_dict(detection: Detection) -> dict:
    return detection.as_dict()


class TestErrorModels_ObjDet:
    """Turnkey fault injection campaigns for object detection models.

    Args:
        model: the fault-free baseline detector (returns a list of
            :class:`~repro.models.detection.detectors.Detection` per batch).
        resil_model: optional hardened variant evaluated under the same faults.
        model_name: name used in result files.
        dataset: a CoCo-style dataset yielding ``(image, target)`` tuples where
            ``target`` holds ``boxes``/``labels``/``image_id`` metadata.
        config_location: optional path of a scenario yml file.
        scenario: optional explicit :class:`ScenarioConfig`.
        output_dir: directory for the result files; ``None`` disables writing.
        input_shape: per-sample input shape used for model profiling.
        num_classes: number of object classes (defaults to the dataset's).
        dl_shuffle: shuffle the dataset between epochs.
        device: accepted for API compatibility; unused by the numpy substrate.
    """

    def __init__(
        self,
        model: Module,
        resil_model: Module | None = None,
        model_name: str = "detector",
        dataset=None,
        config_location: str | Path | None = None,
        scenario: ScenarioConfig | None = None,
        output_dir: str | Path | None = None,
        input_shape: tuple[int, ...] = (3, 64, 64),
        num_classes: int | None = None,
        dl_shuffle: bool = False,
        device: str = "cpu",
    ):
        if dataset is None:
            raise ValueError("a dataset is required to run a fault injection campaign")
        self.model = model.eval()
        self.resil_model = resil_model.eval() if resil_model is not None else None
        self.model_name = model_name
        self.dataset = dataset
        self.input_shape = tuple(input_shape)
        self.dl_shuffle = dl_shuffle
        self.device = device
        if num_classes is not None:
            self.num_classes = num_classes
        elif hasattr(dataset, "num_classes"):
            self.num_classes = int(dataset.num_classes)
        elif hasattr(model, "num_classes"):
            self.num_classes = int(model.num_classes)
        else:
            raise ValueError("num_classes must be provided when the dataset does not expose it")
        if scenario is not None:
            self._base_scenario = scenario
        elif config_location is not None:
            self._base_scenario = load_scenario(config_location)
        else:
            self._base_scenario = default_scenario()
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.wrapper: ptfiwrap | None = None
        self.resil_wrapper: ptfiwrap | None = None

    # ------------------------------------------------------------------ #
    # campaign entry point
    # ------------------------------------------------------------------ #
    def test_rand_ObjDet_SBFs_inj(
        self,
        fault_file: str = "",
        num_faults: int = 1,
        inj_policy: str = "per_image",
        num_runs: int = 1,
    ) -> ObjDetCampaignOutput:
        """Run a random single/multi bit-flip injection campaign on the detector.

        Args mirror
        :meth:`TestErrorModels_ImgClass.test_rand_ImgClass_SBFs_inj`.
        """
        scenario = self._base_scenario.copy(
            dataset_size=len(self.dataset),
            max_faults_per_image=num_faults,
            inj_policy=inj_policy,
            num_runs=num_runs,
            model_name=self.model_name,
            batch_size=1,
        )
        self.wrapper = ptfiwrap(self.model, scenario=scenario, input_shape=self.input_shape)
        if fault_file:
            self.wrapper.update_scenario(fault_file=fault_file)
        fault_matrix = self.wrapper.get_fault_matrix()
        if self.resil_model is not None:
            self.resil_wrapper = ptfiwrap(
                self.resil_model, scenario=scenario, input_shape=self.input_shape
            )
            self.resil_wrapper.set_fault_matrix(fault_matrix)
        loader = AlfiDataLoaderWrapper(
            self.dataset, batch_size=1, shuffle=self.dl_shuffle, seed=scenario.random_seed
        )
        return self._run_campaign(scenario, loader)

    # ------------------------------------------------------------------ #
    # campaign execution
    # ------------------------------------------------------------------ #
    def _run_campaign(
        self,
        scenario: ScenarioConfig,
        loader: AlfiDataLoaderWrapper,
    ) -> ObjDetCampaignOutput:
        assert self.wrapper is not None
        golden_predictions: list[dict] = []
        corrupted_predictions: list[dict] = []
        resil_predictions: list[dict] = []
        resil_golden_predictions: list[dict] = []
        targets: list[dict] = []
        due_flags: list[bool] = []
        golden_records: list[DetectionRecord] = []
        corrupted_records: list[DetectionRecord] = []
        resil_records: list[DetectionRecord] = []

        group_index = 0
        for epoch in range(scenario.num_runs):
            for batch in loader:
                record = batch[0]
                image = record.image[None, ...]
                target = record.target
                golden_detection = self.model(image)[0]
                # Snapshot the fault log first: weight faults are recorded while
                # the corrupted model is built, neuron faults during inference.
                applied_before = len(self.wrapper.fault_injection.applied_faults)
                corrupted_model = self.wrapper.corrupted_model_for_group(group_index)
                monitor = InferenceMonitor(corrupted_model)
                with monitor:
                    corrupted_detection = corrupted_model(image)[0]
                monitor_result = monitor.collect()
                applied = [
                    fault.as_dict()
                    for fault in self.wrapper.fault_injection.applied_faults[applied_before:]
                ]
                nan_detected = monitor_result.nan_detected or corrupted_detection.has_nan_or_inf()
                inf_detected = monitor_result.inf_detected or corrupted_detection.has_nan_or_inf()

                golden_predictions.append(_detection_to_dict(golden_detection))
                corrupted_predictions.append(_detection_to_dict(corrupted_detection))
                targets.append(
                    {
                        "boxes": np.asarray(target["boxes"], dtype=np.float32),
                        "labels": np.asarray(target["labels"], dtype=np.int64),
                        "image_id": record.image_id,
                        "file_name": record.file_name,
                    }
                )
                due_flags.append(bool(nan_detected or inf_detected))

                golden_records.append(
                    self._make_record(record, golden_detection, [], False, False, "golden")
                )
                corrupted_records.append(
                    self._make_record(
                        record, corrupted_detection, applied, nan_detected, inf_detected, "corrupted"
                    )
                )
                if self.resil_wrapper is not None:
                    # Judge the hardened detector against its own fault-free run.
                    resil_golden_predictions.append(
                        _detection_to_dict(self.resil_model(image)[0])
                    )
                    resil_model = self.resil_wrapper.corrupted_model_for_group(group_index)
                    resil_detection = resil_model(image)[0]
                    resil_predictions.append(_detection_to_dict(resil_detection))
                    resil_records.append(
                        self._make_record(
                            record,
                            resil_detection,
                            applied,
                            resil_detection.has_nan_or_inf(),
                            resil_detection.has_nan_or_inf(),
                            "resil",
                        )
                    )
                group_index += 1

        corrupted_result = evaluate_detection_campaign(
            golden_predictions,
            corrupted_predictions,
            targets,
            self.num_classes,
            model_name=self.model_name,
            due_flags=due_flags,
        )
        resil_result = None
        if resil_predictions:
            resil_result = evaluate_detection_campaign(
                resil_golden_predictions,
                resil_predictions,
                targets,
                self.num_classes,
                model_name=f"{self.model_name}_resil",
            )
        output_files = self._write_outputs(
            scenario,
            targets,
            golden_records,
            corrupted_records,
            resil_records,
            corrupted_result,
            resil_result,
        )
        return ObjDetCampaignOutput(
            corrupted=corrupted_result,
            resil=resil_result,
            golden_predictions=golden_predictions,
            corrupted_predictions=corrupted_predictions,
            resil_predictions=resil_predictions or None,
            targets=targets,
            due_flags=due_flags,
            output_files=output_files,
        )

    def _make_record(
        self,
        record,
        detection: Detection,
        applied: list[dict],
        nan_detected: bool,
        inf_detected: bool,
        tag: str,
    ) -> DetectionRecord:
        as_dict = detection.as_dict()
        return DetectionRecord(
            image_id=record.image_id,
            file_name=record.file_name,
            boxes=as_dict["boxes"],
            scores=as_dict["scores"],
            labels=as_dict["labels"],
            fault_positions=applied,
            nan_detected=bool(nan_detected),
            inf_detected=bool(inf_detected),
            model_tag=tag,
        )

    def _write_outputs(
        self,
        scenario: ScenarioConfig,
        targets: list[dict],
        golden_records: list[DetectionRecord],
        corrupted_records: list[DetectionRecord],
        resil_records: list[DetectionRecord],
        corrupted_result: DetectionCampaignResult,
        resil_result: DetectionCampaignResult | None,
    ) -> dict[str, str]:
        if self.output_dir is None or self.wrapper is None:
            return {}
        writer = CampaignResultWriter(self.output_dir, campaign_name=self.model_name)
        serialisable_targets = [
            {
                "image_id": int(target["image_id"]),
                "file_name": target["file_name"],
                "boxes": np.asarray(target["boxes"]).tolist(),
                "labels": np.asarray(target["labels"]).tolist(),
            }
            for target in targets
        ]
        paths = {
            "meta": str(writer.write_meta(scenario, extra={"model_name": self.model_name})),
            "faults": str(writer.write_fault_matrix(self.wrapper.get_fault_matrix())),
            "applied_faults": str(
                writer.write_applied_faults(
                    [f.as_dict() for f in self.wrapper.fault_injection.applied_faults]
                )
            ),
            "ground_truth": str(writer.write_ground_truth_json(serialisable_targets)),
            "golden_json": str(writer.write_detection_json(golden_records, tag="golden")),
            "corrupted_json": str(writer.write_detection_json(corrupted_records, tag="corrupted")),
        }
        kpis = {"corrupted": corrupted_result.as_dict()}
        if resil_records:
            paths["resil_json"] = str(writer.write_detection_json(resil_records, tag="resil"))
        if resil_result is not None:
            kpis["resil"] = resil_result.as_dict()
        paths["kpis"] = str(writer.write_kpi_summary(kpis))
        return paths
