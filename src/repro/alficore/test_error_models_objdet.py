"""High-level campaign runner for object detection networks.

``TestErrorModels_ObjDet`` mirrors :class:`TestErrorModels_ImgClass` for
detectors as a thin facade over the task-pluggable
:class:`~repro.alficore.campaign.CampaignCore`: golden / corrupted (and
optionally hardened) inference run in lock-step over a CoCo-style dataset
through the clone-free fault group sessions — weight faults are patched into
the original detector in place (no per-group model copy) and neuron faults
reuse one hooked clone.  Per-image result records are *streamed* to JSON as
they are produced (O(batch) memory); only the small per-image prediction
dicts needed for CoCo-style mAP and the IVMOD vulnerability metrics (Fig. 2b
of the paper) are retained.  NaN and Inf events are attributed separately per
event type, and ``workers`` / ``num_shards`` run the campaign sharded with a
merged output bit-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.alficore.campaign import (
    CampaignCore,
    DetectionTask,
    ShardedCampaignExecutor,
    normalize_campaign_scenario,
)
from repro.alficore.results import CampaignResultWriter
from repro.alficore.scenario import ScenarioConfig, default_scenario, load_scenario
from repro.alficore.wrapper import ptfiwrap
from repro.eval.detection import DetectionCampaignResult, evaluate_detection_campaign
from repro.nn.module import Module


@dataclass
class ObjDetCampaignOutput:
    """Everything a detection campaign produces."""

    corrupted: DetectionCampaignResult
    resil: DetectionCampaignResult | None
    golden_predictions: list[dict]
    corrupted_predictions: list[dict]
    resil_predictions: list[dict] | None
    targets: list[dict]
    due_flags: list[bool]
    output_files: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly KPI summary."""
        summary = {"corrupted": self.corrupted.as_dict(), "output_files": dict(self.output_files)}
        if self.resil is not None:
            summary["resil"] = self.resil.as_dict()
        return summary


class TestErrorModels_ObjDet:
    """Turnkey fault injection campaigns for object detection models.

    Args:
        model: the fault-free baseline detector (returns a list of
            :class:`~repro.models.detection.detectors.Detection` per batch).
        resil_model: optional hardened variant evaluated under the same faults.
        model_name: name used in result files.
        dataset: a CoCo-style dataset yielding ``(image, target)`` tuples where
            ``target`` holds ``boxes``/``labels``/``image_id`` metadata.
        config_location: optional path of a scenario yml file.
        scenario: optional explicit :class:`ScenarioConfig`.
        output_dir: directory for the result files; ``None`` disables writing.
        input_shape: per-sample input shape used for model profiling.
        num_classes: number of object classes (defaults to the dataset's).
        dl_shuffle: shuffle the dataset between epochs.
        device: accepted for API compatibility; unused by the numpy substrate.
        workers: worker processes for sharded campaign execution (1 = serial).
        num_shards: campaign shards (defaults to ``workers``).
        prefix_reuse: suffix-only faulty forwards where the detector's
            forward linearises into a plan (falls back to full forwards
            otherwise; on by default).
        golden_cache: optional epoch-invariant
            :class:`~repro.alficore.goldencache.GoldenCache`.
    """

    def __init__(
        self,
        model: Module,
        resil_model: Module | None = None,
        model_name: str = "detector",
        dataset=None,
        config_location: str | Path | None = None,
        scenario: ScenarioConfig | None = None,
        output_dir: str | Path | None = None,
        input_shape: tuple[int, ...] = (3, 64, 64),
        num_classes: int | None = None,
        dl_shuffle: bool = False,
        device: str = "cpu",
        workers: int = 1,
        num_shards: int | None = None,
        prefix_reuse: bool = True,
        golden_cache=None,
    ):
        if dataset is None:
            raise ValueError("a dataset is required to run a fault injection campaign")
        self.model = model.eval()
        self.resil_model = resil_model.eval() if resil_model is not None else None
        self.model_name = model_name
        self.dataset = dataset
        self.input_shape = tuple(input_shape)
        self.dl_shuffle = dl_shuffle
        self.device = device
        self.workers = workers
        self.num_shards = num_shards
        self.prefix_reuse = prefix_reuse
        self.golden_cache = golden_cache
        if num_classes is not None:
            self.num_classes = num_classes
        elif hasattr(dataset, "num_classes"):
            self.num_classes = int(dataset.num_classes)
        elif hasattr(model, "num_classes"):
            self.num_classes = int(model.num_classes)
        else:
            raise ValueError("num_classes must be provided when the dataset does not expose it")
        if scenario is not None:
            self._base_scenario = scenario
        elif config_location is not None:
            self._base_scenario = load_scenario(config_location)
        else:
            self._base_scenario = default_scenario()
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.wrapper: ptfiwrap | None = None
        self.resil_wrapper: ptfiwrap | None = None
        # Campaign-wide applied-fault log, collected per group from the
        # clone-free sessions (the injector's shared log stays empty).
        self.applied_faults: list[dict] = []

    # ------------------------------------------------------------------ #
    # campaign entry point
    # ------------------------------------------------------------------ #
    def test_rand_ObjDet_SBFs_inj(
        self,
        fault_file: str = "",
        num_faults: int = 1,
        inj_policy: str = "per_image",
        num_runs: int = 1,
    ) -> ObjDetCampaignOutput:
        """Run a random single/multi bit-flip injection campaign on the detector.

        Args mirror
        :meth:`TestErrorModels_ImgClass.test_rand_ImgClass_SBFs_inj`.
        """
        scenario = normalize_campaign_scenario(
            self._base_scenario.copy(
                max_faults_per_image=num_faults,
                inj_policy=inj_policy,
                num_runs=num_runs,
                model_name=self.model_name,
            ),
            self.dataset,
        )
        self.wrapper = ptfiwrap(self.model, scenario=scenario, input_shape=self.input_shape)
        if fault_file:
            self.wrapper.update_scenario(fault_file=fault_file)

        writer = (
            CampaignResultWriter(self.output_dir, campaign_name=self.model_name)
            if self.output_dir is not None
            else None
        )
        task = DetectionTask(collect_applied_log=True)
        core = CampaignCore(
            self.model,
            self.dataset,
            task,
            scenario=scenario,
            writer=writer,
            input_shape=self.input_shape,
            dl_shuffle=self.dl_shuffle,
            resil_model=self.resil_model,
            wrapper=self.wrapper,
            prefix_reuse=self.prefix_reuse,
            golden_cache=self.golden_cache,
        )
        self.resil_wrapper = core.resil_wrapper
        executor = ShardedCampaignExecutor(core, workers=self.workers, num_shards=self.num_shards)
        state, stream_paths = executor.run()
        self.applied_faults = list(state.applied_log)

        corrupted_result = evaluate_detection_campaign(
            state.golden_predictions,
            state.corrupted_predictions,
            state.targets,
            self.num_classes,
            model_name=self.model_name,
            due_flags=state.due_flags,
        )
        resil_result = None
        if state.resil_predictions:
            resil_result = evaluate_detection_campaign(
                state.resil_golden_predictions,
                state.resil_predictions,
                state.targets,
                self.num_classes,
                model_name=f"{self.model_name}_resil",
            )
        output_files = self._write_outputs(
            writer, scenario, stream_paths, state.targets, corrupted_result, resil_result
        )
        return ObjDetCampaignOutput(
            corrupted=corrupted_result,
            resil=resil_result,
            golden_predictions=state.golden_predictions,
            corrupted_predictions=state.corrupted_predictions,
            resil_predictions=state.resil_predictions or None,
            targets=state.targets,
            due_flags=state.due_flags,
            output_files=output_files,
        )

    def _write_outputs(
        self,
        writer: CampaignResultWriter | None,
        scenario: ScenarioConfig,
        stream_paths: dict[str, str],
        targets: list[dict],
        corrupted_result: DetectionCampaignResult,
        resil_result: DetectionCampaignResult | None,
    ) -> dict[str, str]:
        if writer is None or self.wrapper is None:
            return {}
        serialisable_targets = [
            {
                "image_id": int(target["image_id"]),
                "file_name": target["file_name"],
                "boxes": np.asarray(target["boxes"]).tolist(),
                "labels": np.asarray(target["labels"]).tolist(),
            }
            for target in targets
        ]
        paths = {
            "meta": str(writer.write_meta(scenario, extra={"model_name": self.model_name})),
            "faults": str(writer.write_fault_matrix(self.wrapper.get_fault_matrix())),
            "ground_truth": str(writer.write_ground_truth_json(serialisable_targets)),
            **stream_paths,
        }
        kpis = {"corrupted": corrupted_result.as_dict()}
        if resil_result is not None:
            kpis["resil"] = resil_result.as_dict()
        paths["kpis"] = str(writer.write_kpi_summary(kpis))
        return paths
