"""The unified declarative Experiment API — one spec, one entry point.

A fault-injection campaign is a handful of orthogonal choices: model,
dataset, error model, protection policy, task, execution backend, caching.
This package turns each choice into a *registry* entry and the whole
campaign into one versioned, serializable :class:`ExperimentSpec`:

* :class:`ExperimentSpec` — declarative description, YAML/JSON round-trip
  with ``schema_version`` + unknown-key validation (:mod:`.spec`).
* :class:`Experiment` / :meth:`Experiment.builder` — fluent programmatic
  construction (:mod:`.builder`).
* :func:`run` — the single entry point: ``run(spec) -> CampaignResult``
  (:mod:`.runner`); pre-built objects can be supplied via
  :class:`Artifacts`.
* :class:`CampaignResult` — structured result handle: summary, output-file
  map, lazy record iterators, shard ``merge()`` (:mod:`.result`).
* :func:`run_sweep` / :func:`expand` — declarative multi-run campaigns: a
  ``sweep:`` section on the spec expands into a deterministic grid of child
  specs, executed through a content-addressed :class:`CampaignStore` so
  completed points are skipped and interrupted sweeps resume
  (:mod:`.sweep`, :mod:`.campaigns`).
* ``register_model`` / ``register_dataset`` / ``register_error_model`` /
  ``register_protection`` / ``register_task`` / ``register_backend`` —
  central registries (:mod:`.registry`); new workloads are registrations,
  not new facades.

The historic facades (``TestErrorModels_ImgClass``,
``TestErrorModels_ObjDet``, ``CampaignRunner``) remain as deprecated shims
that build a spec and delegate here.
"""

from repro.experiments.builder import Experiment, ExperimentBuilder
from repro.experiments.campaigns import (
    CampaignStore,
    StoredPoint,
    StoreError,
    SweepManifest,
)
from repro.experiments.registry import (
    BACKENDS,
    DATASETS,
    ERROR_MODELS,
    MODELS,
    PROTECTIONS,
    TASKS,
    DuplicateComponentError,
    Registry,
    RegistryError,
    UnknownComponentError,
    register_backend,
    register_dataset,
    register_error_model,
    register_model,
    register_protection,
    register_task,
    unregister_error_model,
)
from repro.experiments.result import CampaignResult
from repro.experiments.runner import Artifacts, run
from repro.experiments.spec import (
    SPEC_SCHEMA_VERSION,
    BackendSpec,
    CachingSpec,
    ComponentSpec,
    ExecutionSpec,
    ExperimentSpec,
    SpecError,
    SweepSpec,
    load_spec,
)
from repro.experiments.sweep import (
    SweepError,
    SweepPlan,
    SweepPoint,
    SweepPointOutcome,
    SweepResult,
    expand,
    run_sweep,
)
from repro.experiments.tasks import (
    ClassificationExperimentTask,
    DetectionExperimentTask,
    ExperimentTask,
)

# Populate the registries with the built-in components.
from repro.experiments import builtins as _builtins  # noqa: F401  (side effect)

__all__ = [
    "Artifacts",
    "BACKENDS",
    "BackendSpec",
    "CachingSpec",
    "CampaignResult",
    "CampaignStore",
    "ClassificationExperimentTask",
    "ComponentSpec",
    "DATASETS",
    "DetectionExperimentTask",
    "DuplicateComponentError",
    "ERROR_MODELS",
    "ExecutionSpec",
    "Experiment",
    "ExperimentBuilder",
    "ExperimentSpec",
    "ExperimentTask",
    "MODELS",
    "PROTECTIONS",
    "Registry",
    "RegistryError",
    "SPEC_SCHEMA_VERSION",
    "SpecError",
    "StoreError",
    "StoredPoint",
    "SweepError",
    "SweepManifest",
    "SweepPlan",
    "SweepPoint",
    "SweepPointOutcome",
    "SweepResult",
    "SweepSpec",
    "TASKS",
    "UnknownComponentError",
    "expand",
    "load_spec",
    "register_backend",
    "register_dataset",
    "register_error_model",
    "register_model",
    "register_protection",
    "register_task",
    "run",
    "run_sweep",
    "unregister_error_model",
]
