"""Default registry contents of the Experiment API.

Importing this module (done by ``repro.experiments``) absorbs the historic
ad-hoc lookups — ``repro.models.MODEL_REGISTRY`` and
``repro.models.detection.DETECTOR_REGISTRY`` — into the central ``MODELS``
registry, and registers the built-in datasets, error models, protection
policies, workload tasks and execution backends.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.alficore.campaign import ShardedCampaignExecutor
from repro.alficore.resilience import ExecutionPolicy
from repro.alficore.wrapper import _error_model_from_scenario
from repro.experiments.registry import (
    BACKENDS,
    DATASETS,
    ERROR_MODELS,
    MODELS,
    PROTECTIONS,
    TASKS,
)
from repro.experiments.spec import BackendSpec, ExecutionSpec
from repro.experiments.tasks import ClassificationExperimentTask, DetectionExperimentTask


# --------------------------------------------------------------------------- #
# models — absorb the legacy per-family registries
# --------------------------------------------------------------------------- #
def _register_models() -> None:
    from repro.models import MODEL_REGISTRY
    from repro.models.detection import DETECTOR_REGISTRY

    for name, factory in MODEL_REGISTRY.items():
        if name not in MODELS:
            MODELS.register(name, factory, kind="classifier")
    for name, factory in DETECTOR_REGISTRY.items():
        if name not in MODELS:
            MODELS.register(name, factory, kind="detector")


# --------------------------------------------------------------------------- #
# datasets
# --------------------------------------------------------------------------- #
def _register_datasets() -> None:
    from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset

    if "synthetic-classification" not in DATASETS:
        DATASETS.register(
            "synthetic-classification", SyntheticClassificationDataset, task="classification"
        )
    if "synthetic-coco" not in DATASETS:
        DATASETS.register("synthetic-coco", CocoLikeDetectionDataset, task="detection")


# --------------------------------------------------------------------------- #
# error models — one factory per ``rnd_value_type``
# --------------------------------------------------------------------------- #
def _register_error_models() -> None:
    from repro.experiments.registry import register_error_model

    for value_type in ("bitflip", "number", "stuck_at"):
        if value_type not in ERROR_MODELS:
            # All built-in value types share the canonical scenario-driven
            # derivation (including the permanent-fault stuck-at rule), so a
            # registry-resolved error model is identical to the one the
            # wrapper would derive itself.  Registered through the same
            # funnel plug-ins use, so the registry and the scenario's legal
            # value types have one source of truth.
            register_error_model(value_type, _error_model_from_scenario)


# --------------------------------------------------------------------------- #
# protections
# --------------------------------------------------------------------------- #
def _make_protection_factory(protection_name: str) -> Callable:
    def factory(model: Any, dataset: Any, **params: Any) -> Any:
        from repro.alficore.protection import apply_protection, collect_activation_bounds

        calibration = np.stack([dataset[i][0] for i in range(len(dataset))])
        bounds = collect_activation_bounds(model, [calibration])
        return apply_protection(model, bounds, protection_name, **params)

    factory.__name__ = f"{protection_name}_protection"
    return factory


def _register_protections() -> None:
    for name in ("ranger", "clipper"):
        if name not in PROTECTIONS:
            PROTECTIONS.register(name, _make_protection_factory(name))


# --------------------------------------------------------------------------- #
# tasks
# --------------------------------------------------------------------------- #
def _register_tasks() -> None:
    if "classification" not in TASKS:
        TASKS.register("classification", ClassificationExperimentTask())
    if "detection" not in TASKS:
        TASKS.register("detection", DetectionExperimentTask())


# --------------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------------- #
def _execution_policy(execution: ExecutionSpec | None) -> ExecutionPolicy | None:
    """Map the spec's execution section onto the executor's policy."""
    if execution is None:
        return None
    return ExecutionPolicy(
        retries=execution.retries,
        shard_timeout=execution.shard_timeout,
        backoff=execution.backoff,
        resume=execution.resume,
    )


def serial_backend(
    core: Any, backend: BackendSpec, execution: ExecutionSpec | None = None
) -> tuple[Any, dict[str, str]]:
    """In-process execution; supports ``step_range`` campaign slices."""
    if backend.workers != 1:
        raise ValueError("the serial backend runs with workers=1; use backend 'sharded'")
    if execution is not None and execution.resume:
        raise ValueError(
            "execution.resume requires the 'sharded' backend (the run manifest "
            "tracks completed shard ranges)"
        )
    if backend.step_range is not None:
        start, stop = backend.step_range
        stream_paths = core.run(start, stop)
        return core.task.state, stream_paths
    stream_paths = core.run()
    return core.task.state, stream_paths


def sharded_backend(
    core: Any, backend: BackendSpec, execution: ExecutionSpec | None = None
) -> tuple[Any, dict[str, str]]:
    """Supervised contiguous-shard execution via :class:`ShardedCampaignExecutor`."""
    if backend.step_range is not None:
        raise ValueError("backend 'sharded' does not support step_range; use 'serial' slices")
    executor = ShardedCampaignExecutor(
        core,
        workers=backend.workers,
        num_shards=backend.num_shards,
        policy=_execution_policy(execution),
    )
    return executor.run()


def _register_backends() -> None:
    if "serial" not in BACKENDS:
        BACKENDS.register("serial", serial_backend)
    if "sharded" not in BACKENDS:
        BACKENDS.register("sharded", sharded_backend)


def register_builtins() -> None:
    """Idempotently register every built-in component."""
    _register_models()
    _register_datasets()
    _register_error_models()
    _register_protections()
    _register_tasks()
    _register_backends()


register_builtins()
