"""Content-addressed store for executed sweep grid points.

Layout of a store directory::

    store/
      <run_id>/              # one committed grid point
        point.json           # schema_version, run_id, spec doc, summary, files
        point_state.pkl      # picklable task state + evaluation context
        <record files...>    # the campaign's streamed CSV/JSON outputs
      <run_id>.wip/          # a point currently executing (atomically renamed
                             # to <run_id>/ on commit; leftovers are harmless)
      sweep_manifest.json    # per-sweep completion record (RunManifest idiom)

The run ID is content-addressed: a short digest over the point's *canonical*
spec document (everything that affects the numbers — model, dataset,
scenario, protection, task, options; **not** execution knobs like worker
count or retry policy) together with the model-weight fingerprint.  Equal
run ID ⟹ bit-identical campaign, so a lookup hit is always safe to reuse
and a committed point directory is never rewritten (its bytes and mtimes
stay untouched across re-runs).

Crash safety follows the repo-wide idiom: all execution happens in a
``<run_id>.wip`` directory; ``point.json`` is the commit marker, written
last via an fsync'd atomic replace before the directory itself is renamed
into place.  A corrupt, truncated or digest-mismatched point directory is
*demoted to pending* — :meth:`CampaignStore.lookup` returns ``None`` and the
next run recomputes and atomically replaces it.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.alficore.digests import SHORT_DIGEST_LENGTH, config_digest
from repro.alficore.resilience import atomic_replace_json, atomic_write_pickle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.result import CampaignResult
    from repro.experiments.spec import ExperimentSpec

POINT_SCHEMA_VERSION = 1
SWEEP_MANIFEST_SCHEMA_VERSION = 1

#: spec fields that change *how* a campaign runs but not *what* it computes —
#: excluded from the canonical document so e.g. ``--workers 4`` still reuses
#: the points a serial run committed.
_NON_CANONICAL_FIELDS = (
    "schema_version",
    "name",
    "backend",
    "caching",
    "execution",
    "output_dir",
    "sweep",
)


class StoreError(RuntimeError):
    """Raised for unusable campaign-store directories or handles."""


def canonical_spec_document(spec: "ExperimentSpec") -> dict:
    """The result-determining subset of a spec, as a plain document.

    Two specs with equal canonical documents (and equal model weights)
    produce bit-identical campaigns — execution-policy fields are dropped.
    """
    document = spec.as_dict()
    for fields_name in _NON_CANONICAL_FIELDS:
        document.pop(fields_name, None)
    return document


def point_run_id(canonical_document: dict, weights_fingerprint: str) -> str:
    """Content-addressed run ID of one grid point."""
    return config_digest(
        {"spec": canonical_document, "weights": weights_fingerprint}
    )[:SHORT_DIGEST_LENGTH]


@dataclass
class StoredPoint:
    """Read handle on one committed grid point.

    ``document`` is the verified ``point.json`` body; ``path`` the committed
    point directory.  :meth:`load_result` rebuilds a full
    :class:`~repro.experiments.result.CampaignResult` lazily from the
    persisted task state — nothing heavy is loaded until asked for.
    """

    run_id: str
    path: Path
    document: dict = field(default_factory=dict)

    @property
    def summary(self) -> dict:
        """The point's persisted KPI summary (parsed lazily from disk)."""
        return dict(self.document.get("summary") or {})

    @property
    def overrides(self) -> dict:
        """The axis-path → value assignment that produced this point."""
        return dict(self.document.get("overrides") or {})

    @property
    def output_files(self) -> dict[str, str]:
        """Absolute paths of the point's record files, keyed by tag."""
        return {
            tag: str(self.path / name)
            for tag, name in (self.document.get("files") or {}).items()
        }

    def load_result(self) -> "CampaignResult":
        """Rebuild the point's :class:`CampaignResult` from the store.

        The persisted aggregate task state is unpickled and re-evaluated
        through the task plug-in, so the handle behaves exactly like the one
        :func:`repro.experiments.run` returned when the point first ran.
        """
        from repro.experiments.builtins import register_builtins
        from repro.experiments.registry import TASKS
        from repro.experiments.result import CampaignResult
        from repro.experiments.spec import ExperimentSpec

        state_path = self.path / "point_state.pkl"
        try:
            with open(state_path, "rb") as handle:
                payload = pickle.load(handle)
            state = payload["state"]
            context = dict(payload["context"])
        except Exception as error:
            raise StoreError(
                f"point {self.run_id} has no readable state ({state_path}): {error}"
            ) from error
        register_builtins()
        plugin = TASKS.get(self.document["task"])
        evaluated, extras = plugin.evaluate(state, context)
        return CampaignResult(
            spec=ExperimentSpec.from_dict(self.document["spec"]),
            task=self.document["task"],
            summary=self.summary,
            output_files=self.output_files,
            state=state,
            results=evaluated,
            extras=extras,
            context=context,
        )


class CampaignStore:
    """Directory of committed grid points, addressed by run ID."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def point_dir(self, run_id: str) -> Path:
        """Directory of one stored grid point (keyed by its content digest)."""
        return self.root / run_id

    def wip_dir(self, run_id: str) -> Path:
        """Scratch directory a point writes into before its atomic publish."""
        return self.root / f"{run_id}.wip"

    def manifest_path(self) -> Path:
        """Path of the sweep's crash-safe resume manifest."""
        return self.root / "sweep_manifest.json"

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def lookup(self, run_id: str) -> StoredPoint | None:
        """The committed point for ``run_id``, or ``None`` if it must run.

        Any defect — missing directory, unreadable/torn ``point.json``,
        wrong schema, a run ID that no longer matches the stored canonical
        document (tampering), or a missing record file — demotes the point
        to pending rather than raising: the sweep simply recomputes it.
        The lookup is read-only; a hit leaves the directory's bytes and
        mtimes untouched.
        """
        path = self.point_dir(run_id)
        marker = path / "point.json"
        try:
            with open(marker, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("schema_version") != POINT_SCHEMA_VERSION:
            return None
        if document.get("run_id") != run_id:
            return None
        try:
            derived = point_run_id(
                document["canonical_spec"], document["weights_fingerprint"]
            )
        except (KeyError, TypeError):
            return None
        if derived != run_id:
            return None  # stored inputs no longer hash to this address
        files = document.get("files") or {}
        if not isinstance(files, dict):
            return None
        for name in files.values():
            if not (path / str(name)).is_file():
                return None
        if not (path / "point_state.pkl").is_file():
            return None
        return StoredPoint(run_id=run_id, path=path, document=document)

    def completed_run_ids(self) -> list[str]:
        """Run IDs of every verifiably committed point in the store."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and not entry.name.endswith(".wip"):
                if self.lookup(entry.name) is not None:
                    found.append(entry.name)
        return found

    # ------------------------------------------------------------------ #
    # execution lifecycle
    # ------------------------------------------------------------------ #
    def begin(self, run_id: str, resume: bool = False) -> Path:
        """Open (and return) the work-in-progress directory for a point.

        Without ``resume`` any leftover ``.wip`` directory from a crashed
        run is discarded so the campaign starts clean; with ``resume`` it is
        kept so the shard-level run manifest inside it can skip completed
        shard ranges.
        """
        wip = self.wip_dir(run_id)
        if not resume and wip.exists():
            shutil.rmtree(wip)
        wip.mkdir(parents=True, exist_ok=True)
        return wip

    def commit(
        self,
        run_id: str,
        result: "CampaignResult",
        *,
        canonical_spec: dict,
        weights_fingerprint: str,
        overrides: dict,
    ) -> StoredPoint:
        """Promote the point's ``.wip`` directory to its committed address.

        Persists the task state, then writes ``point.json`` (the commit
        marker) with an fsync'd atomic replace, then renames the directory
        into place — a crash at any step leaves either the old committed
        point or a demoted-to-pending leftover, never a half-valid point.
        """
        wip = self.wip_dir(run_id)
        if not wip.is_dir():
            raise StoreError(f"no work-in-progress directory for point {run_id}")
        atomic_write_pickle(
            wip / "point_state.pkl",
            {"state": result.state, "context": dict(result.context)},
        )
        files = {}
        for tag, file_path in result.output_files.items():
            file_path = Path(file_path)
            try:
                name = file_path.relative_to(wip)
            except ValueError:
                # A file outside the wip dir (pre-existing artifact) is
                # copied in so the committed point is self-contained.
                name = Path(file_path.name)
                shutil.copy2(file_path, wip / name)
            files[tag] = str(name)
        summary = dict(result.summary)
        if "output_files" in summary:
            # The campaign ran in the .wip directory; after the rename those
            # paths are stale.  Record the committed-relative names instead.
            summary["output_files"] = dict(files)
        document = {
            "schema_version": POINT_SCHEMA_VERSION,
            "run_id": run_id,
            "task": result.task,
            "canonical_spec": canonical_spec,
            "weights_fingerprint": weights_fingerprint,
            "spec": result.spec.as_dict(),
            "overrides": _json_plain(overrides),
            "summary": _json_plain(summary),
            "files": files,
        }
        atomic_replace_json(wip / "point.json", document)
        final = self.point_dir(run_id)
        if final.exists():
            shutil.rmtree(final)
        os.replace(wip, final)
        _fsync_directory(self.root)
        point = self.lookup(run_id)
        if point is None:  # pragma: no cover - defensive
            raise StoreError(f"point {run_id} failed post-commit verification")
        return point

    def discard(self, run_id: str) -> None:
        """Drop a point's work-in-progress directory (failed execution)."""
        wip = self.wip_dir(run_id)
        if wip.exists():
            shutil.rmtree(wip)


class SweepManifest:
    """Crash-safe record of the completed grid points of one sweep.

    The shard-level :class:`~repro.alficore.resilience.RunManifest` idiom at
    grid-point granularity: a small JSON document under the store root,
    updated with fsync'd atomic replaces, guarded by a digest of the sweep
    configuration so a manifest is never silently reused for a different
    sweep.  Entries are keyed by point index and record the point's run ID.
    """

    def __init__(
        self,
        path: str | Path,
        config: dict,
        completed: dict[int, dict] | None = None,
    ) -> None:
        self.path = Path(path)
        self.config = config
        self.digest = config_digest(config)
        self.completed: dict[int, dict] = dict(completed or {})

    @classmethod
    def fresh(cls, path: str | Path, config: dict) -> "SweepManifest":
        """A new manifest for ``digest`` with no completed points."""
        manifest = cls(path, config)
        manifest.save()
        return manifest

    @classmethod
    def load(cls, path: str | Path) -> "SweepManifest | None":
        """Load from disk; ``None`` if missing, unreadable or tampered."""
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            config = document["config"]
            completed = {
                int(index): dict(entry)
                for index, entry in document.get("completed", {}).items()
            }
            manifest = cls(path, config, completed)
            if document.get("config_digest") != manifest.digest:
                return None
            return manifest
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def matches(self, config: dict) -> bool:
        """True if this manifest belongs to the sweep with ``digest``."""
        return self.digest == config_digest(config)

    def is_completed(self, index: int) -> bool:
        """True if ``point_digest`` is recorded as completed."""
        return index in self.completed

    def mark_completed(self, index: int, run_id: str, *, cached: bool) -> None:
        """Record ``point_digest`` as completed (idempotent)."""
        self.completed[index] = {"run_id": run_id, "cached": cached}
        self.save()

    def mark_pending(self, index: int) -> None:
        """Drop ``point_digest`` from the completed set (for re-execution)."""
        if index in self.completed:
            del self.completed[index]
            self.save()

    def save(self) -> None:
        """Atomically persist the manifest (write + rename)."""
        atomic_replace_json(
            self.path,
            {
                "schema_version": SWEEP_MANIFEST_SCHEMA_VERSION,
                "config_digest": self.digest,
                "config": self.config,
                "completed": {
                    str(index): entry
                    for index, entry in sorted(self.completed.items())
                },
            },
        )


def _json_plain(value: Any) -> Any:
    """Round-trip through JSON so in-memory and store-loaded values format
    identically (tuples become lists, numpy scalars become numbers, ...)."""
    return json.loads(json.dumps(value, sort_keys=True, default=_coerce))


def _coerce(value: Any) -> Any:
    item = getattr(value, "item", None)
    if callable(item):
        return item()  # numpy scalar
    return str(value)


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry (rename durability on POSIX filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory handles
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
