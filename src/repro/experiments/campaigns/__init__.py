"""Content-addressed campaign store (the sweep persistence layer).

A :class:`CampaignStore` keeps one directory per executed grid point,
addressed by a *run ID* — a digest of the point's canonical spec document
plus the model-weight fingerprint — so re-running a sweep skips every point
whose inputs are bit-identical, across processes and machines sharing one
store directory.  :class:`SweepManifest` records the completed points of one
sweep at grid-point granularity with the same crash-safe atomic-replace
idiom the shard-level :class:`~repro.alficore.resilience.RunManifest` uses.
"""

from repro.experiments.campaigns.store import (
    CampaignStore,
    StoredPoint,
    StoreError,
    SweepManifest,
    canonical_spec_document,
    point_run_id,
)

__all__ = [
    "CampaignStore",
    "StoreError",
    "StoredPoint",
    "SweepManifest",
    "canonical_spec_document",
    "point_run_id",
]
