"""The declarative experiment specification.

One :class:`ExperimentSpec` describes a complete fault-injection campaign —
model, dataset, scenario, protection, task, execution backend and caching —
and round-trips to YAML/JSON with a ``schema_version`` and strict
unknown-key validation.  It is the single input of
:func:`repro.experiments.run`.

Schema (YAML)::

    schema_version: 1
    name: quickstart
    task: classification            # registry: TASKS
    model:
      name: lenet5                  # registry: MODELS
      params: {num_classes: 10, seed: 0}
    dataset:
      name: synthetic-classification  # registry: DATASETS
      params: {num_samples: 30, num_classes: 10, noise: 0.25, seed: 1}
    protection: null                # or {name: ranger, params: {...}}
    scenario:                       # the ScenarioConfig document
      schema_version: 1
      injection_target: weights
      ...
    backend:
      name: serial                  # registry: BACKENDS ("serial" | "sharded")
      workers: 1
      num_shards: null
      step_range: null              # optional [start, stop) slice of the campaign
    caching:
      golden_cache_mb: 0
      prefix_reuse: true
    execution:                      # fault tolerance of the campaign run
      retries: 2                    # extra attempts per failed shard
      shard_timeout: null           # per-shard wall-clock deadline (seconds)
      backoff: 0.5                  # base of the capped exponential re-queue delay
      resume: false                 # skip manifest-recorded completed shards
    sweep: null                     # or a parameter grid (see SweepSpec):
    #   schema_version: 1
    #   axes:                       # cartesian product, declaration order
    #     scenario.layer_range: [[0, 0], [1, 1], [2, 2]]
    #     scenario.rnd_bit_range: [[23, 23], [30, 30]]
    #   points:                     # explicit extra grid points
    #     - {scenario.rnd_bit_range: [0, 0]}
    #   store: sweep_store          # campaign store directory (run_id-addressed)
    input_shape: null               # per-sample shape; task default when null
    dl_shuffle: false
    output_dir: null                # directory for result files; null = no files
    task_options: {}                # task-plugin specific knobs
"""

from __future__ import annotations

import dataclasses
import difflib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import yaml

from repro.alficore.scenario import ScenarioConfig, coerce_schema_version, default_scenario

SPEC_SCHEMA_VERSION = 1


class SpecError(ValueError):
    """Raised for malformed experiment specifications."""


def _reject_unknown(data: dict, known: set[str], where: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"unknown {where} keys: {unknown}; known keys: {sorted(known)}"
        )


def _int_field(value: object, where: str) -> int:
    if isinstance(value, bool):
        raise SpecError(f"{where} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise SpecError(f"{where} must be an integer, got {value!r}")


@dataclass
class ComponentSpec:
    """A registry reference: component ``name`` plus factory ``params``."""

    name: str
    params: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "params": _plain(self.params)}

    @classmethod
    def from_dict(cls, data: dict | str, where: str) -> "ComponentSpec":
        """Parse from a plain mapping, rejecting unknown keys and bad types."""
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, dict):
            raise SpecError(f"{where} must be a name or a mapping, got {type(data).__name__}")
        _reject_unknown(data, {"name", "params"}, where)
        if data.get("name") is None:
            raise SpecError(f"{where} requires a 'name'")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise SpecError(f"{where}.params must be a mapping, got {type(params).__name__}")
        return cls(name=str(data["name"]), params=dict(params))


@dataclass
class BackendSpec:
    """Execution backend selection (see ``BACKENDS`` registry)."""

    name: str = "serial"
    workers: int = 1
    num_shards: int | None = None
    step_range: tuple[int, int] | None = None

    def as_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "workers": self.workers,
            "num_shards": self.num_shards,
            "step_range": list(self.step_range) if self.step_range is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict | str) -> "BackendSpec":
        """Parse from a plain mapping, rejecting unknown keys and bad types."""
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, dict):
            raise SpecError(f"backend must be a name or a mapping, got {type(data).__name__}")
        _reject_unknown(data, {"name", "workers", "num_shards", "step_range"}, "backend")
        step_range = data.get("step_range")
        if step_range is not None:
            if not isinstance(step_range, (list, tuple)) or len(step_range) != 2:
                raise SpecError(
                    f"backend.step_range must be a [start, stop) pair, got {step_range!r}"
                )
            step_range = (
                _int_field(step_range[0], "backend.step_range[0]"),
                _int_field(step_range[1], "backend.step_range[1]"),
            )
        workers = data.get("workers")
        return cls(
            name=str(data.get("name") or "serial"),
            workers=_int_field(workers if workers is not None else 1, "backend.workers"),
            num_shards=(
                _int_field(data["num_shards"], "backend.num_shards")
                if data.get("num_shards") is not None
                else None
            ),
            step_range=step_range,
        )

    def validate(self) -> None:
        """Raise :class:`SpecError` on invalid field values or combinations."""
        if self.workers < 1:
            raise SpecError(f"backend.workers must be >= 1, got {self.workers}")
        if self.name == "serial" and self.workers != 1:
            raise SpecError(
                f"backend 'serial' runs with workers=1 (got {self.workers}); "
                "use backend 'sharded' for parallel execution"
            )
        if self.num_shards is not None and self.num_shards < 1:
            raise SpecError(f"backend.num_shards must be >= 1, got {self.num_shards}")
        if self.name == "serial" and self.num_shards not in (None, 1):
            raise SpecError(
                f"backend 'serial' runs unsharded (got num_shards={self.num_shards}); "
                "use backend 'sharded' for shard partitioning"
            )
        if self.name == "sharded" and self.step_range is not None:
            raise SpecError(
                "backend 'sharded' does not support step_range; run 'serial' slices "
                "and combine them with CampaignResult.merge"
            )
        if self.step_range is not None:
            start, stop = self.step_range
            if start < 0 or stop < start:
                raise SpecError(f"backend.step_range {self.step_range} is not a valid [start, stop)")


@dataclass
class CachingSpec:
    """Golden-cache budget and prefix-reuse switch."""

    golden_cache_mb: int = 0
    prefix_reuse: bool = True

    def as_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {"golden_cache_mb": self.golden_cache_mb, "prefix_reuse": self.prefix_reuse}

    @classmethod
    def from_dict(cls, data: dict) -> "CachingSpec":
        """Parse from a plain mapping, rejecting unknown keys and bad types."""
        if not isinstance(data, dict):
            raise SpecError(f"caching must be a mapping, got {type(data).__name__}")
        _reject_unknown(data, {"golden_cache_mb", "prefix_reuse"}, "caching")
        prefix_reuse = data.get("prefix_reuse")
        golden_cache_mb = data.get("golden_cache_mb")
        return cls(
            # Explicit nulls (e.g. unset template variables) mean "default",
            # like everywhere else in the schema.
            golden_cache_mb=_int_field(
                golden_cache_mb if golden_cache_mb is not None else 0,
                "caching.golden_cache_mb",
            ),
            prefix_reuse=True if prefix_reuse is None else bool(prefix_reuse),
        )

    def validate(self) -> None:
        """Raise :class:`SpecError` on invalid field values or combinations."""
        if self.golden_cache_mb < 0:
            raise SpecError(f"caching.golden_cache_mb must be >= 0, got {self.golden_cache_mb}")


def _float_field(value: object, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{where} must be a number, got {value!r}")
    return float(value)


@dataclass
class ExecutionSpec:
    """Fault-tolerance knobs of the supervised campaign executor.

    Maps onto :class:`repro.alficore.resilience.ExecutionPolicy`: ``retries``
    extra attempts per failed shard, an optional per-shard wall-clock
    ``shard_timeout`` (seconds), the base ``backoff`` of the capped
    exponential re-queue delay, and ``resume`` to skip shards the run
    manifest records as completed.  ``executor`` selects the forward-plan
    execution backend (:func:`repro.nn.ir.register_executor` registry:
    ``"module"``, ``"interpreter"``, ``"fused"``); it is validated bit-exactly
    at plan-trace time with silent fallback to the module path, so the knob
    can change speed but never results.
    """

    retries: int = 2
    shard_timeout: float | None = None
    backoff: float = 0.5
    resume: bool = False
    executor: str = "interpreter"

    def as_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "retries": self.retries,
            "shard_timeout": self.shard_timeout,
            "backoff": self.backoff,
            "resume": self.resume,
            "executor": self.executor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionSpec":
        """Parse from a plain mapping, rejecting unknown keys and bad types."""
        if not isinstance(data, dict):
            raise SpecError(f"execution must be a mapping, got {type(data).__name__}")
        _reject_unknown(
            data, {"retries", "shard_timeout", "backoff", "resume", "executor"}, "execution"
        )
        retries = data.get("retries")
        backoff = data.get("backoff")
        shard_timeout = data.get("shard_timeout")
        executor = data.get("executor")
        return cls(
            # Explicit nulls mean "default", like everywhere else in the schema.
            retries=_int_field(retries if retries is not None else 2, "execution.retries"),
            shard_timeout=(
                _float_field(shard_timeout, "execution.shard_timeout")
                if shard_timeout is not None
                else None
            ),
            backoff=_float_field(backoff if backoff is not None else 0.5, "execution.backoff"),
            resume=bool(data.get("resume", False)),
            executor=str(executor) if executor is not None else "interpreter",
        )

    def validate(self) -> None:
        """Raise :class:`SpecError` on invalid field values or combinations."""
        if self.retries < 0:
            raise SpecError(f"execution.retries must be >= 0, got {self.retries}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise SpecError(
                f"execution.shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.backoff < 0:
            raise SpecError(f"execution.backoff must be >= 0, got {self.backoff}")
        from repro.nn.ir import executor_names

        known = executor_names()
        if self.executor not in known:
            raise SpecError(
                f"execution.executor must be one of {known}, got {self.executor!r}"
            )


SWEEP_SCHEMA_VERSION = 1

#: sweep-axis grammar: dotted paths into the experiment spec.  ``<key>`` is
#: free-form (params/task_options accept arbitrary keys); ``scenario.<field>``
#: is validated against the ScenarioConfig fields.
SWEEP_AXIS_FORMS = (
    "task",
    "model.name",
    "model.params.<key>",
    "dataset.name",
    "dataset.params.<key>",
    "protection",
    "protection.name",
    "protection.params.<key>",
    "scenario.<field>",
    "task_options.<key>",
    "input_shape",
    "dl_shuffle",
)


def _scenario_field_names() -> list[str]:
    return [f.name for f in dataclasses.fields(ScenarioConfig)]


def _axis_error(path: str, detail: str) -> SpecError:
    """A sweep-axis error with a did-you-mean suggestion."""
    candidates = (
        ["task", "model.name", "dataset.name", "protection", "protection.name",
         "input_shape", "dl_shuffle"]
        + [f"scenario.{name}" for name in _scenario_field_names()]
    )
    suggestions = difflib.get_close_matches(path, candidates, n=3, cutoff=0.5)
    message = f"invalid sweep axis {path!r}: {detail}"
    if suggestions:
        message += f"; did you mean {', '.join(repr(s) for s in suggestions)}?"
    message += f" (axis forms: {', '.join(SWEEP_AXIS_FORMS)})"
    return SpecError(message)


def validate_sweep_axis(path: str) -> None:
    """Check one sweep-axis path against the axis grammar.

    Raises :class:`SpecError` with a did-you-mean suggestion for typos —
    ``scenario.<field>`` names are validated against the actual
    :class:`ScenarioConfig` fields, the component roots against the spec
    structure.
    """
    if not isinstance(path, str) or not path:
        raise SpecError(f"sweep axis must be a non-empty string, got {path!r}")
    parts = path.split(".")
    root, rest = parts[0], parts[1:]
    if root in ("task", "input_shape", "dl_shuffle"):
        if rest:
            raise _axis_error(path, f"{root!r} takes no sub-path")
        return
    if root in ("model", "dataset", "protection"):
        if not rest:
            if root == "protection":
                return  # whole-component axis: null / name / {name, params}
            raise _axis_error(path, f"pick {root}.name or {root}.params.<key>")
        if rest[0] == "name" and len(rest) == 1:
            return
        if rest[0] == "params" and len(rest) == 2:
            return
        raise _axis_error(path, f"pick {root}.name or {root}.params.<key>")
    if root == "scenario":
        known = _scenario_field_names()
        if len(rest) == 1 and rest[0] in known:
            return
        detail = (
            f"unknown scenario field {rest[0]!r}" if len(rest) == 1
            else "pick exactly one scenario field"
        )
        raise _axis_error(path, detail)
    if root == "task_options":
        if len(rest) == 1 and rest[0]:
            return
        raise _axis_error(path, "pick task_options.<key>")
    raise _axis_error(path, f"unknown axis root {root!r}")


@dataclass
class SweepSpec:
    """A declarative parameter grid over experiment-spec fields.

    ``axes`` maps dotted axis paths (see :data:`SWEEP_AXIS_FORMS`) to their
    value lists; the grid is their cartesian product in *declaration order*
    (the last declared axis varies fastest).  ``points`` appends explicit
    grid points — mappings of axis paths to values — after the product, for
    the odd extra configurations a product cannot express.  ``store`` names
    the campaign-store directory holding the content-addressed per-point
    results (``<store>/<run_id>/``).
    """

    axes: dict[str, list] = field(default_factory=dict)
    points: list[dict] = field(default_factory=list)
    store: Path | None = None

    def as_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "axes": {path: _plain(list(values)) for path, values in self.axes.items()},
            "points": [_plain(dict(point)) for point in self.points],
            "store": str(self.store) if self.store is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Parse from a plain mapping, rejecting unknown keys and bad types."""
        if not isinstance(data, dict):
            raise SpecError(f"sweep must be a mapping, got {type(data).__name__}")
        try:
            coerce_schema_version(data.get("schema_version"), SWEEP_SCHEMA_VERSION, "sweep")
        except ValueError as error:
            raise SpecError(str(error)) from None
        _reject_unknown(data, {"schema_version", "axes", "points", "store"}, "sweep")
        axes = data.get("axes") or {}
        if not isinstance(axes, dict):
            raise SpecError(f"sweep.axes must be a mapping, got {type(axes).__name__}")
        points = data.get("points") or []
        if not isinstance(points, list):
            raise SpecError(f"sweep.points must be a list, got {type(points).__name__}")
        for point in points:
            if not isinstance(point, dict):
                raise SpecError(
                    f"sweep.points entries must be mappings, got {type(point).__name__}"
                )
        store = data.get("store")
        return cls(
            axes={str(path): list(values) for path, values in axes.items()},
            points=[dict(point) for point in points],
            store=Path(store) if store else None,
        )

    def validate(self) -> None:
        """Raise :class:`SpecError` on invalid field values or combinations."""
        if not self.axes and not self.points:
            raise SpecError("sweep declares neither axes nor points")
        for path, values in self.axes.items():
            validate_sweep_axis(path)
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(
                    f"sweep axis {path!r} needs a non-empty list of values, got {values!r}"
                )
        for point in self.points:
            if not point:
                raise SpecError("sweep.points entries must not be empty")
            for path in point:
                validate_sweep_axis(path)

    def copy(self) -> "SweepSpec":
        """Deep-enough copy: axes/points lists are duplicated."""
        return SweepSpec(
            axes={path: list(values) for path, values in self.axes.items()},
            points=[dict(point) for point in self.points],
            store=self.store,
        )


def _plain(value: Any) -> Any:
    """Recursively convert to YAML/JSON-serialisable plain python.

    Delegates to the result writer's converter so numpy scalars/arrays and
    Paths in spec params serialize the same way everywhere.
    """
    from repro.alficore.results import _to_plain

    return _to_plain(value)


@dataclass
class ExperimentSpec:
    """Complete declarative description of one fault-injection experiment."""

    name: str = "experiment"
    task: str = "classification"
    model: ComponentSpec = field(default_factory=lambda: ComponentSpec("lenet5"))
    dataset: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("synthetic-classification")
    )
    scenario: ScenarioConfig = field(default_factory=default_scenario)
    protection: ComponentSpec | None = None
    backend: BackendSpec = field(default_factory=BackendSpec)
    caching: CachingSpec = field(default_factory=CachingSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    sweep: SweepSpec | None = None
    input_shape: tuple[int, ...] | None = None
    dl_shuffle: bool = False
    output_dir: Path | None = None
    task_options: dict = field(default_factory=dict)

    @classmethod
    def _known_fields(cls) -> set[str]:
        return {f.name for f in dataclasses.fields(cls)} | {"schema_version"}

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self, registries: bool = False) -> None:
        """Check structural consistency; with ``registries=True`` also check
        that every referenced component name is registered (did-you-mean
        errors for typos)."""
        if not self.name:
            raise SpecError("experiment name must not be empty")
        self.backend.validate()
        self.caching.validate()
        self.execution.validate()
        self.scenario.validate()
        if self.sweep is not None:
            self.sweep.validate()
        if self.execution.resume and self.backend.name == "serial":
            raise SpecError(
                "execution.resume requires the 'sharded' backend: the run "
                "manifest tracks completed shard ranges"
            )
        if self.execution.resume and self.output_dir is None:
            raise SpecError(
                "execution.resume requires output_dir: the run manifest and "
                "the per-shard record files live there"
            )
        if self.input_shape is not None:
            self.input_shape = tuple(int(v) for v in self.input_shape)
            if any(v <= 0 for v in self.input_shape):
                raise SpecError(f"input_shape must be positive, got {self.input_shape}")
        if registries:
            from repro.experiments.builtins import register_builtins
            from repro.experiments.registry import (
                BACKENDS,
                DATASETS,
                ERROR_MODELS,
                MODELS,
                PROTECTIONS,
                TASKS,
            )

            # Pick up components added to the legacy model registries after
            # repro.experiments was first imported (idempotent, cheap).
            register_builtins()

            plugin = TASKS.get(self.task)
            MODELS.get(self.model.name)
            model_kind = MODELS.metadata(self.model.name).get("kind")
            expected_kind = getattr(plugin, "model_kind", None)
            if model_kind is not None and expected_kind is not None and model_kind != expected_kind:
                choices = ", ".join(MODELS.names(kind=expected_kind)) or "none registered"
                raise SpecError(
                    f"model {self.model.name!r} is registered as a {model_kind!r} but task "
                    f"{self.task!r} expects a {expected_kind!r} model (choices: {choices})"
                )
            DATASETS.get(self.dataset.name)
            dataset_task = DATASETS.metadata(self.dataset.name).get("task")
            if dataset_task is not None and dataset_task != self.task:
                choices = ", ".join(DATASETS.names(task=self.task)) or "none registered"
                raise SpecError(
                    f"dataset {self.dataset.name!r} is registered for task "
                    f"{dataset_task!r} but the spec's task is {self.task!r} "
                    f"(choices: {choices})"
                )
            BACKENDS.get(self.backend.name)
            ERROR_MODELS.get(self.scenario.rnd_value_type)
            if self.protection is not None:
                PROTECTIONS.get(self.protection.name)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Plain-python document (the YAML/JSON body)."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "task": self.task,
            "model": self.model.as_dict(),
            "dataset": self.dataset.as_dict(),
            "scenario": self.scenario.as_dict(),
            "protection": self.protection.as_dict() if self.protection is not None else None,
            "backend": self.backend.as_dict(),
            "caching": self.caching.as_dict(),
            "execution": self.execution.as_dict(),
            "sweep": self.sweep.as_dict() if self.sweep is not None else None,
            "input_shape": list(self.input_shape) if self.input_shape is not None else None,
            "dl_shuffle": self.dl_shuffle,
            "output_dir": str(self.output_dir) if self.output_dir is not None else None,
            "task_options": _plain(self.task_options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Build a spec from a document; unknown keys and newer schema
        versions are errors."""
        if not isinstance(data, dict):
            raise SpecError(f"experiment spec must be a mapping, got {type(data).__name__}")
        try:
            coerce_schema_version(data.get("schema_version"), SPEC_SCHEMA_VERSION, "spec")
        except ValueError as error:
            raise SpecError(str(error)) from None
        _reject_unknown(data, cls._known_fields(), "experiment spec")
        scenario_doc = data.get("scenario") or {}
        if not isinstance(scenario_doc, dict):
            raise SpecError(
                f"scenario must be a mapping, got {type(scenario_doc).__name__}"
            )
        try:
            scenario = ScenarioConfig.from_dict(scenario_doc)
        except KeyError as error:
            raise SpecError(f"invalid scenario section: {error.args[0]}") from error
        protection = data.get("protection")
        input_shape = data.get("input_shape")
        if input_shape is not None:
            if not isinstance(input_shape, (list, tuple)):
                raise SpecError(
                    f"input_shape must be a list of dimensions, got {input_shape!r}"
                )
            input_shape = tuple(_int_field(v, "input_shape entry") for v in input_shape)
        output_dir = data.get("output_dir")
        task_options = data.get("task_options") or {}
        if not isinstance(task_options, dict):
            raise SpecError(
                f"task_options must be a mapping, got {type(task_options).__name__}"
            )
        spec = cls(
            name=str(data.get("name") or "experiment"),
            task=str(data.get("task") or "classification"),
            model=ComponentSpec.from_dict(data.get("model", {"name": "lenet5"}), "model"),
            dataset=ComponentSpec.from_dict(
                data.get("dataset", {"name": "synthetic-classification"}), "dataset"
            ),
            scenario=scenario,
            protection=(
                ComponentSpec.from_dict(protection, "protection")
                if protection is not None
                else None
            ),
            backend=BackendSpec.from_dict(data.get("backend") or {}),
            caching=CachingSpec.from_dict(data.get("caching") or {}),
            execution=ExecutionSpec.from_dict(data.get("execution") or {}),
            sweep=(
                SweepSpec.from_dict(data["sweep"])
                if data.get("sweep") is not None
                else None
            ),
            input_shape=input_shape,
            dl_shuffle=bool(data.get("dl_shuffle", False)),
            output_dir=Path(output_dir) if output_dir else None,
            task_options=dict(task_options),
        )
        spec.validate()
        return spec

    def copy(self, **overrides: Any) -> "ExperimentSpec":
        """A deep copy with selected (top-level) fields replaced."""
        clone = dataclasses.replace(
            self,
            model=dataclasses.replace(self.model, params=dict(self.model.params)),
            dataset=dataclasses.replace(self.dataset, params=dict(self.dataset.params)),
            scenario=self.scenario.copy(),
            protection=(
                dataclasses.replace(self.protection, params=dict(self.protection.params))
                if self.protection is not None
                else None
            ),
            backend=dataclasses.replace(self.backend),
            caching=dataclasses.replace(self.caching),
            execution=dataclasses.replace(self.execution),
            sweep=self.sweep.copy() if self.sweep is not None else None,
            task_options=dict(self.task_options),
        )
        field_names = {f.name for f in dataclasses.fields(self)}
        for key, value in overrides.items():
            if key not in field_names:
                raise SpecError(f"unknown spec field {key!r}")
            setattr(clone, key, value)
        clone.validate()
        return clone

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_yaml(self) -> str:
        """The spec as a YAML document string."""
        return "# repro experiment specification\n" + yaml.safe_dump(
            self.as_dict(), default_flow_style=False, sort_keys=True
        )

    def to_json(self) -> str:
        """The spec as a JSON document string."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the spec to ``path`` (format chosen by suffix: .json or YAML)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_json() if path.suffix == ".json" else self.to_yaml()
        path.write_text(text, encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a YAML or JSON file."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"experiment spec not found: {path}")
        text = path.read_text(encoding="utf-8")
        data = json.loads(text) if path.suffix == ".json" else yaml.safe_load(text)
        if not isinstance(data, dict):
            raise SpecError(f"spec file {path} does not contain a mapping")
        return cls.from_dict(data)


def load_spec(path: str | Path) -> ExperimentSpec:
    """Module-level alias of :meth:`ExperimentSpec.load`."""
    return ExperimentSpec.load(path)
