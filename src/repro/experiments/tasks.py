"""Workload plug-ins of the Experiment API.

An :class:`ExperimentTask` adapts one workload family to the declarative
:func:`repro.experiments.run` entry point: it builds the model from the
``MODELS`` registry, instantiates the matching
:class:`~repro.alficore.campaign.CampaignTask`, evaluates the aggregate
campaign state into KPI objects, writes the workload's result-file set and
renders a terminal report.  Registering a new ``ExperimentTask`` (via
``register_task``) is all it takes to open a new workload — no new facade.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.alficore.campaign import ClassificationTask, DetectionTask
from repro.alficore.results import CampaignResultWriter
from repro.alficore.scenario import ScenarioConfig
from repro.eval.classification import evaluate_classification_campaign
from repro.eval.detection import evaluate_detection_campaign
from repro.experiments.registry import MODELS, PROTECTIONS
from repro.experiments.spec import ExperimentSpec


class ExperimentTask:
    """Base workload plug-in (see module docstring).

    Attributes:
        name: registry key.
        model_kind: ``MODELS`` metadata filter offered for this task
            (drives CLI ``choices``).
        default_input_shape: per-sample input shape used when the spec does
            not pin one.
        campaign_task_cls: the :class:`CampaignTask` class executing the
            lock-step loop (also provides ``merge_states``).
    """

    name = "task"
    model_kind = "classifier"
    default_input_shape: tuple[int, ...] = (3, 32, 32)
    campaign_task_cls = ClassificationTask

    # ------------------------------------------------------------------ #
    # construction hooks
    # ------------------------------------------------------------------ #
    def build_model(self, spec: ExperimentSpec, dataset: Any) -> Any:
        """Build (and prepare) the baseline model from the MODELS registry."""
        raise NotImplementedError

    def build_protection(self, spec: ExperimentSpec, model: Any, dataset: Any) -> Any:
        """Build the hardened ("resil") variant from the PROTECTIONS registry."""
        factory = PROTECTIONS.get(spec.protection.name)
        return factory(model, dataset, **spec.protection.params)

    def make_campaign_task(self, spec: ExperimentSpec) -> Any:
        """Instantiate the lock-step :class:`CampaignTask` for this run."""
        raise NotImplementedError

    def resolve_num_classes(self, spec: ExperimentSpec, dataset: Any, model: Any) -> int | None:
        """Number of classes for evaluation (model params > dataset > model)."""
        for source in (spec.model.params.get("num_classes"), getattr(dataset, "num_classes", None),
                       getattr(model, "num_classes", None)):
            if source is not None:
                return int(source)
        return None

    # ------------------------------------------------------------------ #
    # evaluation / persistence hooks
    # ------------------------------------------------------------------ #
    def evaluate(self, state: Any, context: dict) -> tuple[dict, dict]:
        """Turn the aggregate campaign state into ``(kpi_objects, extras)``.

        ``kpi_objects`` feed the summary/KPI files; ``extras`` are
        task-specific in-memory artifacts (raw arrays, prediction lists)
        exposed on the result — built in the same pass so large buffers are
        materialized once.
        """
        raise NotImplementedError

    def summarize(self, evaluated: dict, output_files: dict[str, str]) -> dict:
        """JSON-friendly summary of the evaluated KPIs."""
        summary: dict = {"output_files": dict(output_files)}
        if "corrupted" in evaluated:
            summary["corrupted"] = evaluated["corrupted"].as_dict()
        if "resil" in evaluated:
            summary["resil"] = evaluated["resil"].as_dict()
        return summary

    def aux_outputs(self, writer: CampaignResultWriter, state: Any, context: dict) -> dict[str, str]:
        """Extra task-specific files written between the fault matrix and the
        record streams (e.g. detection ground truth)."""
        return {}

    def write_outputs(
        self,
        writer: CampaignResultWriter | None,
        scenario: ScenarioConfig,
        wrapper: Any,
        state: Any,
        stream_paths: dict[str, str],
        evaluated: dict,
        context: dict,
    ) -> dict[str, str]:
        """Persist the workload's result-file set; returns ``{tag: path}``."""
        if writer is None:
            return dict(stream_paths)
        meta_extra: dict = {"model_name": context["model_name"]}
        if context.get("execution"):
            # Fault-tolerance knobs are run-time parameters, so they belong in
            # the meta file (resume is deliberately absent — see the runner).
            meta_extra["execution"] = dict(context["execution"])
        paths = {
            "meta": str(writer.write_meta(scenario, extra=meta_extra)),
            "faults": str(writer.write_fault_matrix(wrapper.get_fault_matrix())),
            **self.aux_outputs(writer, state, context),
            **stream_paths,
        }
        if evaluated and context.get("task_options", {}).get("write_kpis", True):
            kpis = {"corrupted": evaluated["corrupted"].as_dict()}
            if evaluated.get("resil") is not None:
                kpis["resil"] = evaluated["resil"].as_dict()
            paths["kpis"] = str(writer.write_kpi_summary(kpis))
        return paths

    def report(self, result: Any, spec: ExperimentSpec) -> str:
        """Human-readable terminal report of one finished campaign."""
        import json

        return json.dumps(result.summary, indent=2, default=str)


# --------------------------------------------------------------------------- #
# classification
# --------------------------------------------------------------------------- #
class ClassificationExperimentTask(ExperimentTask):
    """Image-classification campaigns (masked/SDE/DUE, top-k accuracy)."""

    name = "classification"
    model_kind = "classifier"
    default_input_shape = (3, 32, 32)
    campaign_task_cls = ClassificationTask

    def build_model(self, spec: ExperimentSpec, dataset: Any) -> Any:
        from repro.models.pretrained import fit_classifier_head

        factory = MODELS.get(spec.model.name)
        model = factory(**spec.model.params)
        if spec.task_options.get("fit_head", True):
            num_classes = self.resolve_num_classes(spec, dataset, model)
            if num_classes is None:
                raise ValueError(
                    "classification needs num_classes (model params or dataset attribute)"
                )
            fit_classifier_head(model, dataset, num_classes)
        return model.eval()

    def make_campaign_task(self, spec: ExperimentSpec) -> ClassificationTask:
        collect_outputs = bool(spec.task_options.get("collect_outputs", True))
        if not collect_outputs and spec.protection is not None:
            import warnings

            warnings.warn(
                "task_options collect_outputs=false drops the resil lane's KPIs "
                "(the streamed resil records are still written); keep "
                "collect_outputs on to evaluate the protection",
                RuntimeWarning,
                stacklevel=4,
            )
        return ClassificationTask(collect_outputs=collect_outputs)

    def evaluate(self, state: Any, context: dict) -> tuple[dict, dict]:
        if not state.golden_logits:
            # Streaming-only run (collect_outputs=False): the per-inference
            # records live in the stream files, but the state's counters are
            # enough to report the campaign KPIs with O(1) memory.
            return self._evaluate_from_counters(state, context), {}
        model_name = context["model_name"]
        golden = np.stack(state.golden_logits)
        corrupted = np.stack(state.corrupted_logits)
        labels = np.asarray(state.labels, dtype=np.int64)
        due = np.asarray(state.due_flags, dtype=bool)
        evaluated = {
            "corrupted": evaluate_classification_campaign(
                golden, corrupted, labels, due, model_name=model_name
            )
        }
        resil = None
        if state.resil_logits:
            resil = np.stack(state.resil_logits)
            resil_golden = np.stack(state.resil_golden_logits)
            evaluated["resil"] = evaluate_classification_campaign(
                resil_golden, resil, labels, model_name=f"{model_name}_resil"
            )
        extras = {
            "golden_logits": golden,
            "corrupted_logits": corrupted,
            "labels": labels,
            "due_flags": due,
            "resil_logits": resil,
        }
        return evaluated, extras

    @staticmethod
    def _evaluate_from_counters(state: Any, context: dict) -> dict:
        """KPIs of a streaming run, computed from the aggregate counters.

        Identical rates to the logit-based evaluation (same per-inference
        outcome classification fed both); the resil lane has no counters in
        streaming mode, so only the corrupted KPIs are reported.
        """
        from repro.eval.classification import ClassificationCampaignResult
        from repro.eval.sdc import FaultOutcome

        n = state.inferences
        if n == 0:
            return {}
        return {
            "corrupted": ClassificationCampaignResult(
                model_name=context["model_name"],
                num_inferences=n,
                golden_top1_accuracy=state.golden_top1_hits / n,
                golden_top5_accuracy=state.golden_top5_hits / n,
                corrupted_top1_accuracy=state.corrupted_top1_hits / n,
                masked_rate=state.outcomes.get(FaultOutcome.MASKED, 0) / n,
                sde_rate=state.outcomes.get(FaultOutcome.SDE, 0) / n,
                due_rate=state.outcomes.get(FaultOutcome.DUE, 0) / n,
            )
        }

    def report(self, result: Any, spec: ExperimentSpec) -> str:
        from repro.visualization import comparison_table

        corrupted = result.results.get("corrupted")
        if corrupted is None:
            return "campaign finished (streaming-only run; see result files)"
        rows = [
            {
                "variant": "corrupted",
                "golden top1": corrupted.golden_top1_accuracy,
                "masked": corrupted.masked_rate,
                "SDE": corrupted.sde_rate,
                "DUE": corrupted.due_rate,
            }
        ]
        resil = result.results.get("resil")
        if resil is not None:
            protection = spec.protection.name if spec.protection is not None else "resil"
            rows.append(
                {
                    "variant": f"resil ({protection})",
                    "golden top1": resil.golden_top1_accuracy,
                    "masked": resil.masked_rate,
                    "SDE": resil.sde_rate,
                    "DUE": resil.due_rate,
                }
            )
        scenario = spec.scenario
        return comparison_table(
            rows,
            ["variant", "golden top1", "masked", "SDE", "DUE"],
            title=(
                f"{spec.model.name}: {scenario.injection_target} fault injection "
                f"({scenario.max_faults_per_image} fault(s)/image)"
            ),
        )


# --------------------------------------------------------------------------- #
# object detection
# --------------------------------------------------------------------------- #
class DetectionExperimentTask(ExperimentTask):
    """Object-detection campaigns (IVMOD vulnerability + CoCo-style mAP)."""

    name = "detection"
    model_kind = "detector"
    default_input_shape = (3, 64, 64)
    campaign_task_cls = DetectionTask

    def build_model(self, spec: ExperimentSpec, dataset: Any) -> Any:
        factory = MODELS.get(spec.model.name)
        return factory(**spec.model.params).eval()

    def make_campaign_task(self, spec: ExperimentSpec) -> DetectionTask:
        return DetectionTask(
            collect_applied_log=bool(spec.task_options.get("collect_applied_log", True))
        )

    def evaluate(self, state: Any, context: dict) -> tuple[dict, dict]:
        model_name = context["model_name"]
        num_classes = context.get("num_classes")
        if num_classes is None:
            raise ValueError("detection evaluation requires num_classes in the context")
        evaluated = {
            "corrupted": evaluate_detection_campaign(
                state.golden_predictions,
                state.corrupted_predictions,
                state.targets,
                num_classes,
                model_name=model_name,
                due_flags=state.due_flags,
            )
        }
        if state.resil_predictions:
            evaluated["resil"] = evaluate_detection_campaign(
                state.resil_golden_predictions,
                state.resil_predictions,
                state.targets,
                num_classes,
                model_name=f"{model_name}_resil",
            )
        extras = {
            "golden_predictions": state.golden_predictions,
            "corrupted_predictions": state.corrupted_predictions,
            "resil_predictions": state.resil_predictions or None,
            "targets": state.targets,
            "due_flags": list(state.due_flags),
        }
        return evaluated, extras

    def aux_outputs(self, writer: CampaignResultWriter, state: Any, context: dict) -> dict[str, str]:
        serialisable_targets = [
            {
                "image_id": int(target["image_id"]),
                "file_name": target["file_name"],
                "boxes": np.asarray(target["boxes"]).tolist(),
                "labels": np.asarray(target["labels"]).tolist(),
            }
            for target in state.targets
        ]
        return {"ground_truth": str(writer.write_ground_truth_json(serialisable_targets))}

    def report(self, result: Any, spec: ExperimentSpec) -> str:
        from repro.visualization import bar_chart

        corrupted = result.results["corrupted"]
        ivmod = corrupted.ivmod
        # The core's scenario carries the normalized dataset_size (aligned to
        # the actual dataset); the raw spec scenario may still hold a default.
        scenario = result.core.scenario if result.core is not None else spec.scenario
        lines = [
            bar_chart(
                {"IVMOD_SDE": ivmod.sde_rate, "IVMOD_DUE": ivmod.due_rate},
                title=(
                    f"{spec.model.name}: {spec.scenario.injection_target} fault injection "
                    f"over {scenario.dataset_size} images"
                ),
                max_value=max(ivmod.sde_rate, 0.1),
            ),
            "",
            f"golden mAP@0.5:    {corrupted.golden_map['mAP']:.4f}",
            f"corrupted mAP@0.5: {corrupted.corrupted_map['mAP']:.4f}",
        ]
        return "\n".join(lines)
