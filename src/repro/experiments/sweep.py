"""Sweep grids: declarative multi-run campaigns over one experiment spec.

A spec with a ``sweep:`` section (see
:class:`~repro.experiments.spec.SweepSpec`) describes a *family* of
campaigns: a cartesian grid over scenario/model/protection/task fields plus
optional explicit extra points.  This module turns that declaration into a
deterministic :class:`SweepPlan` of concrete child specs, executes the plan
through the ordinary :func:`repro.experiments.run` path (so the supervised
sharded backend's retry/timeout/backoff applies per point), and persists
every completed point in a content-addressed
:class:`~repro.experiments.campaigns.CampaignStore` — re-running a finished
sweep recomputes **zero** points, and an interrupted sweep resumed with
``resume=True`` produces a byte-identical aggregate table.

Typical use::

    spec = ExperimentSpec.load("layer_sweep.yml")     # has a sweep: section
    outcome = run_sweep(spec)                          # skip-completed
    print(outcome.format_table())                      # one row per point
"""

from __future__ import annotations

import csv
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.alficore.digests import config_digest, model_fingerprint
from repro.experiments.campaigns.store import (
    CampaignStore,
    StoredPoint,
    StoreError,
    SweepManifest,
    canonical_spec_document,
    point_run_id,
)
from repro.experiments.result import CampaignResult
from repro.experiments.runner import Artifacts, run
from repro.experiments.spec import ComponentSpec, ExperimentSpec, SpecError

TABLE_SCHEMA_VERSION = 1


class SweepError(RuntimeError):
    """Raised for invalid sweep declarations or unusable sweep state."""


# --------------------------------------------------------------------------- #
# grid expansion
# --------------------------------------------------------------------------- #
@dataclass
class SweepPoint:
    """One concrete grid point: axis assignment plus materialized spec."""

    index: int
    overrides: dict[str, Any]
    spec: ExperimentSpec
    run_id: str | None = None  # filled by SweepPlan.resolve()


@dataclass
class SweepPlan:
    """The deterministic expansion of one sweep declaration."""

    base: ExperimentSpec
    points: list[SweepPoint]
    axis_order: list[str]
    #: per-point (model, dataset) instances, filled by :meth:`resolve`
    artifacts: dict[int, tuple[Any, Any]] = field(default_factory=dict)
    fingerprints: dict[int, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def resolve(self, artifacts: Artifacts | None = None) -> None:
        """Assign content-addressed run IDs to every point.

        Builds each point's model/dataset (deduplicated by configuration, so
        a scenario-only grid builds the model exactly once), fingerprints
        the weights, and derives ``run_id`` from the canonical spec document
        plus the fingerprint.  With pre-built ``artifacts`` the supplied
        model/dataset are used for every point — only legal when no axis
        changes the model, dataset or task.
        """
        from repro.experiments.builtins import register_builtins
        from repro.experiments.registry import DATASETS, TASKS

        register_builtins()
        supplied = artifacts is not None and (
            artifacts.model is not None or artifacts.dataset is not None
        )
        if supplied:
            component_axes = [
                path
                for point in self.points
                for path in point.overrides
                if path == "task" or path.split(".")[0] in ("model", "dataset")
            ]
            if component_axes:
                raise SweepError(
                    "pre-built model/dataset artifacts cannot be combined with "
                    f"sweep axes over {sorted(set(component_axes))}: each grid "
                    "point would need its own build"
                )
        datasets: dict[str, Any] = {}
        models: dict[str, tuple[Any, str]] = {}
        for point in self.points:
            spec = point.spec
            plugin = TASKS.get(spec.task)
            if supplied and artifacts.dataset is not None:
                dataset = artifacts.dataset
            else:
                dataset_key = config_digest(spec.dataset.as_dict())
                if dataset_key not in datasets:
                    datasets[dataset_key] = DATASETS.get(spec.dataset.name)(
                        **spec.dataset.params
                    )
                dataset = datasets[dataset_key]
            if supplied and artifacts.model is not None:
                model = artifacts.model
                model_key = "supplied"
                if model_key not in models:
                    models[model_key] = (model, model_fingerprint(model))
            else:
                model_key = config_digest(
                    {
                        "task": spec.task,
                        "model": spec.model.as_dict(),
                        "dataset": spec.dataset.as_dict(),
                    }
                )
                if model_key not in models:
                    built = plugin.build_model(spec, dataset)
                    models[model_key] = (built, model_fingerprint(built))
            model, fingerprint = models[model_key]
            point.run_id = point_run_id(canonical_spec_document(spec), fingerprint)
            self.artifacts[point.index] = (model, dataset)
            self.fingerprints[point.index] = fingerprint


def _apply_axis(spec: ExperimentSpec, path: str, value: Any) -> None:
    """Set one axis value on a child spec (path already grammar-validated)."""
    parts = path.split(".")
    root = parts[0]
    if root == "task":
        spec.task = str(value)
    elif root == "input_shape":
        spec.input_shape = tuple(int(v) for v in value) if value is not None else None
    elif root == "dl_shuffle":
        spec.dl_shuffle = bool(value)
    elif root in ("model", "dataset") and parts[1] == "name":
        getattr(spec, root).name = str(value)
    elif root in ("model", "dataset"):  # <root>.params.<key>
        getattr(spec, root).params[parts[2]] = value
    elif root == "protection" and len(parts) == 1:
        spec.protection = (
            ComponentSpec.from_dict(value, "protection") if value is not None else None
        )
    elif root == "protection" and parts[1] == "name":
        if spec.protection is None:
            spec.protection = ComponentSpec(str(value))
        else:
            spec.protection.name = str(value)
    elif root == "protection":  # protection.params.<key>
        if spec.protection is None:
            raise SweepError(
                f"axis {path!r} needs a protection to parameterize: declare a "
                "'protection.name' axis or a protection in the base spec"
            )
        spec.protection.params[parts[2]] = value
    elif root == "scenario":
        spec.scenario = spec.scenario.copy(**{parts[1]: value})
    elif root == "task_options":
        spec.task_options[parts[1]] = value
    else:  # pragma: no cover - validate_sweep_axis precedes
        raise SweepError(f"unsupported axis {path!r}")


def expand(spec: ExperimentSpec) -> SweepPlan:
    """Materialize a sweep declaration into concrete child specs.

    The grid is the cartesian product of the declared axes in declaration
    order (the last axis varies fastest), followed by the explicit
    ``points`` entries.  Expansion is fully deterministic: the same spec
    always yields the same points in the same order.  Each child spec is
    validated (so a grid value that breaks scenario invariants fails here,
    before anything runs), has its ``sweep`` section stripped, and is named
    ``<base>-p<index>``.
    """
    if spec.sweep is None:
        raise SweepError("spec has no sweep: section; use repro.experiments.run()")
    sweep = spec.sweep
    sweep.validate()
    base = spec.copy()
    base.sweep = None
    assignments: list[dict[str, Any]] = []
    if sweep.axes:
        paths = list(sweep.axes)
        for combination in itertools.product(*(sweep.axes[p] for p in paths)):
            assignments.append(dict(zip(paths, combination)))
    assignments.extend(dict(point) for point in sweep.points)
    axis_order = list(sweep.axes)
    for point in sweep.points:
        for path in point:
            if path not in axis_order:
                axis_order.append(path)
    points = []
    for index, overrides in enumerate(assignments):
        child = base.copy()
        child.name = f"{base.name}-p{index:03d}"
        for path, value in overrides.items():
            try:
                _apply_axis(child, path, value)
            except (SpecError, ValueError, TypeError) as error:
                raise SweepError(
                    f"point {index}: cannot apply {path!r}={value!r}: {error}"
                ) from error
        try:
            child.validate()
        except SpecError as error:
            raise SweepError(f"point {index} ({overrides!r}) is invalid: {error}") from error
        points.append(SweepPoint(index=index, overrides=dict(overrides), spec=child))
    return SweepPlan(base=base, points=points, axis_order=axis_order)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
@dataclass
class SweepPointOutcome:
    """What one grid point contributed to the sweep."""

    point: SweepPoint
    run_id: str
    cached: bool
    summary: dict
    stored: StoredPoint | None = None
    _result: CampaignResult | None = None

    def load_result(self) -> CampaignResult:
        """The point's full campaign result (lazy for cached points)."""
        if self._result is not None:
            return self._result
        if self.stored is None:
            raise SweepError(f"point {self.run_id} ran without a store; no result kept")
        return self.stored.load_result()


def _flatten_summary(summary: dict, prefix: str = "") -> dict[str, Any]:
    """Dotted-path scalars of a nested KPI summary.

    Non-scalars are dropped, as is the ``output_files`` map — file locations
    are machine-local bookkeeping, not KPIs, and would break the table's
    byte-for-byte determinism across store locations.
    """
    flat: dict[str, Any] = {}
    for key, value in summary.items():
        if not prefix and key == "output_files":
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_summary(value, prefix=f"{path}."))
        elif isinstance(value, (int, float, str, bool)) or value is None:
            flat[path] = value
    return flat


class SweepResult:
    """Aggregate of one sweep run: per-point outcomes plus comparison table.

    ``executed`` / ``cached`` count how many points actually ran versus were
    served from the content-addressed store.  :meth:`table_rows` aggregates
    every point's KPI scalars into one comparison table (axis columns in
    declaration order, then sorted KPI columns); :meth:`write_table`
    persists it as CSV and JSON.  Per-point campaign results stay lazy —
    :meth:`SweepPointOutcome.load_result` unpickles a cached point's task
    state only on demand.
    """

    def __init__(
        self,
        plan: SweepPlan,
        outcomes: list[SweepPointOutcome],
        store: CampaignStore | None,
    ) -> None:
        self.plan = plan
        self.outcomes = outcomes
        self.store = store
        self.executed = sum(1 for outcome in outcomes if not outcome.cached)
        self.cached = sum(1 for outcome in outcomes if outcome.cached)
        self.table_files: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self.outcomes)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def table_columns(self) -> list[str]:
        """Union of per-point summary keys, in first-appearance order."""
        kpi_columns: set[str] = set()
        for outcome in self.outcomes:
            kpi_columns.update(_flatten_summary(outcome.summary))
        return ["point", "run_id", *self.plan.axis_order, *sorted(kpi_columns)]

    def table_rows(self) -> list[dict[str, Any]]:
        """One comparison row per grid point (JSON-friendly values)."""
        columns = self.table_columns()
        rows = []
        for outcome in self.outcomes:
            flat = _flatten_summary(outcome.summary)
            row: dict[str, Any] = {
                "point": outcome.point.index,
                "run_id": outcome.run_id,
            }
            for axis in self.plan.axis_order:
                row[axis] = _json_value(outcome.point.overrides.get(axis))
            for column in columns:
                if column not in row:
                    row[column] = flat.get(column)
            rows.append(row)
        return rows

    def write_table(self, directory: str | Path, name: str | None = None) -> dict[str, str]:
        """Write the comparison table as ``<name>_sweep_table.{csv,json}``.

        Output is fully deterministic (stable column order, JSON-formatted
        cells), so a resumed sweep's table is byte-identical to an
        uninterrupted run's.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        name = name or self.plan.base.name
        columns = self.table_columns()
        rows = self.table_rows()
        csv_path = directory / f"{name}_sweep_table.csv"
        with open(csv_path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(columns)
            for row in rows:
                writer.writerow([_csv_cell(row.get(column)) for column in columns])
        json_path = directory / f"{name}_sweep_table.json"
        json_path.write_text(
            json.dumps(
                {
                    "schema_version": TABLE_SCHEMA_VERSION,
                    "name": name,
                    "columns": columns,
                    "rows": rows,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        self.table_files = {"table_csv": str(csv_path), "table_json": str(json_path)}
        return dict(self.table_files)

    def format_table(self, columns: list[str] | None = None) -> str:
        """A fixed-width text rendering of (a column subset of) the table."""
        columns = columns or self.table_columns()
        rows = self.table_rows()
        cells = [[_csv_cell(row.get(column)) for column in columns] for row in rows]
        widths = [
            max(len(column), *(len(line[i]) for line in cells)) if cells else len(column)
            for i, column in enumerate(columns)
        ]
        out = ["  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))]
        for line in cells:
            out.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(line)))
        return "\n".join(out)


def _json_value(value: Any) -> Any:
    """JSON round-trip so in-memory and store-loaded values render alike."""
    return json.loads(json.dumps(value, default=str))


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return json.dumps(value)


def _execute_point(
    point: SweepPoint,
    model: Any,
    dataset: Any,
    *,
    output_dir: Path | None,
    workers: int | None,
    resume: bool,
) -> CampaignResult:
    """Run one grid point through the ordinary experiment path.

    Worker/resume overrides touch only execution policy — never the
    canonical (run-ID-addressed) content — so a ``--workers 4`` re-run still
    reuses a serial run's committed points.  With ``resume`` the child runs
    the supervised sharded backend with ``execution.resume``, composing
    shard-level crash recovery with point-level skip.
    """
    child = point.spec.copy()
    if output_dir is not None:
        child.output_dir = output_dir
    if workers is not None and workers > 1:
        child.backend.name = "sharded"
        child.backend.workers = workers
        child.backend.step_range = None
    if resume and output_dir is not None:
        child.execution.resume = True
        if child.backend.name == "serial":
            child.backend.name = "sharded"
    child.validate()
    return run(child, Artifacts(model=model, dataset=dataset))


def run_sweep(
    spec: ExperimentSpec,
    artifacts: Artifacts | None = None,
    *,
    store: CampaignStore | str | Path | None = None,
    workers: int | None = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Execute a sweep spec: expand, skip completed points, aggregate.

    Args:
        spec: an :class:`ExperimentSpec` with a ``sweep:`` section.
        artifacts: optional pre-built model/dataset shared by every point
            (only legal when no axis varies model, dataset or task).
        store: campaign-store directory (or instance).  Defaults to the
            sweep's declared ``store``, then ``<output_dir>/sweep_store``;
            with neither, the sweep runs without persistence (every point
            executes, nothing can be skipped).
        workers: override worker count for point execution (sharded backend
            when > 1); excluded from run IDs, so cached points still match.
        resume: resume an interrupted sweep — completed points are skipped
            via the store, the in-flight point resumes shard-by-shard from
            its work-in-progress manifest, and the sweep manifest must match
            the sweep configuration.
        progress: optional callback receiving one line per point.

    Returns:
        A :class:`SweepResult`; with a store, the comparison table has also
        been written to the store root.
    """
    plan = expand(spec)
    plan.resolve(artifacts)
    emit = progress if progress is not None else (lambda line: None)
    campaign_store = _resolve_store(spec, store)
    manifest = None
    if campaign_store is not None:
        campaign_store.root.mkdir(parents=True, exist_ok=True)
        manifest_config = {
            "sweep": {
                key: value
                for key, value in spec.sweep.as_dict().items()
                if key != "store"
            },
            "base": canonical_spec_document(plan.base),
            "run_ids": [point.run_id for point in plan.points],
        }
        manifest_path = campaign_store.manifest_path()
        if resume:
            manifest = SweepManifest.load(manifest_path)
            if manifest is not None and not manifest.matches(manifest_config):
                raise StoreError(
                    f"sweep manifest {manifest_path} records a different sweep "
                    "configuration; refusing to resume (point to a fresh store "
                    "or drop --resume)"
                )
        if manifest is None:
            manifest = SweepManifest.fresh(manifest_path, manifest_config)
    outcomes = []
    for point in plan.points:
        run_id = point.run_id
        assert run_id is not None  # plan.resolve() filled it
        stored = campaign_store.lookup(run_id) if campaign_store is not None else None
        if stored is not None:
            outcome = SweepPointOutcome(
                point=point, run_id=run_id, cached=True, summary=stored.summary,
                stored=stored,
            )
            emit(f"point {point.index:>3} {run_id}  cached    {point.overrides}")
        else:
            model, dataset = plan.artifacts[point.index]
            output_dir = (
                campaign_store.begin(run_id, resume=resume)
                if campaign_store is not None
                else None
            )
            # A failure here leaves the .wip directory in place: a later
            # --resume picks up its shard manifest; a plain re-run discards it.
            result = _execute_point(
                point, model, dataset,
                output_dir=output_dir, workers=workers, resume=resume,
            )
            if campaign_store is not None:
                committed = campaign_store.commit(
                    run_id,
                    result,
                    canonical_spec=canonical_spec_document(point.spec),
                    weights_fingerprint=plan.fingerprints[point.index],
                    overrides=point.overrides,
                )
                summary = committed.summary
                stored = committed
            else:
                committed = None
                summary = _json_value(result.summary)
            outcome = SweepPointOutcome(
                point=point, run_id=run_id, cached=False, summary=summary,
                stored=stored, _result=result,
            )
            emit(f"point {point.index:>3} {run_id}  executed  {point.overrides}")
        if manifest is not None:
            manifest.mark_completed(point.index, run_id, cached=outcome.cached)
        outcomes.append(outcome)
    sweep_result = SweepResult(plan, outcomes, campaign_store)
    if campaign_store is not None:
        sweep_result.write_table(campaign_store.root)
    return sweep_result


def _resolve_store(
    spec: ExperimentSpec, store: CampaignStore | str | Path | None
) -> CampaignStore | None:
    if isinstance(store, CampaignStore):
        return store
    if store is not None:
        return CampaignStore(store)
    if spec.sweep is not None and spec.sweep.store is not None:
        return CampaignStore(spec.sweep.store)
    if spec.output_dir is not None:
        return CampaignStore(Path(spec.output_dir) / "sweep_store")
    return None
